"""Legacy setup shim so editable installs work without the wheel
package (offline environments)."""

from setuptools import setup

setup()
