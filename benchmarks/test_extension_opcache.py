"""Extension experiment: relaxing the paper's perfect instruction cache.

The paper assumes no operation-cache misses.  This bench sweeps the
per-unit operation-cache capacity on the Coupled FFT and measures the
cost of that assumption: generous caches only pay cold misses, small
caches thrash on the multi-variant threaded code.
"""

from conftest import one_shot

from repro import compile_program, run_program
from repro.machine import baseline
from repro.programs import get_benchmark
from repro.sim.opcache import OpCacheSpec

CAPACITIES = (None, 256, 64, 16, 8)


def sweep():
    bench = get_benchmark("fft")
    inputs = bench.make_inputs(seed=1)
    rows = {}
    for capacity in CAPACITIES:
        config = baseline()
        if capacity is not None:
            config = config.with_op_cache(
                OpCacheSpec(capacity=capacity, fill_penalty=4))
        compiled = compile_program(bench.source("coupled"), config,
                                   mode="coupled")
        result = run_program(compiled.program, config, overrides=inputs)
        assert not bench.check(result, inputs)
        rows[capacity] = (result.cycles, result.stats.opcache_misses)
    return rows


def test_opcache_sweep(benchmark):
    rows = one_shot(benchmark, sweep)
    print()
    print("FFT coupled, per-unit operation cache sweep:")
    for capacity in CAPACITIES:
        cycles, misses = rows[capacity]
        label = "perfect" if capacity is None else "%4d words" % capacity
        print("  %-10s %6d cycles  %5d misses" % (label, cycles, misses))
    perfect = rows[None][0]
    # Generous caches cost only cold misses (< 40% overhead)...
    assert rows[256][0] < 1.4 * perfect
    # ...tiny caches thrash badly.
    assert rows[8][0] > 1.5 * perfect
    # Monotone: shrinking the cache never helps.
    assert rows[8][0] >= rows[64][0] >= rows[256][0] >= perfect
