"""Shared session-scoped harness so the table/figure benchmarks reuse
compilations and simulations where possible."""

import pytest

from repro.experiments.runner import Harness


@pytest.fixture(scope="session")
def harness():
    return Harness(seed=1)


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a whole-artifact generator exactly once under timing (these
    are multi-second simulations; statistical repetition would be
    wasteful and is unnecessary for cycle-exact simulators)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              iterations=1, rounds=1)
