"""Regenerates Figure 8: Coupled cycles across all 1..4 IU x 1..4 FPU
configurations with four memory units."""

from conftest import one_shot

from repro.experiments import figure8


def test_figure8(benchmark, harness):
    cells = one_shot(benchmark, figure8.run, harness)
    print()
    print(figure8.render(cells))
    benches = sorted({k[0] for k in cells})
    for bench in benches:
        # Cycle count is highest with one IU and one FPU and minimized
        # at four of each (paper's findings).
        worst = cells[(bench, 1, 1)]
        best = cells[(bench, 4, 4)]
        assert best <= worst
        assert best == min(cells[(bench, i, f)]
                           for i in (1, 2, 3, 4) for f in (1, 2, 3, 4))
    # Matrix: one FPU saturates a single IU — adding FPUs to a 1-IU
    # machine does not help...
    assert cells[("matrix", 1, 4)] >= 0.95 * cells[("matrix", 1, 1)]
    # ...while adding IUs does (integer units used for synchronization
    # and loop control can be a bottleneck).
    assert cells[("matrix", 4, 1)] < cells[("matrix", 1, 1)]
