"""Regenerates Figure 6: Coupled-mode cycles under the five restricted
communication schemes, plus the interconnect area trade-off."""

from conftest import one_shot

from repro.experiments import figure6


def test_figure6(benchmark, harness):
    data = one_shot(benchmark, figure6.run, harness)
    print()
    print(figure6.render(data))
    # Paper: Tri-port is nearly as effective as full connection (~4%),
    # while single-port/shared-bus schemes increase cycles dramatically.
    assert abs(figure6.overhead_vs_full(data, "tri-port")) < 0.10
    assert figure6.overhead_vs_full(data, "dual-port") < 0.25
    assert figure6.overhead_vs_full(data, "single-port") > 0.30
    assert figure6.overhead_vs_full(data, "shared-bus") > 0.30
    # ... at a fraction of the interconnect area.
    assert data["areas"]["tri-port"] < 0.6
