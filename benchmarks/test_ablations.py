"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation disables one compiler feature and measures Coupled-mode
(and where relevant STS/Ideal) cycles, verifying both that results stay
correct and that the feature actually pays for itself on the benchmark
it was introduced for.
"""

import pytest
from conftest import one_shot

from repro import compile_program, run_program
from repro.compiler.options import ABLATIONS
from repro.machine import baseline
from repro.programs import get_benchmark


def run_with(options_name, bench_name, mode):
    config = baseline()
    bench = get_benchmark(bench_name)
    inputs = bench.make_inputs(seed=1)
    compiled = compile_program(bench.source(mode), config, mode=mode,
                               options=ABLATIONS[options_name])
    result = run_program(compiled.program, config, overrides=inputs)
    problems = bench.check(result, inputs)
    assert not problems, (options_name, problems[:3])
    return result.cycles


def sweep(bench_name, mode):
    return {name: run_with(name, bench_name, mode)
            for name in ABLATIONS}


def _show(title, cycles):
    print()
    print(title)
    for name in sorted(cycles, key=cycles.get):
        print("  %-16s %7d  (%+5.1f%% vs full)"
              % (name, cycles[name],
                 100.0 * (cycles[name] / cycles["full"] - 1.0)))


def test_ablation_matrix_ideal(benchmark):
    """Redundant-load elimination is what lets Ideal-mode Matrix keep
    its operands in registers (paper: FPU utilization 3.93)."""
    cycles = one_shot(benchmark, sweep, "matrix", "ideal")
    _show("matrix/ideal ablations", cycles)
    assert cycles["no-load-elim"] > 1.3 * cycles["full"]
    assert cycles["no-optimizer"] >= cycles["no-load-elim"]


def test_ablation_lud_sts(benchmark):
    """Affine alias analysis unlocks the hand-unrolled update loop;
    global constant propagation and two-pass home placement kill the
    per-iteration cross-cluster moves."""
    cycles = one_shot(benchmark, sweep, "lud", "sts")
    _show("lud/sts ablations", cycles)
    assert cycles["no-affine-alias"] > 1.1 * cycles["full"]
    assert cycles["no-optimizer"] > cycles["full"]
    assert cycles["one-pass-homes"] >= cycles["full"]
    assert cycles["no-global-const"] >= cycles["full"]


def test_ablation_dual_destinations(benchmark):
    """Without dual-destination result forwarding every cross-cluster
    value costs an explicit move operation."""
    def measure():
        return {
            "full": run_with("full", "matrix", "coupled"),
            "no-dual-dest": run_with("no-dual-dest", "matrix",
                                     "coupled"),
        }
    cycles = one_shot(benchmark, measure)
    _show("matrix/coupled dual-destination ablation", cycles)
    assert cycles["no-dual-dest"] >= cycles["full"]


def test_ablations_always_correct(benchmark):
    """Every ablation must still compute correct results on every
    benchmark (features are performance-only)."""
    def check_all():
        count = 0
        for bench_name in ("matrix", "fft", "model"):
            for name in ABLATIONS:
                run_with(name, bench_name, "coupled")
                count += 1
        return count
    assert one_shot(benchmark, check_all) == 21
