"""Regenerates Figure 5: function unit utilization by class for every
benchmark and mode."""

from conftest import one_shot

from repro.experiments import figure5


def test_figure5(benchmark, harness):
    rows = one_shot(benchmark, figure5.run, harness)
    print()
    print(figure5.render(rows))
    by_key = {(r["benchmark"], r["mode"]): r for r in rows}
    # Utilization rises toward the threaded/ideal modes (paper: "in all
    # benchmarks, unit utilization increases as the simulation mode
    # approaches Ideal").
    for bench in ("matrix", "fft", "model", "lud"):
        seq = by_key[(bench, "seq")]
        coupled = by_key[(bench, "coupled")]
        assert coupled["fpu"] + coupled["iu"] > seq["fpu"] + seq["iu"]
    # Model and LUD are memory dominated: FPU/IU stay small even
    # coupled (paper's words).
    for bench in ("model", "lud"):
        assert by_key[(bench, "coupled")]["fpu"] < 1.5
    # Matrix ideal: loop overhead gone, so IU and branch work vanish.
    ideal = by_key[("matrix", "ideal")]
    assert ideal["iu"] < 0.5 and ideal["bru"] < 0.5
