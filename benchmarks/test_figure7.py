"""Regenerates Figure 7: cycle counts under the Min/Mem1/Mem2 memory
models — statically scheduled modes suffer most from long latencies."""

from conftest import one_shot

from repro.experiments import figure7


def test_figure7(benchmark, harness):
    cells = one_shot(benchmark, figure7.run, harness)
    print()
    print(figure7.render(cells))
    # Latency hurts everyone...
    for (bench, mode, model), cycles in cells.items():
        if model == "mem2":
            assert cycles >= cells[(bench, mode, "min")]
    # ...but the threaded modes hide it better than STS (paper: 5.5x
    # for STS vs ~2x for Coupled and ~2.3x for TPE).
    sts = figure7.slowdown(cells, "sts")
    assert sts > figure7.slowdown(cells, "coupled") + 0.5
    assert sts > figure7.slowdown(cells, "tpe") + 0.5
    # Ideal Matrix lives in registers: nearly immune.  Ideal FFT must
    # reload between stages: hammered.
    assert cells[("matrix", "ideal", "mem2")] < \
        2.0 * cells[("matrix", "ideal", "min")]
    assert cells[("fft", "ideal", "mem2")] > \
        2.0 * cells[("fft", "ideal", "min")]
