"""Extension experiment: how large must the hardware active set be?

The paper provides hardware to sequence "a small number of active
threads" but leaves thread management out of scope.  This bench sweeps
the active-set bound on the threaded benchmarks: a node with slots for
about as many threads as it has clusters captures nearly all of the
coupling benefit.
"""

from conftest import one_shot

from repro import compile_program, run_program
from repro.machine import baseline
from repro.programs import get_benchmark

LIMITS = (2, 3, 5, 9, None)


def sweep(bench_name):
    bench = get_benchmark(bench_name)
    inputs = bench.make_inputs(seed=1)
    compiled = compile_program(bench.source("coupled"), baseline(),
                               mode="coupled")
    rows = {}
    for limit in LIMITS:
        config = baseline().with_max_active_threads(limit)
        result = run_program(compiled.program, config, overrides=inputs)
        assert not bench.check(result, inputs)
        rows[limit] = result.cycles
    return rows


def test_active_set_sweep(benchmark):
    def run_all():
        return {name: sweep(name) for name in ("matrix", "model")}
    data = one_shot(benchmark, run_all)
    print()
    for name, rows in data.items():
        print("%s coupled, active-set sweep:" % name)
        for limit in LIMITS:
            label = "unbounded" if limit is None else "%2d slots" % limit
            print("  %-10s %6d cycles" % (label, rows[limit]))
    for rows in data.values():
        # More slots never hurt, and ~2x the cluster count captures
        # nearly everything.
        assert rows[2] >= rows[5] >= rows[None]
        assert rows[9] <= 1.05 * rows[None]
