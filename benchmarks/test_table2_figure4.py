"""Regenerates Table 2 and Figure 4: baseline cycle counts and FPU/IU
utilization for the five machine modes on the four benchmarks, and
asserts the paper's qualitative shape."""

from conftest import one_shot

from repro.experiments import table2


def _rows(harness):
    return table2.run(harness)


def _cycles(rows, bench, mode):
    return next(r["cycles"] for r in rows
                if r["benchmark"] == bench and r["mode"] == mode)


def test_table2(benchmark, harness):
    rows = one_shot(benchmark, _rows, harness)
    print()
    print(table2.render(rows))
    print()
    print(table2.render_figure4(rows))
    # Paper shape: SEQ slowest, Coupled beats STS, Ideal fastest.
    for bench in ("matrix", "fft", "model", "lud"):
        assert _cycles(rows, bench, "seq") > _cycles(rows, bench, "sts")
        assert _cycles(rows, bench, "coupled") < \
            _cycles(rows, bench, "sts")
    for bench in ("matrix", "fft"):
        assert _cycles(rows, bench, "ideal") == min(
            r["cycles"] for r in rows if r["benchmark"] == bench)
    # FFT: the sequential section makes TPE lose to STS (paper Table 2).
    assert _cycles(rows, "fft", "tpe") > _cycles(rows, "fft", "sts")
    # Matrix ideal: nearly every FP slot filled (paper: 3.93 of 4).
    ideal = next(r for r in rows if r["benchmark"] == "matrix"
                 and r["mode"] == "ideal")
    assert ideal["fpu_util"] > 3.5
