"""Regenerates Table 3: per-thread interference on the shared-queue
Model benchmark under strict-priority arbitration."""

from conftest import one_shot

from repro.experiments import table3


def test_table3(benchmark):
    data = one_shot(benchmark, table3.run)
    print()
    print(table3.render(data))
    rows = data["rows"]
    coupled = [r for r in rows if r["mode"] == "coupled"]
    # Lower-priority threads dilate more and evaluate fewer devices.
    runtimes = [r["runtime_per_device"] for r in coupled]
    assert runtimes == sorted(runtimes)
    assert coupled[0]["devices"] >= coupled[-1]["devices"]
    # Aggregate: overlap wins despite per-evaluation dilation.
    assert data["aggregate"]["coupled_total"] < \
        data["aggregate"]["sts_total"]
    assert data["aggregate"]["verified"]
