"""Build a custom processor-coupled node and run your own kernel on it.

The machine: two asymmetric arithmetic clusters (one with two integer
units, one with a deeply pipelined FPU), a tri-port interconnect, and a
lossy memory system.  The workload: a dot product threaded across both
clusters with a tree reduction through synchronizing memory.

Run:  python examples/custom_machine.py
"""

from repro import compile_program, run_program
from repro.machine import (ClusterSpec, MachineConfig, branch_cluster,
                           fpu, iu, mem)
from repro.machine.memory import MemorySpec

SOURCE = """
(program
  (const N 32)
  (const NW 2)
  (global x N)
  (global y N)
  (global partial NW :empty)
  (global out 1)
  (kernel dot (t)
    (let ((acc 0.0) (i t))
      (while (< i N)
        (set! acc (+ acc (* (aref x i) (aref y i))))
        (set! i (+ i NW)))
      (aset-ef! partial t acc)))
  (main
    (fork (dot 0))
    (fork (dot 1))
    (aset! out 0 (+ (aref-ff partial 0) (aref-ff partial 1)))))
"""


def build_machine():
    clusters = (
        ClusterSpec(units=(iu(), iu(), fpu(), mem())),
        ClusterSpec(units=(iu(), fpu(latency=3), mem())),
        branch_cluster(),
    )
    memory = MemorySpec("lossy", miss_rate=0.05, miss_penalty_min=10,
                        miss_penalty_max=40)
    return MachineConfig(clusters, interconnect="tri-port",
                         memory=memory, name="custom-2x")


def main():
    config = build_machine()
    print(config.describe())
    compiled = compile_program(SOURCE, config, mode="coupled")
    xs = [0.25 * i for i in range(32)]
    ys = [1.0 / (1 + i) for i in range(32)]
    result = run_program(compiled.program, config,
                         overrides={"x": xs, "y": ys})
    expected = sum(a * b for a, b in zip(xs, ys))
    got = result.read_symbol("out")[0]
    print("dot product: %.10f (expected %.10f)" % (got, expected))
    print("cycles: %d, memory misses: %d, writeback conflicts: %d"
          % (result.cycles, result.stats.memory_misses,
             result.stats.writeback_conflicts))
    assert abs(got - expected) < 1e-9


if __name__ == "__main__":
    main()
