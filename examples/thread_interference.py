"""Thread interference (the paper's Table 3).

Four Coupled-mode threads drain a shared priority queue of identical
circuit devices.  Strict-priority arbitration means every thread's
runtime schedule dilates relative to the compile-time schedule — mildly
for the top-priority thread, badly for the lowest — yet the aggregate
still beats the single statically scheduled thread, because the
evaluations overlap.

Run:  python examples/thread_interference.py
"""

from repro.experiments import table3


def main():
    data = table3.run()
    print(table3.render(data))
    print()
    agg = data["aggregate"]
    speedup = agg["sts_total"] / agg["coupled_total"]
    print("Four interfering coupled threads finish the queue %.2fx "
          "faster than one\nstatically scheduled thread, even though "
          "every individual evaluation got slower." % speedup)


if __name__ == "__main__":
    main()
