"""Reproduce the paper's central comparison on one benchmark: run the
9x9 matrix multiply in all five machine modes (SEQ, STS, Ideal, TPE,
Coupled) on the baseline node and print a Table-2-style summary.

Run:  python examples/mode_comparison.py [benchmark]
"""

import sys

from repro import baseline, compile_program, run_program
from repro.isa.operations import UnitClass
from repro.programs import get_benchmark


def main(benchmark_name="matrix"):
    bench = get_benchmark(benchmark_name)
    config = baseline()
    inputs = bench.make_inputs(seed=1)
    rows = []
    for mode in bench.modes:
        compiled = compile_program(bench.source(mode), config, mode=mode)
        result = run_program(compiled.program, config, overrides=inputs)
        problems = bench.check(result, inputs)
        assert not problems, problems
        rows.append((mode, result.cycles,
                     result.stats.utilization(UnitClass.FPU),
                     result.stats.utilization(UnitClass.IU),
                     result.stats.threads_spawned))
    coupled_cycles = dict((r[0], r[1]) for r in rows)["coupled"]
    print("%s on the baseline node (4 arithmetic clusters):"
          % benchmark_name)
    print("%-8s %8s %12s %6s %6s %8s" % ("mode", "cycles", "vs coupled",
                                         "FPU", "IU", "threads"))
    for mode, cycles, fpu, iu, threads in rows:
        print("%-8s %8d %12.2f %6.2f %6.2f %8d"
              % (mode, cycles, cycles / coupled_cycles, fpu, iu,
                 threads))
    print("\nProcessor coupling wins by interleaving threads over all "
          "function units\nwhile keeping single-thread (STS-like) "
          "performance on sequential sections.")


if __name__ == "__main__":
    main(*sys.argv[1:])
