"""Latency hiding: the paper's headline argument for runtime scheduling.

A statically scheduled machine (STS) stalls whole-machine on every
cache miss; a processor-coupled node keeps other threads running.  This
example sweeps the miss rate from 0 to 20% on the FFT benchmark and
prints the slowdown of each mode relative to its own single-cycle
baseline.

Run:  python examples/latency_hiding.py
"""

from repro import baseline, compile_program, run_program
from repro.machine.memory import MemorySpec, min_memory
from repro.programs import get_benchmark

MISS_RATES = (0.0, 0.02, 0.05, 0.10, 0.20)
MODES = ("sts", "tpe", "coupled")


def main():
    bench = get_benchmark("fft")
    inputs = bench.make_inputs(seed=1)
    compiled = {}
    for mode in MODES:
        compiled[mode] = compile_program(bench.source(mode), baseline(),
                                         mode=mode)
    print("FFT cycles under rising miss rate (miss penalty 20-100):")
    print("%-10s" % "miss rate" + "".join("%12s" % m for m in MODES))
    base = {}
    for rate in MISS_RATES:
        if rate == 0.0:
            spec = min_memory()
        else:
            spec = MemorySpec("sweep", miss_rate=rate,
                              miss_penalty_min=20, miss_penalty_max=100)
        config = baseline().with_memory(spec)
        cells = []
        for mode in MODES:
            result = run_program(compiled[mode].program, config,
                                 overrides=inputs)
            assert not bench.check(result, inputs)
            base.setdefault(mode, result.cycles)
            cells.append("%7d %3.1fx" % (result.cycles,
                                         result.cycles / base[mode]))
        print("%-10s" % ("%4.0f%%" % (100 * rate)) +
              "".join("%12s" % c for c in cells))
    print("\nThe statically scheduled machine dilates fastest: it has "
          "no other thread\nto run while a reference is outstanding.")


if __name__ == "__main__":
    main()
