"""Quickstart: compile a tiny program for the baseline processor-coupled
node, inspect the generated wide instruction words, and simulate it.

Run:  python examples/quickstart.py
"""

from repro import baseline, compile_program, run_program
from repro.isa import asmtext

SOURCE = """
(program
  (const N 8)
  (global x N)
  (global y N)
  (global out N)
  (main
    ;; out[i] = 2*x[i] + y[i], with the loop hand-unrolled by two so
    ;; the wide machine can overlap independent iterations.
    (for (i 0 N 2)
      (unroll (u 0 2)
        (aset! out (+ i u)
               (+ (* 2.0 (aref x (+ i u))) (aref y (+ i u))))))))
"""


def main():
    config = baseline()
    print(config.describe())
    print()

    compiled = compile_program(SOURCE, config, mode="sts")
    report = compiled.main_report
    print("compiled: %d instruction words, %d operations, peak "
          "registers per cluster %s"
          % (report.words, report.operations,
             compiled.peak_registers()))
    print()
    print(asmtext.emit(compiled.program))

    inputs = {
        "x": [float(i) for i in range(8)],
        "y": [10.0 * i for i in range(8)],
    }
    result = run_program(compiled.program, config, overrides=inputs)
    print("cycles:", result.cycles)
    print("out:   ", result.read_symbol("out"))
    print("stats: ", result.stats)


if __name__ == "__main__":
    main()
