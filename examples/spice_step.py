"""A SPICE-style timestep on the coupled node.

The paper motivates its benchmarks as "building blocks for larger
numerical applications: the compute intensive portions of a circuit
simulator such as SPICE include a model evaluator and sparse matrix
solver."  This example composes exactly those blocks into one threaded
program: each Newton-ish iteration evaluates all nonlinear devices
concurrently (the Model kernel), assembles a right-hand side, solves
the linearized mesh system by the banded LU forward/backward sweeps,
and relaxes the node voltages.

Run:  python examples/spice_step.py
"""

import random

from repro import baseline, compile_program, run_program

MESH = 4                 # 16 internal nodes on a 4x4 grid
N = MESH * MESH
BAND = MESH
NDEV = 8
STEPS = 3
RELAX = 0.6

SOURCE = """
(program
  (const N {n})
  (const B {band})
  (const NDEV {ndev})
  (const STEPS {steps})
  (global G (* N N))          ; mesh conductance matrix (LU factored once)
  (global rhs N)
  (global v N)
  (global gate NDEV :int)
  (global drain NDEV :int)
  (global kp NDEV)
  (global vt NDEV)
  (global idev NDEV)
  (global done NDEV :int :empty)

  ;; --- model evaluation: one thread per device per step -------------
  (kernel dev (d)
    (let ((vg (aref v (aref gate d)))
          (K (aref kp d))
          (VT (aref vt d)))
      (let ((vov (- vg VT)))
        (aset! idev d (if (<= vov 0.0)
                          0.0
                          (* (* 0.5 K) (* vov vov))))))
    (aset-ef! done d 1))

  ;; --- banded LU factorization of G (done once, in place) -----------
  (kernel factor ()
    (for (k 0 (- N 1))
      (let ((pivot (aref G (+ (* k N) k)))
            (lim (min (+ (+ k B) 1) N)))
        (for (i (+ k 1) lim)
          (let ((aik (aref G (+ (* i N) k))))
            (if (!= aik 0.0)
              (let ((l (/ aik pivot)))
                (aset! G (+ (* i N) k) l)
                (for (j (+ k 1) lim)
                  (aset! G (+ (* i N) j)
                         (- (aref G (+ (* i N) j))
                            (* l (aref G (+ (* k N) j)))))))))))))

  ;; --- solve G x = rhs using the stored LU factors, in place --------
  (kernel solve ()
    (for (i 1 N)
      (let ((lo (max (- i B) 0)) (acc (aref rhs i)))
        (for (k lo i)
          (set! acc (- acc (* (aref G (+ (* i N) k)) (aref rhs k)))))
        (aset! rhs i acc)))
    (for (ii 0 N)
      (let ((i (- (- N 1) ii)))
        (let ((hi (min (+ (+ i B) 1) N)) (acc (aref rhs i)))
          (for (k (+ i 1) hi)
            (set! acc (- acc (* (aref G (+ (* i N) k)) (aref rhs k)))))
          (aset! rhs i (/ acc (aref G (+ (* i N) i))))))))

  (main
    (call factor)
    (for (step 0 STEPS)
      ;; evaluate all devices concurrently
      (forall (d 0 NDEV) (dev d))
      (for (d 0 NDEV)
        (sync (aref-fe done d)))
      ;; assemble rhs: device currents injected at their drain nodes
      (for (i 0 N)
        (aset! rhs i 0.0))
      (for (d 0 NDEV)
        (aset! rhs (aref drain d)
               (+ (aref rhs (aref drain d)) (aref idev d))))
      ;; solve the linear system and relax the voltages
      (call solve)
      (for (i 0 N)
        (aset! v i (+ (* {relax} (aref rhs i))
                      (* {unrelax} (aref v i))))))))
""".format(n=N, band=BAND, ndev=NDEV, steps=STEPS, relax=RELAX,
           unrelax=1.0 - RELAX)


def make_inputs(seed=4):
    rng = random.Random(seed)
    g = [0.0] * (N * N)
    for r in range(MESH):
        for c in range(MESH):
            me = r * MESH + c
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < MESH and 0 <= nc < MESH:
                    g[me * N + (nr * MESH + nc)] = -1.0
            g[me * N + me] = 4.5 + rng.uniform(0.0, 0.5)
    return {
        "G": g,
        "v": [rng.uniform(0.5, 2.0) for __ in range(N)],
        "gate": [rng.randrange(N) for __ in range(NDEV)],
        "drain": [rng.randrange(N) for __ in range(NDEV)],
        "kp": [rng.uniform(0.5, 2.0) for __ in range(NDEV)],
        "vt": [rng.uniform(0.2, 0.8) for __ in range(NDEV)],
    }


def reference(inputs):
    """Plain-Python replication of the timestep loop."""
    g = list(inputs["G"])
    v = list(inputs["v"])
    for k in range(N - 1):
        pivot = g[k * N + k]
        lim = min(k + BAND + 1, N)
        for i in range(k + 1, lim):
            aik = g[i * N + k]
            if aik != 0.0:
                l = aik / pivot
                g[i * N + k] = l
                for j in range(k + 1, lim):
                    g[i * N + j] = g[i * N + j] - l * g[k * N + j]
    for __ in range(STEPS):
        idev = []
        for d in range(NDEV):
            vov = v[inputs["gate"][d]] - inputs["vt"][d]
            idev.append(0.0 if vov <= 0.0
                        else (0.5 * inputs["kp"][d]) * (vov * vov))
        rhs = [0.0] * N
        for d in range(NDEV):
            rhs[inputs["drain"][d]] += idev[d]
        for i in range(1, N):
            acc = rhs[i]
            for k in range(max(i - BAND, 0), i):
                acc -= g[i * N + k] * rhs[k]
            rhs[i] = acc
        for i in range(N - 1, -1, -1):
            acc = rhs[i]
            for k in range(i + 1, min(i + BAND + 1, N)):
                acc -= g[i * N + k] * rhs[k]
            rhs[i] = acc / g[i * N + i]
        for i in range(N):
            v[i] = RELAX * rhs[i] + (1.0 - RELAX) * v[i]
    return v


def main():
    config = baseline()
    inputs = make_inputs()
    expected = reference(inputs)
    for mode in ("tpe", "coupled"):
        compiled = compile_program(SOURCE, config, mode=mode)
        result = run_program(compiled.program, config, overrides=inputs)
        got = result.read_symbol("v")
        worst = max(abs(a - b) for a, b in zip(got, expected))
        assert worst < 1e-9, worst
        print("%-8s %6d cycles   (max |err| = %.2e)"
              % (mode, result.cycles, worst))
    print("\nThree simulator timesteps — concurrent device evaluation "
          "feeding a banded\nLU solve — verified against a Python "
          "reference.")


if __name__ == "__main__":
    main()
