"""Watch processor coupling happen: the paper's Figure 1/2, live.

Runs a small threaded workload and draws the cycle-by-cycle mapping of
function units to threads — each column is one cycle, each mark one
issued operation (digit = thread id).  You can see the statically
scheduled threads slipping past each other as they compete for units,
and idle slots being donated to whichever thread is ready.

Run:  python examples/coupling_timeline.py
"""

from repro import baseline, compile_program
from repro.sim import Node
from repro.sim.trace import TraceRecorder, render_timeline, \
    utilization_profile

SOURCE = """
(program
  (const N 12)
  (global A N)
  (global B N)
  (global done 3 :int :empty)
  (kernel work (t)
    (let ((i t))
      (while (< i N)
        (aset! B i (+ (* (aref A i) (aref A i)) (float t)))
        (set! i (+ i 3))))
    (aset-ef! done t 1))
  (main
    (unroll (t 0 3) (fork (work t)))
    (unroll (t 0 3) (sync (aref-ff done t)))))
"""


def main():
    config = baseline()
    compiled = compile_program(SOURCE, config, mode="coupled")
    recorder = TraceRecorder()
    node = Node(config, observer=recorder)
    result = node.run(compiled.program,
                      overrides={"A": [0.5 * i for i in range(12)]})
    print(render_timeline(recorder, config, first=0, last=70))
    print()
    print("issues/cycle over time:")
    for start, rate in utilization_profile(recorder, bucket=8):
        print("  cycle %3d+  %s %.2f" % (start, "#" * int(rate * 8),
                                         rate))
    print("\ntotal: %d cycles, %d operations, peak %d active threads"
          % (result.cycles, result.stats.total_operations,
             result.stats.peak_active_threads))


if __name__ == "__main__":
    main()
