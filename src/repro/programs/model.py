"""Model: circuit model evaluator (paper Section 4 and Table 3).

Computes the change in current for each node of a 20-device CMOS
operational amplifier based on previous node voltages, using a level-1
MOSFET equation with cutoff / linear / saturation regions (data
dependent control, memory dominated, little ILP — exactly the paper's
characterization).  A master loop re-evaluates all devices and then
applies a relaxation update to the node voltages.

The threaded variant creates a new thread to evaluate each device on
each iteration of the master loop.

``queue_source`` builds the *interference* variant of Table 3: four
worker threads share a priority queue of identical devices through
synchronizing memory accesses (``aref-fe``/``aset!`` implement the
atomic take/put), so the runtime dilation of each thread's compile-time
schedule and the per-thread share of evaluations can be measured.
"""

import random

NDEV = 20
NNODE = 12
NITER = 2
STEP = 0.05
NW = 4                 # workers in the Table 3 queue variant
QDEV = 20              # devices drained from the queue in Table 3

_DEVICE_KERNEL = """
  (kernel dev (d)
    (let ((vg (aref v (aref gate d)))
          (vd (aref v (aref drain d)))
          (vs (aref v (aref src d)))
          (p (aref pol d))
          (K (aref kp d))
          (VT (aref vt d))
          (L (aref la d)))
      (let ((vgs (* p (- vg vs))) (vds (* p (- vd vs))))
        (let ((vov (- vgs VT)))
          (let ((cur (if (<= vov 0.0)
                         0.0
                         (if (< vds vov)
                             (* K (- (* vov vds) (* (* 0.5 vds) vds)))
                             (* (* (* 0.5 K) (* vov vov))
                                (+ 1.0 (* L vds)))))))
            (aset! idev d (* p cur)))))))
"""

_UPDATE_KERNEL = """
  (kernel update ()
    (for (n 0 NNODE)
      (aset! inode n 0.0))
    (for (d 0 NDEV)
      (let ((cur (aref idev d)))
        (aset! inode (aref drain d) (- (aref inode (aref drain d)) cur))
        (aset! inode (aref src d) (+ (aref inode (aref src d)) cur))))
    (for (n 0 NFREE)
      (aset! v n (+ (aref v n) (* {step} (aref inode n))))))
"""

_GLOBALS = """
  (const NDEV {ndev})
  (const NNODE {nnode})
  (const NFREE {nfree})
  (global v NNODE)
  (global inode NNODE)
  (global idev NDEV)
  (global gate NDEV :int)
  (global drain NDEV :int)
  (global src NDEV :int)
  (global pol NDEV)
  (global kp NDEV)
  (global vt NDEV)
  (global la NDEV)
"""


def _prelude(ndev=NDEV, nnode=NNODE):
    # The last two nodes are the supply rails; they stay fixed.
    return _GLOBALS.format(ndev=ndev, nnode=nnode, nfree=nnode - 2)


def _single(niter):
    return """
(program
%s
%s
%s
  (main
    (for (it 0 %d)
      (for (d 0 NDEV)
        (call dev d))
      (call update))))
""" % (_prelude(), _DEVICE_KERNEL, _UPDATE_KERNEL.format(step=STEP), niter)


def _threaded(niter):
    return """
(program
%s
  (global done NDEV :int :empty)
%s
%s
  (kernel devt (d)
    (call dev d)
    (aset-ef! done d 1))
  (main
    (for (it 0 %d)
      (forall (d 0 NDEV) (devt d))
      (for (d 0 NDEV)
        (sync (aref-fe done d)))
      (call update))))
""" % (_prelude(), _DEVICE_KERNEL, _UPDATE_KERNEL.format(step=STEP), niter)


def source(mode, niter=NITER):
    if mode in ("seq", "sts"):
        return _single(niter)
    if mode in ("tpe", "coupled"):
        return _threaded(niter)
    raise ValueError("model has no %r variant (data-dependent control "
                     "cannot be statically scheduled)" % mode)


MODES = ("seq", "sts", "tpe", "coupled")
OUTPUT_SYMBOLS = ("idev", "v")


# --- Table 3 variant ---------------------------------------------------------

def queue_source(mode, qdev=QDEV):
    """The modified Model benchmark of Table 3: a shared queue of
    identical devices.  ``mode`` selects four workers (coupled/tpe) or a
    single inline drain loop (seq/sts)."""
    worker_loop = """
    (let ((run 1))
      (while run
        (let ((idx (aref-fe Q 0)))
          (aset! Q 0 (+ idx 1))
          (if (< idx %d)
              (begin
                (call dev idx)
                (aset! owner idx t)
                (aset! count t (+ (aref count t) 1)))
              (set! run 0)))))""" % qdev
    if mode in ("tpe", "coupled"):
        return """
(program
%s
  (const NW %d)
  (global Q 1 :int)
  (global owner %d :int)
  (global count NW :int)
  (global donew NW :int :empty)
%s
  (kernel worker (t)
%s
    (aset-ef! donew t 1))
  (main
    (unroll (t 0 NW) (fork (worker t)))
    (unroll (t 0 NW) (sync (aref-ff donew t)))))
""" % (_prelude(ndev=qdev), NW, qdev, _DEVICE_KERNEL, worker_loop)
    return """
(program
%s
  (const NW %d)
  (global Q 1 :int)
  (global owner %d :int)
  (global count NW :int)
%s
  (main
    (let ((t 0))
%s)))
""" % (_prelude(ndev=qdev), NW, qdev, _DEVICE_KERNEL, worker_loop)


# --- inputs and reference -----------------------------------------------------

def make_inputs(seed=1, ndev=NDEV, nnode=NNODE, identical=False):
    """A synthetic 20-device two-stage CMOS op-amp netlist: differential
    pair + current mirrors + output stage, with randomized operating
    point.  ``identical`` builds Table 3's input (identical devices at
    the same operating point)."""
    rng = random.Random(seed)
    vdd_node = nnode - 1
    vss_node = nnode - 2
    gate, drain, src, pol, kp, vt, la = [], [], [], [], [], [], []
    for d in range(ndev):
        if identical:
            gate.append(0)
            drain.append(1)
            src.append(vss_node)
            pol.append(1.0)
            kp.append(2.0e-4)
            vt.append(0.7)
            la.append(0.02)
            continue
        is_pmos = d % 3 == 0
        pol.append(-1.0 if is_pmos else 1.0)
        gate.append(rng.randrange(0, nnode - 2))
        if is_pmos:
            src.append(vdd_node)
            drain.append(rng.randrange(0, nnode - 2))
        else:
            src.append(vss_node if d % 2 else rng.randrange(0, nnode - 2))
            drain.append(rng.randrange(0, nnode - 2))
        kp.append(rng.uniform(1.0e-4, 4.0e-4))
        vt.append(rng.uniform(0.5, 0.9))
        la.append(rng.uniform(0.01, 0.05))
    voltages = [rng.uniform(0.5, 4.5) for __ in range(nnode)]
    voltages[vss_node] = 0.0
    voltages[vdd_node] = 5.0
    return {
        "v": voltages, "gate": gate, "drain": drain, "src": src,
        "pol": pol, "kp": kp, "vt": vt, "la": la,
    }


def _eval_device(inputs, voltages, d):
    p = inputs["pol"][d]
    vg = voltages[inputs["gate"][d]]
    vd = voltages[inputs["drain"][d]]
    vs = voltages[inputs["src"][d]]
    vgs = p * (vg - vs)
    vds = p * (vd - vs)
    vov = vgs - inputs["vt"][d]
    k = inputs["kp"][d]
    if vov <= 0.0:
        cur = 0.0
    elif vds < vov:
        cur = k * (vov * vds - (0.5 * vds) * vds)
    else:
        cur = ((0.5 * k) * (vov * vov)) * (1.0 + inputs["la"][d] * vds)
    return p * cur


def reference(inputs, ndev=NDEV, nnode=NNODE, niter=NITER):
    """Expected idev/v after the master loop, replicating the source."""
    voltages = list(inputs["v"])
    idev = [0.0] * ndev
    for __ in range(niter):
        for d in range(ndev):
            idev[d] = _eval_device(inputs, voltages, d)
        inode = [0.0] * nnode
        for d in range(ndev):
            inode[inputs["drain"][d]] -= idev[d]
            inode[inputs["src"][d]] += idev[d]
        for n in range(nnode - 2):
            voltages[n] = voltages[n] + STEP * inode[n]
    return {"idev": idev, "v": voltages}


def queue_reference(inputs, qdev=QDEV):
    """Expected idev for the queue variant (evaluations only)."""
    voltages = list(inputs["v"])
    return {"idev": [_eval_device(inputs, voltages, d)
                     for d in range(qdev)]}
