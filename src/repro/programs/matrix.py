"""Matrix: 9x9 floating point matrix multiply (paper Section 4).

The inner (k) loop is unrolled completely in every variant.  The
threaded versions execute all iterations of the outer (i) loop in
parallel, one thread per result row, joined through an initially-empty
flag array.  The ideal version has *all* loops unrolled, so the entire
computation is one statically scheduled block.
"""

import random

N = 9

_BODY = """
      (let ((s 0.0))
        (unroll (k 0 {n})
          (set! s (+ s (* (aref A (+ (* i {n}) k))
                          (aref B (+ (* k {n}) j))))))
        (aset! C (+ (* i {n}) j) s))
"""


def _single(loop_head_i, loop_head_j, n):
    return """
(program
  (const N {n})
  (global A (* N N))
  (global B (* N N))
  (global C (* N N))
  (main
    ({head_i} (i 0 {n})
      ({head_j} (j 0 {n})
{body}))))
""".format(n=n, head_i=loop_head_i, head_j=loop_head_j,
           body=_BODY.format(n=n))


def _threaded(n):
    return """
(program
  (const N {n})
  (global A (* N N))
  (global B (* N N))
  (global C (* N N))
  (global done N :int :empty)
  (kernel row (i)
    (for (j 0 {n})
{body})
    (aset-ef! done i 1))
  (main
    (forall (i 0 {n}) (row i))
    (for (i 0 {n})
      (sync (aref-ff done i)))))
""".format(n=n, body=_BODY.format(n=n))


def source(mode, n=N):
    """Mini-language source for the given simulation mode."""
    if mode in ("seq", "sts"):
        return _single("for", "for", n)
    if mode == "ideal":
        return _single("unroll", "unroll", n)
    if mode in ("tpe", "coupled"):
        return _threaded(n)
    raise ValueError("matrix has no %r variant" % mode)


MODES = ("seq", "sts", "ideal", "tpe", "coupled")
OUTPUT_SYMBOLS = ("C",)


def make_inputs(seed=1, n=N):
    rng = random.Random(seed)
    return {
        "A": [rng.uniform(-1.0, 1.0) for __ in range(n * n)],
        "B": [rng.uniform(-1.0, 1.0) for __ in range(n * n)],
    }


def reference(inputs, n=N):
    """Expected outputs, with the source program's accumulation order."""
    a = inputs["A"]
    b = inputs["B"]
    c = [0.0] * (n * n)
    for i in range(n):
        for j in range(n):
            s = 0.0
            for k in range(n):
                s = s + a[i * n + k] * b[k * n + j]
            c[i * n + j] = s
    return {"C": c}
