"""The paper's benchmark suite: Matrix, FFT, LUD, and Model.

Each module exposes ``source(mode, ...)`` returning mini-language text
for the requested simulation mode, ``make_inputs(seed)`` returning the
memory overrides, and ``reference(inputs)`` computing the expected
outputs in plain Python with the exact operation order of the source
program, so compiled results can be compared bit for bit.
"""

from .suite import BENCHMARKS, Benchmark, get_benchmark, scaled

__all__ = ["BENCHMARKS", "Benchmark", "get_benchmark", "scaled"]
