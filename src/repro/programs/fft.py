"""FFT: decimation-in-time FFT of complex numbers (paper: 32 points).

A *sequential* data-movement routine places the input vector in
bit-flipped order (this is the benchmark's serial section — the reason
TPE loses to STS in the paper's Table 2), followed by log2(N) butterfly
stages.  Threaded variants execute the butterflies of one stage
concurrently with NW worker threads, joining between stages; the ideal
variant unrolls everything into a single static block.

Twiddle factors (cos/sin) arrive as input arrays: the mini-language has
no transcendental operations, matching the paper's machine which has
none either.

All entry points take ``n`` (any power of two >= 4; the paper's size,
32, is the default).
"""

import math
import random

N = 32
NW = 4              # stage worker threads in the threaded variants


def _logn(n):
    log = n.bit_length() - 1
    if n < 4 or (1 << log) != n:
        raise ValueError("fft size must be a power of two >= 4, got %r"
                         % n)
    return log


def _prelude(n):
    return """
  (const N {n})
  (const LOGN {logn})
  (const HALF {half})
  (global xre N)
  (global xim N)
  (global re N)
  (global im N)
  (global wr HALF)
  (global wi HALF)
""".format(n=n, logn=_logn(n), half=n // 2)


# The sequential data-movement routine: computes each bit-flipped index
# arithmetically and scatters the input vector.  Hand-unrolled by four
# so a wide machine can overlap the independent reversal chains — but a
# thread confined to one cluster (SEQ, or TPE's main thread) cannot,
# which is exactly why the paper's FFT punishes TPE.
_BITREV_LOOP = """
    (for (i 0 N 4)
      (unroll (u 0 4)
        (let ((x (+ i u)) (r 0))
          (unroll (b 0 LOGN)
            (set! r (| (<< r 1) (& x 1)))
            (set! x (>> x 1)))
          (aset! re r (aref xre (+ i u)))
          (aset! im r (aref xim (+ i u))))))
"""

# One butterfly at indices i0/i1 with twiddle index k.
_BUTTERFLY = """
          (let ((wre (aref wr k)) (wim (aref wi k))
                (re1 (aref re i1)) (im1 (aref im i1)))
            (let ((tr (- (* wre re1) (* wim im1)))
                  (ti (+ (* wre im1) (* wim re1)))
                  (re0 (aref re i0)) (im0 (aref im i0)))
              (aset! re i1 (- re0 tr))
              (aset! im i1 (- im0 ti))
              (aset! re i0 (+ re0 tr))
              (aset! im i0 (+ im0 ti))))
"""


def _single(n, ideal):
    logn = _logn(n)
    half = n // 2
    if ideal:
        stage_code = []
        for s in range(logn):
            h = 1 << s
            m = h * 2
            step = half // h
            for idx in range(half):
                blk, j = divmod(idx, h)
                i0 = blk * m + j
                stage_code.append("""
        (let ((i0 %d) (i1 %d) (k %d))
%s)""" % (i0, i0 + h, j * step, _BUTTERFLY))
        stages = "\n".join(stage_code)
        bitrev = "\n".join(
            "    (begin (aset! re %d (aref xre %d)) "
            "(aset! im %d (aref xim %d)))"
            % (_bit_reverse(i, logn), i, _bit_reverse(i, logn), i)
            for i in range(n))
    else:
        # Per-stage loops with constant h/m/step and the butterfly
        # loop hand-unrolled by two (the pairs are provably disjoint,
        # so a wide machine can overlap them — SEQ cannot).
        stage_code = []
        for s in range(logn):
            h = 1 << s
            m = h * 2
            step = half >> s
            if h == 1:
                stage_code.append("""
    (for (b 0 N %d)
      (unroll (u 0 2)
        (let ((i0 (+ b (* u %d))) (i1 (+ (+ b (* u %d)) %d)) (k 0))
%s)))""" % (2 * m, m, m, h, _BUTTERFLY))
            else:
                stage_code.append("""
    (for (b 0 N %d)
      (for (j 0 %d 2)
        (unroll (u 0 2)
          (let ((i0 (+ (+ b j) u)) (i1 (+ (+ (+ b j) u) %d))
                (k (* (+ j u) %d)))
%s))))""" % (m, h, h, step, _BUTTERFLY))
        stages = "\n".join(stage_code)
        bitrev = _BITREV_LOOP
    return """
(program
%s
  (main
%s
%s))
""" % (_prelude(n), bitrev, stages)


def _threaded(n):
    return """
(program
%s
  (const NW {nw})
  (global done NW :int :empty)
  (kernel bfw (t h m step)
    (let ((idx t))
      (while (< idx HALF)
        (let ((blk (/ idx h)) (j (mod idx h)))
          (let ((i0 (+ (* blk m) j)) (i1 (+ (+ (* blk m) j) h))
                (k (* j step)))
%s))
        (set! idx (+ idx NW))))
    (aset-ef! done t 1))
  (main
%s
    (for (s 0 LOGN)
      (let ((h (<< 1 s)) (m (<< 1 (+ s 1))) (step (>> HALF s)))
        (unroll (t 0 NW) (fork (bfw t h m step)))
        (unroll (t 0 NW) (sync (aref-fe done t)))))))
""".format(nw=NW) % (_prelude(n), _BUTTERFLY, _BITREV_LOOP)


def source(mode, n=N):
    if mode in ("seq", "sts"):
        return _single(n, ideal=False)
    if mode == "ideal":
        return _single(n, ideal=True)
    if mode in ("tpe", "coupled"):
        return _threaded(n)
    raise ValueError("fft has no %r variant" % mode)


MODES = ("seq", "sts", "ideal", "tpe", "coupled")
OUTPUT_SYMBOLS = ("re", "im")


def _bit_reverse(value, bits):
    result = 0
    for __ in range(bits):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def make_inputs(seed=1, n=N):
    rng = random.Random(seed)
    return {
        "xre": [rng.uniform(-1.0, 1.0) for __ in range(n)],
        "xim": [rng.uniform(-1.0, 1.0) for __ in range(n)],
        "wr": [math.cos(-2.0 * math.pi * k / n) for k in range(n // 2)],
        "wi": [math.sin(-2.0 * math.pi * k / n) for k in range(n // 2)],
    }


def reference(inputs, n=N):
    """Expected spectrum, replicating the source's butterfly order."""
    logn = _logn(n)
    half = n // 2
    re = [0.0] * n
    im = [0.0] * n
    for i in range(n):
        re[_bit_reverse(i, logn)] = inputs["xre"][i]
        im[_bit_reverse(i, logn)] = inputs["xim"][i]
    wr = inputs["wr"]
    wi = inputs["wi"]
    for s in range(logn):
        h = 1 << s
        m = h * 2
        step = half >> s
        for b in range(0, n, m):
            for j in range(h):
                i0, i1, k = b + j, b + j + h, j * step
                tr = wr[k] * re[i1] - wi[k] * im[i1]
                ti = wr[k] * im[i1] + wi[k] * re[i1]
                re[i1], im[i1] = re[i0] - tr, im[i0] - ti
                re[i0], im[i0] = re[i0] + tr, im[i0] + ti
    return {"re": re, "im": im}
