"""Benchmark registry used by tests and the experiment harness."""

from dataclasses import dataclass, field

from . import fft, lud, matrix, model


@dataclass(frozen=True)
class Benchmark:
    """Uniform adapter over one benchmark module."""

    name: str
    modes: tuple
    output_symbols: tuple
    _source: object = field(repr=False, default=None)
    _make_inputs: object = field(repr=False, default=None)
    _reference: object = field(repr=False, default=None)

    def source(self, mode):
        return self._source(mode)

    def make_inputs(self, seed=1):
        return self._make_inputs(seed)

    def reference(self, inputs):
        return self._reference(inputs)

    def check(self, result, inputs, rtol=1e-9, atol=1e-12):
        """Compare a SimResult/InterpResult against the reference;
        returns a list of mismatch descriptions (empty = pass)."""
        expected = self.reference(inputs)
        problems = []
        for symbol in self.output_symbols:
            got = result.read_symbol(symbol)
            want = expected[symbol]
            if len(got) != len(want):
                problems.append("%s: length %d != %d"
                                % (symbol, len(got), len(want)))
                continue
            for index, (g, w) in enumerate(zip(got, want)):
                if abs(g - w) > atol + rtol * abs(w):
                    problems.append("%s[%d]: got %r want %r"
                                    % (symbol, index, g, w))
                    if len(problems) > 5:
                        return problems
        return problems


BENCHMARKS = {
    "matrix": Benchmark("matrix", matrix.MODES, matrix.OUTPUT_SYMBOLS,
                        matrix.source, matrix.make_inputs,
                        matrix.reference),
    "fft": Benchmark("fft", fft.MODES, fft.OUTPUT_SYMBOLS,
                     fft.source, fft.make_inputs, fft.reference),
    "lud": Benchmark("lud", lud.MODES, lud.OUTPUT_SYMBOLS,
                     lud.source, lud.make_inputs, lud.reference),
    "model": Benchmark("model", model.MODES, model.OUTPUT_SYMBOLS,
                       model.source, model.make_inputs, model.reference),
}

#: Display order used throughout the paper's tables.
BENCHMARK_ORDER = ("matrix", "fft", "model", "lud")


def get_benchmark(name):
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError("unknown benchmark %r (have: %s)"
                       % (name, ", ".join(sorted(BENCHMARKS))))


def scaled(name, **params):
    """A size-parameterized variant of a benchmark.

    ``matrix``: ``n`` (matrix dimension); ``fft``: ``n`` (points, power
    of two); ``lud``: ``mesh`` (grid side); ``model``: ``niter``
    (master-loop iterations).  Defaults are the paper's sizes.
    """
    if name == "matrix":
        n = params.pop("n", matrix.N)
        spec = (lambda mode: matrix.source(mode, n),
                lambda seed=1: matrix.make_inputs(seed, n),
                lambda inputs: matrix.reference(inputs, n),
                matrix.MODES, matrix.OUTPUT_SYMBOLS)
    elif name == "fft":
        n = params.pop("n", fft.N)
        spec = (lambda mode: fft.source(mode, n),
                lambda seed=1: fft.make_inputs(seed, n),
                lambda inputs: fft.reference(inputs, n),
                fft.MODES, fft.OUTPUT_SYMBOLS)
    elif name == "lud":
        mesh = params.pop("mesh", lud.MESH)
        n, band = mesh * mesh, mesh
        spec = (lambda mode: lud.source(mode, n, band),
                lambda seed=1: lud.make_inputs(seed, mesh),
                lambda inputs: lud.reference(inputs, n, band),
                lud.MODES, lud.OUTPUT_SYMBOLS)
    elif name == "model":
        niter = params.pop("niter", model.NITER)
        spec = (lambda mode: model.source(mode, niter),
                lambda seed=1: model.make_inputs(seed),
                lambda inputs: model.reference(inputs, niter=niter),
                model.MODES, model.OUTPUT_SYMBOLS)
    else:
        raise KeyError("unknown benchmark %r" % name)
    if params:
        raise TypeError("unknown parameters for %s: %s"
                        % (name, sorted(params)))
    source_fn, inputs_fn, reference_fn, modes, symbols = spec
    return Benchmark(name, modes, symbols, source_fn, inputs_fn,
                     reference_fn)
