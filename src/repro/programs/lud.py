"""LUD: sparse LU decomposition (paper Section 4).

Solves the factorization step for a sparse system whose matrix is the
64x64 adjacency-structured matrix of an 8x8 mesh (a diagonally dominant
mesh Laplacian, so no pivoting is needed).  Elimination stays within
the mesh bandwidth; whether a target row is updated depends on the data
(the ``aik != 0`` test), which is why the paper has no ideal variant.

Following the paper's phrasing ("after selecting a source row"), each
step first copies the pivot row's band into a scratch array; target-row
updates then read only the scratch row, and the hand-unrolled (x4)
update loop schedules its independent iterations in parallel.

The threaded variants update all target rows concurrently: NW worker
threads take the rows below the pivot in a strided fashion (the
benchmark programs are written to divide work evenly among the
clusters) and join through empty flags before the next step.
"""

import random

MESH = 8
N = MESH * MESH
BAND = MESH           # elimination bandwidth of a row-major mesh ordering
NW = 4

# One update of A[i][k+1+u] -= l * rowk[u]; branch-free so unrolled
# copies schedule in parallel.
_JSTEP = """
  (kernel jstep (i j1 u (l :float))
    (aset! A (+ (+ (* i {n}) j1) u)
           (- (aref A (+ (+ (* i {n}) j1) u)) (* l (aref rowk u)))))
"""

# Update one target row i (runs under "aik != 0").
_ROW_UPDATE = """
  (kernel rowupd (k i width (pivot :float))
    (let ((aik (aref A (+ (* i {n}) k))))
      (if (!= aik 0.0)
        (let ((l (/ aik pivot)) (j1 (+ k 1)))
          (aset! A (+ (* i {n}) k) l)
          (let ((u 0) (w4 (- width 3)))
            (while (< u w4)
              (call jstep i j1 u l)
              (call jstep i j1 (+ u 1) l)
              (call jstep i j1 (+ u 2) l)
              (call jstep i j1 (+ u 3) l)
              (set! u (+ u 4)))
            (while (< u width)
              (call jstep i j1 u l)
              (set! u (+ u 1))))))))
"""

# Copy the source row's band into the scratch array (sequential).
_COPY_ROW = """
  (kernel copyrow (k width)
    (for (u 0 width)
      (aset! rowk u (aref A (+ (+ (* k {n}) k) (+ u 1))))))
"""


def _prelude(n, band):
    return """
  (const N {n})
  (const B {band})
  (const NW {nw})
  (global A (* N N))
  (global rowk B)
""".format(n=n, band=band, nw=NW)


def _single(n, band):
    return """
(program
%s
%s
%s
%s
  (main
    (for (k 0 (- N 1))
      (let ((width (- (min (+ (+ k B) 1) N) (+ k 1)))
            (imax (min (+ (+ k B) 1) N))
            (pivot (aref A (+ (* k %d) k))))
        (call copyrow k width)
        (for (i (+ k 1) imax)
          (call rowupd k i width pivot))))))
""" % (_prelude(n, band), _JSTEP.format(n=n), _ROW_UPDATE.format(n=n),
       _COPY_ROW.format(n=n), n)


def _threaded(n, band):
    return """
(program
%s
  (global done NW :int :empty)
%s
%s
%s
  (kernel upd (k t width imax (pivot :float))
    (let ((i (+ (+ k 1) t)))
      (while (< i imax)
        (call rowupd k i width pivot)
        (set! i (+ i NW))))
    (aset-ef! done t 1))
  (main
    (for (k 0 (- N 1))
      (let ((width (- (min (+ (+ k B) 1) N) (+ k 1)))
            (imax (min (+ (+ k B) 1) N))
            (pivot (aref A (+ (* k %d) k))))
        (call copyrow k width)
        (unroll (t 0 NW) (fork (upd k t width imax pivot)))
        (unroll (t 0 NW) (sync (aref-fe done t)))))))
""" % (_prelude(n, band), _JSTEP.format(n=n), _ROW_UPDATE.format(n=n),
       _COPY_ROW.format(n=n), n)


def source(mode, n=N, band=BAND):
    if mode in ("seq", "sts"):
        return _single(n, band)
    if mode in ("tpe", "coupled"):
        return _threaded(n, band)
    raise ValueError("lud has no %r variant (data-dependent control "
                     "cannot be statically scheduled)" % mode)


MODES = ("seq", "sts", "tpe", "coupled")
OUTPUT_SYMBOLS = ("A",)


def make_inputs(seed=1, mesh=MESH):
    """A diagonally dominant mesh matrix: the 8x8 mesh's Laplacian plus
    a small random perturbation (keeps entries exactly zero off the
    mesh structure, so the zero tests exercise real sparsity)."""
    rng = random.Random(seed)
    n = mesh * mesh
    a = [0.0] * (n * n)

    def node(r, c):
        return r * mesh + c

    for r in range(mesh):
        for c in range(mesh):
            me = node(r, c)
            for dr, dc in ((0, 1), (0, -1), (1, 0), (-1, 0)):
                nr, nc = r + dr, c + dc
                if 0 <= nr < mesh and 0 <= nc < mesh:
                    a[me * n + node(nr, nc)] = -1.0 - rng.uniform(0.0, 0.25)
            a[me * n + me] = 5.0 + rng.uniform(0.0, 1.0)
    return {"A": a}


def reference(inputs, n=N, band=BAND):
    """Expected in-place LU factors, mirroring the source exactly."""
    a = list(inputs["A"])
    for k in range(n - 1):
        jmax = min(k + band + 1, n)
        width = jmax - (k + 1)
        pivot = a[k * n + k]
        rowk = [a[k * n + k + 1 + u] for u in range(width)]
        for i in range(k + 1, jmax):
            aik = a[i * n + k]
            if aik != 0.0:
                l = aik / pivot
                a[i * n + k] = l
                for u in range(width):
                    index = i * n + (k + 1) + u
                    a[index] = a[index] - l * rowk[u]
    return {"A": a}
