"""Top-level command line interface.

::

    python -m repro compile prog.sexp --mode coupled -o prog.s
    python -m repro run prog.sexp --mode coupled --set A=1,2,3,4
    python -m repro run prog.s --asm --trace --window 60
    python -m repro run prog.sexp --profile 20   # cProfile hotspots
    python -m repro run prog.sexp --engine scan  # force the scan kernel
    python -m repro run prog.sexp --sanitize shadow  # online sanitizer
    python -m repro replay sanitizer-reports/main-divergence-cycle4097
    python -m repro modes            # list machine modes
    python -m repro describe         # show the baseline machine
    python -m repro bench --quick    # benchmark the simulator itself
    python -m repro bench --quick --backend batch --lanes 16
                                     # 16-seed sweep in numpy lockstep
    python -m repro cache info       # on-disk compile cache footprint
    python -m repro cache prune --max-bytes 50000000

Programs are the mini-language (``.sexp``) or assembly (``--asm``).
"""

import argparse
import sys

from . import compile_program, run_program
from .compiler.schedule.modes import MODES
from .isa import asmtext
from .machine import MEMORY_MODELS, baseline
from .machine.config import ENGINES
from .machine.interconnect import CommScheme
from .sim import FaultPlan, make_node
from .sim.trace import TraceRecorder, render_timeline


def _build_config(args):
    config = baseline()
    if getattr(args, "interconnect", None):
        config = config.with_interconnect(args.interconnect)
    if getattr(args, "memory", None):
        config = config.with_memory(MEMORY_MODELS[args.memory]())
    if getattr(args, "seed", None) is not None:
        config = config.with_seed(args.seed)
    if getattr(args, "faults", None):
        config = config.with_faults(FaultPlan.from_file(args.faults))
    if getattr(args, "engine", None):
        config = config.with_engine(args.engine)
    if getattr(args, "no_fusion", False):
        config = config.with_fusion(False)
    return config


def _parse_overrides(pairs):
    overrides = {}
    for pair in pairs or ():
        name, __, values = pair.partition("=")
        if not values:
            raise SystemExit("--set expects NAME=v1,v2,...")
        parsed = []
        for item in values.split(","):
            try:
                parsed.append(int(item))
            except ValueError:
                parsed.append(float(item))
        overrides[name] = parsed
    return overrides


def _load_program(args, config):
    text = open(args.program).read() if args.program != "-" \
        else sys.stdin.read()
    if args.asm:
        return asmtext.parse(text), None
    compiled = compile_program(text, config, mode=args.mode)
    return compiled.program, compiled


def cmd_compile(args, out):
    config = _build_config(args)
    program, compiled = _load_program(args, config)
    text = asmtext.emit(program)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        out.write("wrote %s (%d threads, %d operations)\n"
                  % (args.output, len(program.threads),
                     program.static_operation_count()))
    else:
        out.write(text)
    if compiled is not None and args.report:
        for name, report in sorted(compiled.reports.items()):
            out.write("; thread %-12s words=%-4d ops=%-4d moves=%-3d "
                      "peak-regs=%s\n"
                      % (name, report.words, report.operations,
                         report.moves, report.peak_registers))
    return 0


def cmd_run(args, out):
    config = _build_config(args)
    program, __ = _load_program(args, config)
    overrides = _parse_overrides(args.set)
    recorder = TraceRecorder() if args.trace else None
    profiler = None
    if args.profile is not None:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
    if args.sanitize:
        from .sim.sanitize import run_sanitized
        result = run_sanitized(program, config, overrides=overrides,
                               max_cycles=args.max_cycles,
                               watchdog_cycles=args.watchdog_cycles,
                               observer=recorder, policy=args.sanitize)
    else:
        node = make_node(config, observer=recorder)
        result = node.run(program, overrides=overrides,
                          max_cycles=args.max_cycles,
                          watchdog_cycles=args.watchdog_cycles)
    if profiler is not None:
        profiler.disable()
    out.write("cycles: %d\n" % result.cycles)
    out.write("stats:  %s\n" % result.stats)
    summary = getattr(result, "sanitizer", None)
    if summary is not None:
        out.write("sanitizer: level=%s audits=%d shadow_checks=%d "
                  "trips=%d quarantined=%d%s\n"
                  % (summary.level, summary.audits,
                     summary.shadow_checks, summary.trips,
                     len(summary.quarantined),
                     " de-optimized" if summary.de_optimized else ""))
        for path in summary.reports:
            out.write("sanitizer report: %s (replay with: python -m "
                      "repro replay %s)\n" % (path, path))
    for symbol in (args.print or sorted(program.data.symbols)):
        values = result.read_symbol(symbol)
        preview = values if len(values) <= 16 else values[:16] + ["..."]
        out.write("%s = %s\n" % (symbol, preview))
    if recorder is not None:
        out.write("\n")
        out.write(render_timeline(recorder, config, last=args.window))
        out.write("\n")
    if profiler is not None:
        out.write("\n")
        out.write(_profile_report(profiler, args.profile))
    return 0


def _profile_report(profiler, top):
    """The top-N cumulative-time rows of a cProfile run, as text."""
    import io
    import pstats
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buf.getvalue()


def cmd_replay(args, out):
    """Deterministically re-execute a sanitizer reproducer bundle."""
    from .sim.sanitize import replay_bundle
    replay_bundle(args.bundle, out=lambda line: out.write(line + "\n"),
                  max_cycles=args.max_cycles, trace=args.trace)
    return 0


def cmd_modes(args, out):
    for mode in MODES:
        out.write("%s\n" % mode)
    return 0


def _human_bytes(count):
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return "%.1f %s" % (count, unit) if unit != "B" \
                else "%d B" % count
        count /= 1024.0


def cmd_cache(args, out):
    """Inspect and bound the on-disk compile cache."""
    from .compiler.cache import CompileCache, default_cache_dir
    cache = CompileCache(args.dir or default_cache_dir())
    if args.action == "info":
        stats = cache.stats()
        out.write("compile cache: %s\n" % stats["root"])
        out.write("entries:       %d\n" % stats["entries"])
        out.write("total size:    %s\n"
                  % _human_bytes(stats["total_bytes"]))
        return 0
    if args.action == "clear":
        removed = cache.clear()
        out.write("removed %d entr%s from %s\n"
                  % (removed, "y" if removed == 1 else "ies",
                     cache.root))
        return 0
    # prune
    if args.max_bytes is None:
        raise SystemExit("cache prune requires --max-bytes N")
    removed, freed = cache.prune(args.max_bytes)
    stats = cache.stats()
    out.write("pruned %d entr%s (%s freed); %d left (%s)\n"
              % (removed, "y" if removed == 1 else "ies",
                 _human_bytes(freed), stats["entries"],
                 _human_bytes(stats["total_bytes"])))
    return 0


def cmd_describe(args, out):
    out.write(_build_config(args).describe() + "\n")
    return 0


def _add_program_options(parser):
    parser.add_argument("program", help="source file, or '-' for stdin")
    parser.add_argument("--mode", choices=MODES, default="coupled")
    parser.add_argument("--asm", action="store_true",
                        help="input is assembly, not mini-language")
    parser.add_argument("--interconnect",
                        choices=[s.value for s in CommScheme])
    parser.add_argument("--memory", choices=sorted(MEMORY_MODELS))
    parser.add_argument("--seed", type=int)
    parser.add_argument("--engine", choices=ENGINES,
                        help="simulator kernel (default %s)" % ENGINES[0])
    parser.add_argument("--no-fusion", action="store_true",
                        help="disable superblock fusion in the event "
                             "kernel (word-by-word dispatch)")


def main(argv=None, out=None):
    out = out or sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # ``bench`` owns its option surface; dispatch before parsing so its
    # flags aren't constrained by the shared program options.
    if argv and argv[0] == "bench":
        from . import bench
        return bench.main(argv[1:], out=out)
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Processor coupling: compile and simulate programs "
                    "for a multi-cluster node.")
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile",
                                    help="compile to wide-word assembly")
    _add_program_options(compile_parser)
    compile_parser.add_argument("-o", "--output")
    compile_parser.add_argument("--report", action="store_true",
                                help="append per-thread statistics")
    compile_parser.set_defaults(func=cmd_compile)

    run_parser = sub.add_parser("run", help="compile (or load) and "
                                            "simulate")
    _add_program_options(run_parser)
    run_parser.add_argument("--set", action="append", metavar="SYM=v,..",
                            help="initialize a memory symbol")
    run_parser.add_argument("--print", action="append", metavar="SYM",
                            help="symbols to dump (default: all)")
    run_parser.add_argument("--trace", action="store_true",
                            help="show a unit-occupancy timeline")
    run_parser.add_argument("--window", type=int, default=64,
                            help="timeline window in cycles")
    run_parser.add_argument("--max-cycles", type=int, default=5_000_000)
    run_parser.add_argument("--faults", metavar="PLAN.json",
                            help="replay a fault-injection plan "
                                 "(see repro.sim.faults)")
    run_parser.add_argument("--watchdog-cycles", type=int, default=100_000,
                            metavar="K",
                            help="raise WatchdogError after K cycles "
                                 "without forward progress "
                                 "(default 100000)")
    run_parser.add_argument("--profile", type=int, nargs="?", const=15,
                            default=None, metavar="N",
                            help="profile the simulation and print the "
                                 "top N functions by cumulative time "
                                 "(default 15)")
    run_parser.add_argument("--sanitize", nargs="?", const="audit",
                            choices=("audit", "shadow", "deep"),
                            default=None, metavar="LEVEL",
                            help="run under the online state sanitizer "
                                 "(audit = strided invariant checks; "
                                 "shadow adds differential execution "
                                 "against the unfused kernel; deep "
                                 "audits every cycle); bare --sanitize "
                                 "means audit")
    run_parser.set_defaults(func=cmd_run)

    replay_parser = sub.add_parser(
        "replay", help="re-execute a sanitizer reproducer bundle")
    replay_parser.add_argument("bundle",
                               help="bundle directory written by a "
                                    "sanitizer trip (see sanitizer "
                                    "report output)")
    replay_parser.add_argument("--max-cycles", type=int, default=None,
                               help="override the bundle's recorded "
                                    "cycle budget")
    replay_parser.add_argument("--trace", action="store_true",
                               help="show the reference schedule "
                                    "entering the divergence window")
    replay_parser.set_defaults(func=cmd_replay)

    # Listed for --help only; real dispatch happens above.
    sub.add_parser("bench", add_help=False,
                   help="benchmark the simulator on the paper suite")

    cache_parser = sub.add_parser(
        "cache", help="inspect or bound the on-disk compile cache")
    cache_parser.add_argument("action",
                              choices=("info", "clear", "prune"))
    cache_parser.add_argument("--dir", metavar="PATH",
                              help="cache directory (default: "
                                   "$REPRO_CACHE_DIR or "
                                   "~/.cache/repro/compile)")
    cache_parser.add_argument("--max-bytes", type=int, metavar="N",
                              help="prune: evict oldest entries until "
                                   "the cache fits in N bytes")
    cache_parser.set_defaults(func=cmd_cache)

    modes_parser = sub.add_parser("modes", help="list machine modes")
    modes_parser.set_defaults(func=cmd_modes)

    describe_parser = sub.add_parser("describe",
                                     help="show the machine")
    describe_parser.add_argument("--interconnect",
                                 choices=[s.value for s in CommScheme])
    describe_parser.add_argument("--memory",
                                 choices=sorted(MEMORY_MODELS))
    describe_parser.add_argument("--seed", type=int)
    describe_parser.set_defaults(func=cmd_describe)

    args = parser.parse_args(argv)
    return args.func(args, out)


if __name__ == "__main__":
    sys.exit(main())
