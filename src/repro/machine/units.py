"""Function-unit descriptions.

A function unit may be generic (integer ALU) or specialized (floating
point, memory access, branch calculation) and may be pipelined to
arbitrary depth (paper Section 2).  ``latency`` is the number of cycles
between issue and writeback; every unit accepts one operation per cycle.
"""

from dataclasses import dataclass

from ..errors import ConfigError
from ..isa.operations import UnitClass


@dataclass(frozen=True)
class FunctionUnitSpec:
    """Static parameters of one function unit."""

    kind: UnitClass
    latency: int = 1

    def __post_init__(self):
        if self.latency < 1:
            raise ConfigError("unit latency must be >= 1, got %d"
                              % self.latency)


def iu(latency=1):
    """An integer unit."""
    return FunctionUnitSpec(UnitClass.IU, latency)


def fpu(latency=1):
    """A floating point unit."""
    return FunctionUnitSpec(UnitClass.FPU, latency)


def mem(latency=1):
    """A memory unit (also performs address arithmetic)."""
    return FunctionUnitSpec(UnitClass.MEM, latency)


def bru(latency=1):
    """A branch calculation unit."""
    return FunctionUnitSpec(UnitClass.BRU, latency)
