"""Machine descriptions: units, clusters, interconnect, memory, nodes."""

from .units import FunctionUnitSpec, bru, fpu, iu, mem
from .cluster import ClusterSpec, arithmetic_cluster, branch_cluster
from .interconnect import (ALL_SCHEMES, CommScheme, InterconnectSpec,
                           UNLIMITED)
from .memory import MEMORY_MODELS, MemorySpec, mem1, mem2, min_memory
from .config import (ARBITRATION_POLICIES, MachineConfig, UnitSlot, baseline,
                     single_cluster, unit_mix)

__all__ = [
    "FunctionUnitSpec", "bru", "fpu", "iu", "mem",
    "ClusterSpec", "arithmetic_cluster", "branch_cluster",
    "ALL_SCHEMES", "CommScheme", "InterconnectSpec", "UNLIMITED",
    "MEMORY_MODELS", "MemorySpec", "mem1", "mem2", "min_memory",
    "ARBITRATION_POLICIES", "MachineConfig", "UnitSlot", "baseline",
    "single_cluster", "unit_mix",
]
