"""Unit interconnection network schemes (paper, "Restricting
Communication").

Writebacks from function units to register files travel over buses and
enter through register-file write ports.  The five schemes simulated in
the paper trade ports/buses (chip area) against cycle count:

* **Full** — fully connected; no restriction on buses or ports.
* **Tri-port** — each register file has three write ports: one used
  locally by the cluster's own units, and two global ports, each with
  its own bus, usable by units in other clusters.
* **Dual-port** — like Tri-port with a single global port.
* **Single-port** — a single write port per register file with its own
  bus; local and remote writers contend for it, but writes to different
  register files never interfere.
* **Shared-bus** — one local port per register file plus one port on a
  single *globally shared* bus: at most one remote write per cycle in
  the whole machine.
"""

from dataclasses import dataclass
from enum import Enum


class CommScheme(Enum):
    FULL = "full"
    TRI_PORT = "tri-port"
    DUAL_PORT = "dual-port"
    SINGLE_PORT = "single-port"
    SHARED_BUS = "shared-bus"

    def __str__(self):
        return self.value


#: Unlimited capacity marker.
UNLIMITED = None


@dataclass(frozen=True)
class InterconnectSpec:
    """Per-cycle writeback capacities implied by a scheme.

    ``local_ports``   - writes per cycle into a register file from its
                        own cluster's units (None = unlimited).
    ``global_ports``  - writes per cycle into a register file from
                        remote clusters (None = unlimited).
    ``combined_port`` - True when local and remote writers share the
                        same port budget (Single-port).
    ``machine_bus``   - total remote writes per cycle across the whole
                        machine (None = unlimited); models Shared-bus.
    """

    scheme: CommScheme
    local_ports: object = UNLIMITED
    global_ports: object = UNLIMITED
    combined_port: bool = False
    machine_bus: object = UNLIMITED

    @classmethod
    def from_scheme(cls, scheme):
        """Capacities per scheme.

        A unit writing its own cluster's register file uses a dedicated
        local path (the "port used locally within a cluster"), so the
        local port never throttles except under Single-port, where the
        *one* port really is shared by everyone.  The counted global
        ports/buses constrain remote writers — matching the paper's
        observation that Tri-port costs only ~4% over full connection
        while Single-port and Shared-bus are dramatic.
        """
        scheme = CommScheme(scheme)
        if scheme is CommScheme.FULL:
            return cls(scheme)
        if scheme is CommScheme.TRI_PORT:
            return cls(scheme, local_ports=UNLIMITED, global_ports=2)
        if scheme is CommScheme.DUAL_PORT:
            return cls(scheme, local_ports=UNLIMITED, global_ports=1)
        if scheme is CommScheme.SINGLE_PORT:
            return cls(scheme, local_ports=1, global_ports=1,
                       combined_port=True)
        if scheme is CommScheme.SHARED_BUS:
            return cls(scheme, local_ports=UNLIMITED, global_ports=1,
                       machine_bus=1)
        raise AssertionError("unhandled scheme %r" % scheme)

    def relative_area(self, n_clusters, units_per_cluster):
        """Rough interconnect+register-port area model from Section 4.

        The fully connected scheme needs buses proportional to (number
        of function units) x (number of clusters), plus matching ports;
        restricted schemes need only their fixed port/bus counts.  The
        paper quotes Tri-port at 28% of full connection for a four
        cluster system; this model reproduces that ratio's magnitude.
        """
        full_cost = n_clusters * units_per_cluster * n_clusters
        if self.scheme is CommScheme.FULL:
            return 1.0
        if self.scheme is CommScheme.SHARED_BUS:
            ports = 2 * n_clusters
            buses = 1 + n_clusters
        else:
            per_file = (self.local_ports or 0) + (self.global_ports or 0)
            ports = per_file * n_clusters
            buses = ((self.global_ports or 0) * n_clusters
                     + n_clusters)
        return (ports + buses) / float(full_cost + 2 * n_clusters)


ALL_SCHEMES = tuple(CommScheme)
