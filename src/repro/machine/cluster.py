"""Cluster descriptions.

Function units are grouped into clusters sharing a register file; a
cluster can write to its own register file or to another cluster's
through the unit interconnection network (paper Section 2).
"""

from dataclasses import dataclass, field

from ..errors import ConfigError
from ..isa.instruction import unit_id
from ..isa.operations import UnitClass
from .units import FunctionUnitSpec


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster: an ordered tuple of function units plus a register
    file.  ``register_file_size`` is advisory (the compiler reports peak
    usage against it rather than spilling, following the paper)."""

    units: tuple
    register_file_size: int = 64

    def __post_init__(self):
        if not self.units:
            raise ConfigError("cluster must contain at least one unit")
        for unit in self.units:
            if not isinstance(unit, FunctionUnitSpec):
                raise ConfigError("bad unit spec %r" % (unit,))

    def unit_ids(self, cluster_index):
        """Canonical unit ids for this cluster at the given position."""
        counters = {}
        ids = []
        for unit in self.units:
            n = counters.get(unit.kind, 0)
            counters[unit.kind] = n + 1
            ids.append(unit_id(cluster_index, unit.kind, n))
        return ids

    def count(self, kind):
        return sum(1 for unit in self.units if unit.kind is kind)

    def has(self, kind):
        return self.count(kind) > 0

    @property
    def is_branch_cluster(self):
        """True when the cluster holds only branch units."""
        return all(unit.kind is UnitClass.BRU for unit in self.units)

    @property
    def has_alu(self):
        """True when the cluster can execute register moves (IU/FPU)."""
        return self.has(UnitClass.IU) or self.has(UnitClass.FPU)


def arithmetic_cluster(iu_latency=1, fpu_latency=1, mem_latency=1,
                       register_file_size=64):
    """The paper's baseline arithmetic cluster: IU + FPU + MEM."""
    from .units import fpu, iu, mem
    return ClusterSpec(units=(iu(iu_latency), fpu(fpu_latency),
                              mem(mem_latency)),
                       register_file_size=register_file_size)


def branch_cluster(latency=1, register_file_size=16):
    """The paper's branch cluster: a lone branch unit + register file."""
    from .units import bru
    return ClusterSpec(units=(bru(latency),),
                       register_file_size=register_file_size)
