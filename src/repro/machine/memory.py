"""Statistical memory-system model (paper, Section 3 and "Variable
Memory Latency").

The on-chip memory is modelled by a hit latency, a miss rate, and a
uniformly distributed miss penalty; no bank conflicts are modelled (a
memory operation can always access the necessary bank).  Every location
carries a valid (presence) bit used by the synchronizing loads and
stores of Table 1; operations whose precondition is not met are held in
the memory system and reactivated when a later reference changes the
bit (split-transaction protocol).

The paper's three models:

* **Min**  — single cycle latency for all references.
* **Mem1** — single cycle hit latency, 5% miss rate, miss penalty
  uniformly distributed between 20 and 100 cycles.
* **Mem2** — like Mem1 with a 10% miss rate.
"""

from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class MemorySpec:
    """Parameters of the statistical memory model."""

    name: str = "min"
    hit_latency: int = 1
    miss_rate: float = 0.0
    miss_penalty_min: int = 0
    miss_penalty_max: int = 0

    def __post_init__(self):
        if self.hit_latency < 1:
            raise ConfigError("hit latency must be >= 1")
        if not 0.0 <= self.miss_rate <= 1.0:
            raise ConfigError("miss rate must be in [0, 1]")
        if self.miss_penalty_min > self.miss_penalty_max:
            raise ConfigError("miss penalty range is inverted")
        if self.miss_rate > 0.0 and self.miss_penalty_max <= 0:
            raise ConfigError("nonzero miss rate needs a penalty range")

    def draw_latency(self, rng):
        """Draw the access latency for one reference."""
        if self.miss_rate > 0.0 and rng.random() < self.miss_rate:
            penalty = rng.randint(self.miss_penalty_min,
                                  self.miss_penalty_max)
            return self.hit_latency + penalty
        return self.hit_latency


def min_memory():
    """Paper's **Min** model."""
    return MemorySpec("min")


def mem1():
    """Paper's **Mem1** model: 5% miss, 20-100 cycle penalty."""
    return MemorySpec("mem1", miss_rate=0.05, miss_penalty_min=20,
                      miss_penalty_max=100)


def mem2():
    """Paper's **Mem2** model: 10% miss, 20-100 cycle penalty."""
    return MemorySpec("mem2", miss_rate=0.10, miss_penalty_min=20,
                      miss_penalty_max=100)


MEMORY_MODELS = {"min": min_memory, "mem1": mem1, "mem2": mem2}
