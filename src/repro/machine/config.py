"""Whole-node machine configurations.

A :class:`MachineConfig` plays the role of the paper's configuration
file: it specifies the number and type of function units, each unit's
pipeline latency, the grouping of units into clusters, the behaviour of
the unit interconnection network, and the memory model.  Both the
compiler (for static scheduling) and the simulator consume it.
"""

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..isa.operations import UnitClass
from .cluster import ClusterSpec, arithmetic_cluster, branch_cluster
from .interconnect import CommScheme, InterconnectSpec
from .memory import MemorySpec, min_memory
from .units import FunctionUnitSpec, bru, fpu, iu, mem

#: Arbitration policies for unit contention between threads.
ARBITRATION_POLICIES = ("priority", "round-robin")

#: Simulator kernels.  Both produce bit-identical results; "event" is
#: the fast predecoded/wake-queue kernel, "scan" the reference
#: cycle-by-cycle rescan loop kept for differential testing.
ENGINES = ("event", "scan")


@dataclass(frozen=True)
class UnitSlot:
    """One concrete function unit within a configuration."""

    uid: str
    cluster: int
    spec: FunctionUnitSpec

    @property
    def kind(self):
        return self.spec.kind

    @property
    def latency(self):
        return self.spec.latency


class MachineConfig:
    """An immutable node description plus derived lookup tables."""

    def __init__(self, clusters, interconnect=None, memory=None,
                 arbitration="priority", memory_size=65536, seed=12345,
                 name="custom", op_cache=None, max_active_threads=None,
                 fault_plan=None, engine="event", fusion=True):
        self.clusters = tuple(clusters)
        if isinstance(interconnect, (CommScheme, str)):
            interconnect = InterconnectSpec.from_scheme(interconnect)
        self.interconnect = interconnect or InterconnectSpec.from_scheme(
            CommScheme.FULL)
        self.memory = memory or min_memory()
        if arbitration not in ARBITRATION_POLICIES:
            raise ConfigError("unknown arbitration policy %r" % arbitration)
        self.arbitration = arbitration
        self.memory_size = memory_size
        self.seed = seed
        self.name = name
        self.op_cache = op_cache          # None = perfect (the paper)
        if max_active_threads is not None and max_active_threads < 1:
            raise ConfigError("max_active_threads must be >= 1")
        self.max_active_threads = max_active_threads
        self.fault_plan = fault_plan      # None = fault-free (the paper)
        if engine not in ENGINES:
            raise ConfigError("unknown simulator engine %r (have: %s)"
                              % (engine, ", ".join(ENGINES)))
        self.engine = engine
        self.fusion = bool(fusion)
        self._build_tables()
        self._validate()
        if fault_plan is not None:
            fault_plan.validate_against(self)

    def _build_tables(self):
        self.units = []
        self._units_of_cluster = []
        for cluster_index, cluster in enumerate(self.clusters):
            ids = cluster.unit_ids(cluster_index)
            slots = [UnitSlot(uid, cluster_index, spec)
                     for uid, spec in zip(ids, cluster.units)]
            self.units.extend(slots)
            self._units_of_cluster.append(tuple(slots))
        self.unit_by_id = {slot.uid: slot for slot in self.units}

    def _validate(self):
        if not self.clusters:
            raise ConfigError("machine needs at least one cluster")
        if not self.units_of_kind(UnitClass.BRU):
            raise ConfigError("machine needs at least one branch unit")
        if not any(c.has_alu for c in self.clusters):
            raise ConfigError("machine needs at least one IU or FPU")

    # -- lookups -------------------------------------------------------

    def units_of_cluster(self, cluster_index):
        return self._units_of_cluster[cluster_index]

    def units_of_kind(self, kind, cluster=None):
        return [slot for slot in self.units
                if slot.kind is kind
                and (cluster is None or slot.cluster == cluster)]

    def count(self, kind):
        return len(self.units_of_kind(kind))

    @property
    def n_clusters(self):
        return len(self.clusters)

    def arithmetic_clusters(self):
        """Indices of clusters usable for computation (non branch-only)."""
        return [i for i, c in enumerate(self.clusters)
                if not c.is_branch_cluster]

    def branch_clusters(self):
        return [i for i, c in enumerate(self.clusters)
                if c.is_branch_cluster]

    def alu_clusters(self):
        """Indices of clusters containing an IU or FPU (can host moves)."""
        return [i for i, c in enumerate(self.clusters) if c.has_alu]

    def latency_of(self, kind):
        """Smallest pipeline latency among units of the given kind."""
        slots = self.units_of_kind(kind)
        if not slots:
            raise ConfigError("no unit of kind %s" % kind)
        return min(slot.latency for slot in slots)

    # -- derivation ----------------------------------------------------

    def with_interconnect(self, scheme):
        return MachineConfig(self.clusters, scheme, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name="%s/%s" % (self.name, CommScheme(scheme)),
                             op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_memory(self, memory_spec):
        return MachineConfig(self.clusters, self.interconnect, memory_spec,
                             self.arbitration, self.memory_size, self.seed,
                             name="%s/%s" % (self.name, memory_spec.name),
                             op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_arbitration(self, policy):
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             policy, self.memory_size, self.seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_seed(self, seed):
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_op_cache(self, op_cache_spec):
        """Replace the paper's perfect-instruction-cache assumption
        with a finite per-unit operation cache (or None to restore)."""
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name=self.name, op_cache=op_cache_spec,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_max_active_threads(self, limit):
        """Bound the hardware active set (paper Section 2: "hardware is
        provided to sequence and synchronize a small number of active
        threads"); forks beyond the limit wait for a slot.  None
        restores the paper's unbounded assumption."""
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=limit,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_faults(self, fault_plan):
        """Attach a fault-injection plan (``repro.sim.faults.FaultPlan``)
        to be replayed by every simulation of this configuration; None
        restores the paper's fault-free machine.  The compiler is
        unaffected — faults are a purely dynamic disturbance, which is
        exactly what runtime arbitration is supposed to absorb."""
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=fault_plan, engine=self.engine,
                             fusion=self.fusion)

    def with_engine(self, engine):
        """Select the simulator kernel (``"event"`` or ``"scan"``).
        Both kernels are bit-identical — the toggle exists for
        differential testing and perf comparison."""
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=engine,
                             fusion=self.fusion)

    def with_fusion(self, fusion):
        """Toggle superblock fusion in the event kernel (see
        ``repro.sim.predecode``).  Like ``engine``, the toggle cannot
        change any simulated outcome — fused execution is bit-identical
        to the interpreted path — so it is excluded from
        ``run_signature()`` and exists for differential testing and
        perf measurement."""
        return MachineConfig(self.clusters, self.interconnect, self.memory,
                             self.arbitration, self.memory_size, self.seed,
                             name=self.name, op_cache=self.op_cache,
                             max_active_threads=self.max_active_threads,
                             fault_plan=self.fault_plan, engine=self.engine,
                             fusion=fusion)

    def schedule_signature(self):
        """Hashable summary of everything the *compiler* depends on;
        two configs with equal signatures can share compiled code."""
        clusters = tuple(tuple((u.kind.value, u.latency) for u in c.units)
                         for c in self.clusters)
        return (clusters, self.memory.hit_latency)

    def run_signature(self):
        """Hashable summary of everything a *simulation* depends on:
        two configs with equal run signatures produce bit-identical
        runs of the same program.  This is the cache key the experiment
        harness uses, so every dynamic knob — interconnect, memory
        model, arbitration, seed, operation cache, active-set limit,
        and the fault plan — must participate; ``name`` and other
        cosmetics must not.  ``engine`` is deliberately excluded: the
        event and scan kernels are bit-identical, so results cache
        across the toggle — and so is ``fusion``, for the same
        reason."""
        fault_sig = None
        if self.fault_plan is not None:
            fault_sig = (self.fault_plan.reroute, self.fault_plan.events)
        return (self.schedule_signature(), self.interconnect,
                self.memory, self.arbitration, self.memory_size,
                self.seed, self.op_cache, self.max_active_threads,
                fault_sig)

    def describe(self):
        """Human-readable summary (one line per cluster)."""
        lines = ["machine %s: %d clusters, interconnect=%s, memory=%s, "
                 "engine=%s, fusion=%s"
                 % (self.name, self.n_clusters, self.interconnect.scheme,
                    self.memory.name, self.engine,
                    "on" if self.fusion else "off")]
        for index, cluster in enumerate(self.clusters):
            kinds = ", ".join("%s(lat=%d)" % (u.kind, u.latency)
                              for u in cluster.units)
            lines.append("  cluster %d: %s" % (index, kinds))
        return "\n".join(lines)


def baseline(n_arith_clusters=4, n_branch_clusters=2, **kwargs):
    """The paper's baseline machine: four arithmetic clusters (each an
    IU, an FPU, a memory unit, and a shared register file) plus two
    branch clusters, fully connected, single-cycle memory, all unit
    latencies one cycle."""
    clusters = tuple(arithmetic_cluster() for __ in range(n_arith_clusters))
    clusters += tuple(branch_cluster() for __ in range(n_branch_clusters))
    kwargs.setdefault("name", "baseline")
    return MachineConfig(clusters, **kwargs)


def unit_mix(n_iu, n_fpu, n_mem=4, n_branch_clusters=1, **kwargs):
    """A configuration for the Figure 8 sweep: ``n_mem`` arithmetic
    clusters where cluster *i* holds an IU if ``i < n_iu``, an FPU if
    ``i < n_fpu``, and always a memory unit; plus branch cluster(s).

    The paper sweeps up to four IUs and four FPUs while keeping the
    number of memory units constant at four and finds a single branch
    unit sufficient.
    """
    if not (1 <= n_iu <= n_mem and 1 <= n_fpu <= n_mem):
        raise ConfigError("unit mix must satisfy 1 <= n <= %d" % n_mem)
    clusters = []
    for i in range(n_mem):
        units = []
        if i < n_iu:
            units.append(iu())
        if i < n_fpu:
            units.append(fpu())
        units.append(mem())
        clusters.append(ClusterSpec(units=tuple(units)))
    clusters.extend(branch_cluster() for __ in range(n_branch_clusters))
    kwargs.setdefault("name", "mix-%diu-%dfpu" % (n_iu, n_fpu))
    return MachineConfig(tuple(clusters), **kwargs)


def single_cluster(**kwargs):
    """A one-arithmetic-cluster machine (plus one branch cluster);
    useful for tests and as the smallest sequential node."""
    kwargs.setdefault("name", "single-cluster")
    return MachineConfig((arithmetic_cluster(), branch_cluster()), **kwargs)
