"""Processor coupling (Keckler & Dally, ISCA 1992): a full Python
reproduction.

Processor coupling controls the multiple ALUs of a single node by
combining compile-time scheduling of each thread with cycle-by-cycle
runtime interleaving of many threads across the function units.  This
package contains the complete experimental environment of the paper:

* :mod:`repro.isa` — operations, wide instruction words, assembly text;
* :mod:`repro.machine` — configurable node descriptions (clusters,
  interconnect schemes, statistical memory models);
* :mod:`repro.compiler` — the statically scheduling compiler for the
  paper's Lisp-syntax, C-semantics source language;
* :mod:`repro.sim` — the functional cycle simulator;
* :mod:`repro.programs` — the Matrix, FFT, LUD, and Model benchmarks;
* :mod:`repro.experiments` — harnesses regenerating every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import baseline, compile_program, run_program
    config = baseline()
    compiled = compile_program(SOURCE, config, mode="coupled")
    result = run_program(compiled.program, config)
    print(result.cycles, result.stats.utilization_table())
"""

from .errors import (AsmError, CellFailure, CellTimeoutError,
                     CompileError, ConfigError, DeadlockError,
                     FaultConfigError, InterpError, ReproError,
                     SimulationError, SweepJournalError,
                     VerificationError, WatchdogError,
                     WorkerCrashError)
from .machine import (MachineConfig, baseline, mem1, mem2, min_memory,
                      single_cluster, unit_mix)
from .machine.interconnect import CommScheme
from .sim import (FaultEvent, FaultInjector, FaultPlan, Node, SimResult,
                  run_program)
from .compiler import MODES, CompiledProgram, compile_program
from .compiler.interp import interpret

__version__ = "1.0.0"

__all__ = [
    "AsmError", "CellFailure", "CellTimeoutError", "CompileError",
    "ConfigError", "DeadlockError", "FaultConfigError", "InterpError",
    "ReproError", "SimulationError", "SweepJournalError",
    "VerificationError", "WatchdogError", "WorkerCrashError",
    "MachineConfig", "baseline", "mem1", "mem2", "min_memory",
    "single_cluster", "unit_mix", "CommScheme",
    "FaultEvent", "FaultInjector", "FaultPlan",
    "Node", "SimResult", "run_program",
    "MODES", "CompiledProgram", "compile_program", "interpret",
    "__version__",
]
