"""``repro bench``: the performance trajectory of the simulator itself.

Runs the paper suite (benchmark x mode on the baseline machine),
records wall-clock seconds, simulated cycles, and cycles/second per
cell, and writes ``BENCH_<YYYYMMDD>.json`` — one point on the repo's
performance trajectory.  Compare files across commits to see whether
the simulator is getting faster.

::

    python -m repro bench                  # full suite, serial
    python -m repro bench --quick          # CI smoke subset
    python -m repro bench --workers 4      # process-pool fan-out
    python -m repro bench --no-fast-forward  # disable skip-ahead

Output schema (version 1)::

    {
      "schema": 1,
      "date": "YYYYMMDD",
      "suite": "full" | "quick",
      "workers": N,
      "seed": N,
      "fast_forward": bool,
      "total_wall_s": float,        # whole-suite wall clock
      "results": [
        {"benchmark": ..., "mode": ..., "cycles": int,
         "operations": int, "wall_s": float, "compile_s": float,
         "cycles_per_sec": float, "stats": {<Stats.summary()>}},
        ...
      ]
    }
"""

import argparse
import json
import os
import sys
import time

from .experiments.paper import MODE_ORDER
from .experiments.runner import Harness, RunSpec
from .programs import get_benchmark
from .programs.suite import BENCHMARK_ORDER

#: Benchmarks in the CI smoke subset (LUD dominates full-suite wall
#: clock, so --quick drops it).
QUICK_BENCHMARKS = ("matrix", "fft", "model")

SCHEMA_VERSION = 1


def suite_specs(quick=False):
    """The paper suite as RunSpecs: benchmark x supported mode."""
    benchmarks = QUICK_BENCHMARKS if quick else BENCHMARK_ORDER
    specs = []
    for benchmark in benchmarks:
        modes = [m for m in MODE_ORDER
                 if m in get_benchmark(benchmark).modes]
        specs.extend(RunSpec(benchmark, mode) for mode in modes)
    return specs


def run_suite(harness, specs, workers=None):
    """Run the specs and shape the per-cell records."""
    results = harness.run_many(specs, workers=workers)
    records = []
    for result in results:
        records.append({
            "benchmark": result.benchmark,
            "mode": result.mode,
            "cycles": result.cycles,
            "operations": result.stats.total_operations,
            "wall_s": round(result.wall_seconds, 6),
            "compile_s": round(result.compile_seconds, 6),
            "cycles_per_sec": round(result.cycles_per_second, 1),
            "stats": result.stats.summary(),
        })
    return records


def bench_filename(date=None):
    date = date or time.strftime("%Y%m%d")
    return "BENCH_%s.json" % date


def render(report):
    """A human-readable digest of one bench report."""
    lines = ["bench %s: suite=%s workers=%s fast_forward=%s"
             % (report["date"], report["suite"], report["workers"],
                report["fast_forward"])]
    lines.append("%-10s %-8s %10s %9s %9s %12s"
                 % ("benchmark", "mode", "cycles", "wall_s",
                    "compile_s", "cycles/sec"))
    for record in report["results"]:
        lines.append("%-10s %-8s %10d %9.3f %9.3f %12.0f"
                     % (record["benchmark"], record["mode"],
                        record["cycles"], record["wall_s"],
                        record["compile_s"], record["cycles_per_sec"]))
    total_cycles = sum(r["cycles"] for r in report["results"])
    lines.append("total: %d cells, %d simulated cycles, %.2fs wall "
                 "(%.0f cycles/sec overall)"
                 % (len(report["results"]), total_cycles,
                    report["total_wall_s"],
                    total_cycles / report["total_wall_s"]
                    if report["total_wall_s"] > 0 else 0.0))
    return "\n".join(lines)


def main(argv=None, out=None):
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the simulator on the paper suite and "
                    "record a BENCH_<date>.json trajectory point.")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset (drops LUD)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan the suite out over N worker processes")
    parser.add_argument("--seed", type=int, default=1,
                        help="input-data seed (default 1)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip result validation against references")
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="simulate every cycle (disable skip-ahead)")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="disable the on-disk compile cache")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="output path (default BENCH_<date>.json in "
                             "the current directory)")
    args = parser.parse_args(argv)

    harness = Harness(seed=args.seed, check=not args.no_check,
                      fast_forward=not args.no_fast_forward,
                      compile_cache=False if args.no_compile_cache
                      else "auto")
    specs = suite_specs(quick=args.quick)
    started = time.perf_counter()
    records = run_suite(harness, specs, workers=args.workers)
    total_wall = time.perf_counter() - started

    report = {
        "schema": SCHEMA_VERSION,
        "date": time.strftime("%Y%m%d"),
        "suite": "quick" if args.quick else "full",
        "workers": args.workers or 1,
        "seed": args.seed,
        "fast_forward": not args.no_fast_forward,
        "total_wall_s": round(total_wall, 6),
        "results": records,
    }
    path = args.output or bench_filename(report["date"])
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    out.write(render(report) + "\n")
    out.write("wrote %s\n" % os.path.abspath(path))
    return 0


if __name__ == "__main__":
    sys.exit(main())
