"""``repro bench``: the performance trajectory of the simulator itself.

Runs the paper suite (benchmark x mode on the baseline machine),
records wall-clock seconds, simulated cycles, and cycles/second per
cell, and writes ``BENCH_<YYYYMMDD>.json`` — one point on the repo's
performance trajectory.  Compare files across commits to see whether
the simulator is getting faster.

::

    python -m repro bench                  # full suite, serial
    python -m repro bench --quick          # CI smoke subset
    python -m repro bench --workers 4      # process-pool fan-out
    python -m repro bench --no-fast-forward  # disable skip-ahead
    python -m repro bench --engine scan    # force the scan kernel
    python -m repro bench --no-fusion      # event kernel, superblocks off
    python -m repro bench --compare BENCH_20260806.json   # regression gate
    python -m repro bench --workers 4 --cell-timeout 120 \
        --on-error collect --resume        # supervised, resumable sweep

``--compare`` checks the fresh run against a recorded trajectory
point: any simulated-cycle drift on a shared cell is an error (the
simulator's architectural behavior changed), and an aggregate
throughput drop beyond ``--regression-threshold`` (default 20%) fails
the run.  The exit status is non-zero on either, so CI can gate on it.
It also prints a per-cell throughput delta table (worst regression
first) and warns — without failing — when the two reports were taken
under different kernels, since cross-engine throughput comparisons
measure the engines, not the commit.

Sweeps run under the supervised harness: ``--on-error collect``
isolates cell failures instead of aborting, ``--cell-timeout S``
bounds each cell's wall clock, and ``--resume [JOURNAL]`` keeps an
append-only ledger of completed cells so an interrupted bench re-runs
only the remainder (see docs/internals.md, "Supervised sweep
execution").

Output schema (version 5; every version bump so far is additive —
version 2 added ``failed``, ``on_error``, ``cell_timeout``; version 3
added per-cell ``fused_dispatches``, the superblock dispatch count the
CI fusion leg gates on; version 4 added the run-level ``sanitize``
level plus per-cell ``defuse_reasons`` and ``quarantined_blocks`` from
the online state sanitizer; version 5 added the run-level ``backend``
and ``lanes`` plus per-cell ``backend``/``lanes``/``peeled_lanes``
from the batch lane engine, and a per-cell ``seed`` — present only on
cells whose spec overrode the harness seed, so single-seed reports
keep the exact cell keys older references used)::

    {
      "schema": 5,
      "date": "YYYYMMDD",
      "suite": "full" | "quick",
      "workers": N,
      "seed": N,
      "fast_forward": bool,
      "engine": "event" | "scan",
      "fusion": bool,               # superblock fusion (event kernel)
      "sanitize": "off" | "audit" | "shadow" | "deep",
      "backend": "pool" | "batch",  # sweep execution backend
      "lanes": N,                   # seeds per cell (1 = pool default)
      "on_error": "raise" | "collect",
      "cell_timeout": float | null,
      "total_wall_s": float,        # whole-suite wall clock
      "aggregate_cycles_per_sec": float,   # sum(cycles)/sum(wall_s)
      "results": [
        {"benchmark": ..., "mode": ..., "cycles": int,
         "operations": int, "wall_s": float, "compile_s": float,
         "cache_hit": bool, "cycles_per_sec": float,
         "seed": int,                # only when the spec set one
         "fused_dispatches": int,    # superblock dispatches (0 when
                                     # fusion is off or never fired)
         "defuse_reasons": {reason: int},  # fusion dispatch declines
         "quarantined_blocks": int,  # sanitizer-quarantined entries
         "backend": "scalar" | "batch" | "batch-peeled",
         "lanes": int,               # lockstep bundle width
         "peeled_lanes": int,        # lanes peeled from that bundle
         "stats": {<Stats.summary()>}},
        ...
      ],
      "failed": [                   # collected cell failures
        {"benchmark": ..., "mode": ..., "error_type": ...,
         "message": ..., "attempts": int, "timed_out": bool},
        ...
      ]
    }
"""

import argparse
import json
import os
import sys
import time

from .experiments.paper import MODE_ORDER
from .experiments.runner import Harness, RunSpec
from .machine import baseline
from .machine.config import ENGINES
from .programs import get_benchmark
from .programs.suite import BENCHMARK_ORDER

#: Benchmarks in the CI smoke subset (LUD dominates full-suite wall
#: clock, so --quick drops it).
QUICK_BENCHMARKS = ("matrix", "fft", "model")

SCHEMA_VERSION = 5


def suite_specs(quick=False, config=None, seeds=None):
    """The paper suite as RunSpecs: benchmark x supported mode.

    ``seeds`` expands every cell into one spec per input seed — the
    lane axis of ``--backend batch``.  None keeps the classic
    single-spec-per-cell suite (spec seed left None = harness seed,
    so run keys and report cell keys are unchanged)."""
    benchmarks = QUICK_BENCHMARKS if quick else BENCHMARK_ORDER
    specs = []
    for benchmark in benchmarks:
        modes = [m for m in MODE_ORDER
                 if m in get_benchmark(benchmark).modes]
        for mode in modes:
            if seeds is None:
                specs.append(RunSpec(benchmark, mode, config))
            else:
                specs.extend(RunSpec(benchmark, mode, config, seed=s)
                             for s in seeds)
    return specs


def run_suite(harness, specs, workers=None, on_error="raise",
              cell_timeout=None, journal=None, backend=None):
    """Run the specs under supervision; returns ``(records, failed)``
    — the per-cell records for completed cells and the failure records
    for collected failures (always empty with ``on_error="raise"``)."""
    results = harness.run_many(specs, workers=workers,
                               on_error=on_error,
                               cell_timeout=cell_timeout,
                               journal=journal, backend=backend)
    records, failed = [], []
    for spec, result in zip(specs, results):
        if not result.ok:
            record = result.as_record()
            if spec.seed is not None:
                record["seed"] = spec.seed
            failed.append(record)
            continue
        record = {
            "benchmark": result.benchmark,
            "mode": result.mode,
            "cycles": result.cycles,
            "operations": result.stats.total_operations,
            "wall_s": round(result.wall_seconds, 6),
            "compile_s": round(result.compile_seconds, 6),
            "cache_hit": result.cache_hit,
            "cycles_per_sec": round(result.cycles_per_second, 1),
            # Deliberately outside "stats": summary() stays
            # digest-identical between fused and unfused runs, but the
            # CI fusion leg needs the dispatch count to prove fusion
            # actually fired on the cells it targets (and the sanitize
            # and batch-sweep legs read the quarantine/de-fusion/lane
            # counters the same way).
            "fused_dispatches":
                getattr(result.stats, "fused_dispatches", 0),
            "defuse_reasons":
                dict(getattr(result.stats, "defuse_reasons", None) or {}),
            "quarantined_blocks":
                getattr(result.stats, "quarantined_blocks", 0),
            "backend": result.backend,
            "lanes": result.lanes,
            "peeled_lanes": result.peeled_lanes,
            "stats": result.stats.summary(),
        }
        # Only seeded specs carry the seed key: default-seed reports
        # keep the exact (benchmark, mode) cell identity older
        # reference reports use for --compare.
        if spec.seed is not None:
            record["seed"] = spec.seed
        records.append(record)
    return records, failed


def _measured(records):
    """The records carrying real measurements (guards against failed
    or malformed cells riding along in a results list)."""
    return [r for r in records
            if isinstance(r.get("cycles"), (int, float))
            and isinstance(r.get("wall_s"), (int, float))]


def _cell_key(record):
    """Cell identity for cross-report comparison: (benchmark, mode,
    seed).  The seed key is absent on default-seed cells (None here),
    so schema-4 references keyed by (benchmark, mode) alone still
    match a fresh single-seed report cell for cell."""
    return (record["benchmark"], record["mode"], record.get("seed"))


def aggregate_cycles_per_sec(records):
    """Whole-suite throughput: total simulated cycles over total
    simulation wall clock (compile time excluded).  An empty or
    all-failed record list aggregates to 0.0 rather than dividing by
    zero, and cells without a real wall-clock measurement — notably
    journal-replayed cells recorded before wall capture existed, whose
    ``wall_s`` is 0.0 — are excluded from *both* sums: counting their
    cycles against no wall would inflate a ``--resume`` aggregate
    toward infinity."""
    records = [r for r in _measured(records) if r["wall_s"] > 0.0]
    if not records:
        return 0.0
    cycles = sum(r["cycles"] for r in records)
    wall = sum(r["wall_s"] for r in records)
    return cycles / wall if wall > 0 else 0.0


def compare_reports(report, reference, threshold=0.2):
    """Regression-gate ``report`` against a recorded ``reference``.

    Returns a list of problem strings (empty = pass).  Two checks, on
    the cells the two reports share:

    * *cycle drift* — simulated cycle counts must match exactly; both
      kernels are required to be bit-identical, so any drift means the
      simulator's architectural behavior changed.
    * *throughput* — the aggregate cycles/sec over shared cells must
      not fall more than ``threshold`` below the reference's.

    Failed cells never raise a KeyError: a cell the reference measured
    but the current report collected as failed is reported as an
    explicit problem (that *is* a regression); cells failed in the
    reference are skipped silently (there is nothing to compare).
    """
    problems = []
    current = {_cell_key(r): r for r in _measured(report["results"])}
    recorded = {_cell_key(r): r
                for r in _measured(reference["results"])}
    for failure in report.get("failed", ()):
        key = _cell_key(failure)
        if key in recorded:
            problems.append(
                "%s/%s: failed in current report (%s: %s) — skipped "
                "from cycle comparison"
                % (key[0], key[1], failure.get("error_type", "?"),
                   failure.get("message", "?")))
    shared = [key for key in recorded if key in current]
    if not shared:
        return problems + ["no shared (benchmark, mode) cells to "
                           "compare"]
    for key in shared:
        new, old = current[key], recorded[key]
        if new["cycles"] != old["cycles"]:
            problems.append(
                "%s/%s: simulated cycles drifted from %d to %d"
                % (key[0], key[1], old["cycles"], new["cycles"]))
    agg_new = aggregate_cycles_per_sec([current[k] for k in shared])
    agg_old = aggregate_cycles_per_sec([recorded[k] for k in shared])
    if agg_old > 0 and agg_new < agg_old * (1.0 - threshold):
        problems.append(
            "throughput regression: %.0f cycles/sec vs %.0f recorded "
            "(%.0f%% drop > %.0f%% threshold)"
            % (agg_new, agg_old, 100.0 * (1.0 - agg_new / agg_old),
               100.0 * threshold))
    return problems


def delta_table(report, reference):
    """Per-cell throughput deltas against a reference report, worst
    regression first.  Returns display lines (empty when the reports
    share no cells)."""
    current = {_cell_key(r): r for r in _measured(report["results"])}
    recorded = {_cell_key(r): r
                for r in _measured(reference["results"])}
    rows = []
    for key in recorded:
        if key not in current:
            continue
        # Cells without a real wall-clock measurement on either side
        # (journal-replayed, wall_s 0.0) have no meaningful
        # throughput; a delta against them is noise.
        if recorded[key].get("wall_s", 0.0) <= 0.0 \
                or current[key].get("wall_s", 0.0) <= 0.0:
            continue
        old = recorded[key].get("cycles_per_sec", 0.0)
        new = current[key].get("cycles_per_sec", 0.0)
        delta = 100.0 * (new - old) / old if old > 0 else 0.0
        rows.append((delta, key[0], key[1], old, new))
    if not rows:
        return []
    rows.sort(key=lambda row: row[0])
    lines = ["%-10s %-8s %12s %12s %8s"
             % ("benchmark", "mode", "old c/s", "new c/s", "delta")]
    for delta, benchmark, mode, old, new in rows:
        lines.append("%-10s %-8s %12.0f %12.0f %+7.1f%%"
                     % (benchmark, mode, old, new, delta))
    return lines


def bench_filename(date=None):
    date = date or time.strftime("%Y%m%d")
    return "BENCH_%s.json" % date


def render(report):
    """A human-readable digest of one bench report."""
    lines = ["bench %s: suite=%s workers=%s fast_forward=%s engine=%s "
             "fusion=%s backend=%s lanes=%s"
             % (report["date"], report["suite"], report["workers"],
                report["fast_forward"], report.get("engine", "scan"),
                "on" if report.get("fusion", True) else "off",
                report.get("backend", "pool"),
                report.get("lanes", 1))]
    lines.append("%-10s %-12s %10s %9s %9s %5s %12s"
                 % ("benchmark", "mode", "cycles", "wall_s",
                    "compile_s", "cache", "cycles/sec"))
    for record in report["results"]:
        mode = record["mode"]
        if record.get("seed") is not None:
            mode = "%s@%d" % (mode, record["seed"])
        if record.get("backend") == "batch-peeled":
            mode += "*"              # peeled out of its lane bundle
        lines.append("%-10s %-12s %10d %9.3f %9.3f %5s %12.0f"
                     % (record["benchmark"], mode,
                        record["cycles"], record["wall_s"],
                        record["compile_s"],
                        "hit" if record.get("cache_hit") else "miss",
                        record["cycles_per_sec"]))
    total_cycles = sum(r["cycles"] for r in _measured(report["results"]))
    lines.append("total: %d cells, %d simulated cycles, %.2fs wall "
                 "(%.0f cycles/sec aggregate)"
                 % (len(report["results"]), total_cycles,
                    report["total_wall_s"],
                    report.get("aggregate_cycles_per_sec", 0.0)))
    failed = report.get("failed", ())
    if failed:
        lines.append("FAILED cells: %d" % len(failed))
        for failure in failed:
            lines.append("  %-10s %-8s %s: %s (%d attempt(s)%s)"
                         % (failure["benchmark"], failure["mode"],
                            failure.get("error_type", "?"),
                            failure.get("message", "?"),
                            failure.get("attempts", 1),
                            ", timed out"
                            if failure.get("timed_out") else ""))
    return "\n".join(lines)


def main(argv=None, out=None):
    out = out or sys.stdout
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the simulator on the paper suite and "
                    "record a BENCH_<date>.json trajectory point.")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke subset (drops LUD)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan the suite out over N worker processes")
    parser.add_argument("--seed", type=int, default=1,
                        help="input-data seed (default 1)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip result validation against references")
    parser.add_argument("--no-fast-forward", action="store_true",
                        help="simulate every cycle (disable skip-ahead)")
    parser.add_argument("--no-compile-cache", action="store_true",
                        help="disable the on-disk compile cache")
    parser.add_argument("--engine", choices=ENGINES, default=None,
                        help="simulator kernel (default: the machine "
                             "default, %s)" % ENGINES[0])
    parser.add_argument("--no-fusion", action="store_true",
                        help="disable superblock fusion (event kernel "
                             "falls back to word-by-word dispatch)")
    parser.add_argument("--sanitize", nargs="?", const="audit",
                        choices=("audit", "shadow", "deep"),
                        default=None, metavar="LEVEL",
                        help="run every cell under the online state "
                             "sanitizer (audit = strided invariant "
                             "checks; shadow adds differential "
                             "execution against the unfused kernel; "
                             "deep audits every cycle); bare --sanitize "
                             "means audit")
    parser.add_argument("--backend", choices=("pool", "batch"),
                        default="pool",
                        help="sweep backend: per-cell scalar runs "
                             "(pool, default) or the numpy lockstep "
                             "lane engine over the seed axis (batch; "
                             "see --lanes)")
    parser.add_argument("--lanes", type=int, default=None, metavar="N",
                        help="input seeds per cell, seed..seed+N-1 "
                             "(default 16 under --backend batch, else "
                             "1); each seed is one lockstep lane")
    parser.add_argument("--on-error", choices=("raise", "collect"),
                        default="raise",
                        help="cell-failure policy: abort the sweep "
                             "(raise, default) or record the failure "
                             "and keep going (collect)")
    parser.add_argument("--cell-timeout", type=float, default=None,
                        metavar="S",
                        help="per-cell wall-clock budget in seconds "
                             "(pooled runs only); a hung cell is "
                             "killed and reported instead of blocking "
                             "the sweep forever")
    parser.add_argument("--resume", nargs="?", const="auto",
                        metavar="JOURNAL",
                        help="journal completed cells to JOURNAL "
                             "(default: <output>.journal.jsonl) and "
                             "replay any cells already recorded there "
                             "— an interrupted bench re-runs only the "
                             "remainder")
    parser.add_argument("--compare", metavar="BENCH_FILE",
                        help="regression-gate against a recorded "
                             "BENCH_<date>.json; exits non-zero on "
                             "cycle drift or throughput regression")
    parser.add_argument("--regression-threshold", type=float, default=0.2,
                        metavar="FRAC",
                        help="allowed aggregate throughput drop for "
                             "--compare (default 0.2 = 20%%)")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="output path (default BENCH_<date>.json in "
                             "the current directory)")
    args = parser.parse_args(argv)

    if args.backend == "batch" and args.sanitize:
        parser.error("--backend batch cannot run under --sanitize "
                     "(the sanitizer shadows the scalar kernels)")
    lanes = args.lanes if args.lanes is not None \
        else (16 if args.backend == "batch" else 1)
    if lanes < 1:
        parser.error("--lanes must be >= 1")

    reference = None
    if args.compare:
        with open(args.compare) as handle:
            reference = json.load(handle)

    config = baseline()
    if args.engine is not None:
        config = config.with_engine(args.engine)
    if args.no_fusion:
        config = config.with_fusion(False)
    harness = Harness(seed=args.seed, check=not args.no_check,
                      fast_forward=not args.no_fast_forward,
                      compile_cache=False if args.no_compile_cache
                      else "auto", sanitize=args.sanitize)
    # lanes == 1 keeps specs seedless (seed=None = harness seed), so
    # cell keys and journal digests match single-seed reports exactly.
    seeds = [args.seed + i for i in range(lanes)] if lanes > 1 else None
    specs = suite_specs(quick=args.quick, config=config, seeds=seeds)
    date = time.strftime("%Y%m%d")
    path = args.output or bench_filename(date)
    journal = args.resume
    if journal == "auto":
        journal = str(path) + ".journal.jsonl"
    if journal is not None:
        # Stamp the report schema into the journal header so a resume
        # against a journal written before a schema bump fails loudly
        # instead of replaying cells that lack the new fields.
        from .experiments.supervision import SweepJournal
        journal = SweepJournal(journal,
                               header={**harness._journal_header(),
                                       "report_schema": SCHEMA_VERSION})
    started = time.perf_counter()
    records, failed = run_suite(harness, specs, workers=args.workers,
                                on_error=args.on_error,
                                cell_timeout=args.cell_timeout,
                                journal=journal,
                                backend=args.backend)
    total_wall = time.perf_counter() - started

    report = {
        "schema": SCHEMA_VERSION,
        "date": date,
        "suite": "quick" if args.quick else "full",
        "workers": args.workers or 1,
        "seed": args.seed,
        "fast_forward": not args.no_fast_forward,
        "engine": config.engine,
        "fusion": config.fusion,
        "sanitize": args.sanitize or "off",
        "backend": args.backend,
        "lanes": lanes,
        "on_error": args.on_error,
        "cell_timeout": args.cell_timeout,
        "total_wall_s": round(total_wall, 6),
        "aggregate_cycles_per_sec":
            round(aggregate_cycles_per_sec(records), 1),
        "results": records,
        "failed": failed,
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    out.write(render(report) + "\n")
    out.write("wrote %s\n" % os.path.abspath(path))
    if reference is not None:
        ref_engine = reference.get("engine", "scan")
        if ref_engine != report["engine"]:
            out.write("warning: comparing %s-engine run against "
                      "%s-engine reference %s; throughput deltas "
                      "measure the kernels, not this commit\n"
                      % (report["engine"], ref_engine, args.compare))
        for line in delta_table(report, reference):
            out.write(line + "\n")
        problems = compare_reports(report, reference,
                                   threshold=args.regression_threshold)
        if problems:
            out.write("comparison against %s FAILED:\n" % args.compare)
            for problem in problems:
                out.write("  " + problem + "\n")
            return 1
        out.write("comparison against %s passed (no cycle drift, "
                  "throughput within %.0f%%)\n"
                  % (args.compare, 100 * args.regression_threshold))
    if failed:
        out.write("%d cell(s) FAILED (see report)\n" % len(failed))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
