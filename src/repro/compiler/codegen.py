"""Code generation: scheduled blocks to wide instruction words.

Assigns physical register indices (one fixed slot per (virtual
register, cluster) pair — the compiler assumes an infinite register
supply and reports peak usage), folds symbol base addresses into memory
operations as immediates, and resolves fork bindings against the callee
thread's parameter registers.
"""

from dataclasses import dataclass, field

from ..errors import CompileError
from ..isa.instruction import InstructionWord, Operation, ThreadProgram, \
    unit_id
from ..isa.operands import Imm, Label, Reg
from .ir import Const
from .schedule.scheduler import PlacedReg


@dataclass
class ThreadReport:
    """Compile-time statistics for one thread."""

    name: str
    words: int = 0
    operations: int = 0
    moves: int = 0
    block_words: dict = field(default_factory=dict)
    peak_registers: dict = field(default_factory=dict)   # cluster -> count


class _RegisterAllocator:
    """(vreg, cluster) -> physical index mapping with recycling.

    Home registers (mutable variables, parameters, join values) keep
    one stable slot per cluster for the thread's lifetime; temporaries
    are single-assignment and block-local, so their slots recycle after
    their last scheduled use.  The reported peak therefore approximates
    the paper's "peak live registers per cluster" — the paper performs
    no register allocation either, it just counts.  Recycling is safe
    at runtime because an operation does not issue while a writeback to
    its destination register is outstanding (the WAW interlock).
    """

    def __init__(self):
        self._map = {}
        self._free = {}              # cluster -> [indices]
        self._next = {}              # cluster -> next fresh index
        self._in_use = {}            # cluster -> current count
        self._peaks = {}

    def reg(self, vreg, cluster):
        key = (vreg.id, cluster)
        index = self._map.get(key)
        if index is None:
            free = self._free.setdefault(cluster, [])
            if free:
                index = free.pop()
            else:
                index = self._next.get(cluster, 0)
                self._next[cluster] = index + 1
            self._map[key] = index
            used = self._in_use.get(cluster, 0) + 1
            self._in_use[cluster] = used
            self._peaks[cluster] = max(self._peaks.get(cluster, 0), used)
        return Reg(cluster, index)

    def release(self, vreg, cluster):
        """Return a temporary's slot to the free pool."""
        key = (vreg.id, cluster)
        index = self._map.pop(key, None)
        if index is not None:
            self._free.setdefault(cluster, []).append(index)
            self._in_use[cluster] -= 1

    def peaks(self):
        return dict(self._peaks)


def _operand(alloc, operand):
    if isinstance(operand, Const):
        return Imm(operand.value)
    if isinstance(operand, PlacedReg):
        return alloc.reg(operand.vreg, operand.cluster)
    raise CompileError("unplaced operand %r" % (operand,))


def _build_operation(entry, alloc, data, child_params):
    dests = tuple(alloc.reg(vreg, cluster) for vreg, cluster in entry.dests)
    if entry.op in ("ld", "ld_ff", "ld_fe"):
        base = data[entry.sym].base
        index = _operand(alloc, entry.srcs[0])
        return Operation(entry.op, dests=dests, srcs=(index, Imm(base)))
    if entry.op in ("st", "st_ff", "st_ef"):
        base = data[entry.sym].base
        value = _operand(alloc, entry.srcs[0])
        index = _operand(alloc, entry.srcs[1])
        return Operation(entry.op, srcs=(value, index, Imm(base)))
    if entry.op == "fork":
        params = child_params(entry.target)
        if len(params) != len(entry.fork_args):
            raise CompileError(
                "fork of %r: %d bindings for %d parameters"
                % (entry.target, len(entry.fork_args), len(params)))
        bindings = tuple(
            (param, _operand(alloc, arg))
            for param, arg in zip(params, entry.fork_args))
        return Operation("fork", target=Label(entry.target),
                         bindings=bindings)
    if entry.op in ("br", "brt", "brf"):
        srcs = tuple(_operand(alloc, s) for s in entry.srcs)
        return Operation(entry.op, srcs=srcs, target=Label(entry.target))
    if entry.op == "halt":
        return Operation("halt")
    srcs = tuple(_operand(alloc, s) for s in entry.srcs)
    return Operation(entry.op, dests=dests, srcs=srcs)


def _temp_release_rows(block):
    """For each temporary (vreg, cluster) defined in the block, the row
    after which its physical register can be recycled: the later of its
    definition row and its last read row (temporaries are block-local
    by construction)."""
    last_event = {}          # (vreg id, cluster) -> (row, vreg, cluster)

    def note(vreg, cluster, row):
        key = (vreg.id, cluster)
        current = last_event.get(key)
        if current is None or row > current[0]:
            last_event[key] = (row, vreg, cluster)

    for entry in block.entries():
        for vreg, cluster in entry.dests:
            if not vreg.is_home:
                note(vreg, cluster, entry.row)
        operands = list(entry.srcs) + list(entry.fork_args or ())
        for operand in operands:
            if isinstance(operand, PlacedReg) \
                    and not operand.vreg.is_home:
                note(operand.vreg, operand.cluster, entry.row)
    release_at = {}
    for row, vreg, cluster in last_event.values():
        release_at.setdefault(row, []).append((vreg, cluster))
    return release_at


def generate_thread(scheduled, data, child_params):
    """Emit a :class:`ThreadProgram` from a :class:`ScheduledThread`.

    ``child_params`` maps a forked thread's name to its parameter
    registers (the callee must already be generated).
    """
    alloc = _RegisterAllocator()
    # Parameters claim the first register slots of their home clusters,
    # so fork sites can compute bindings without running the thread.
    param_regs = [alloc.reg(vreg, cluster)
                  for vreg, cluster in scheduled.param_homes]
    thread = ThreadProgram(scheduled.name, param_regs=param_regs)
    report = ThreadReport(scheduled.name)
    for block in scheduled.blocks:
        thread.add_label(block.name)
        words_before = len(thread.instructions)
        release_at = _temp_release_rows(block)
        for row in sorted(block.rows):
            slots = {}
            for entry in block.rows[row]:
                uid = unit_id(entry.cluster, entry.kind, entry.unit_index)
                if uid in slots:
                    raise CompileError(
                        "scheduler placed two operations on %s in one row"
                        % uid)
                slots[uid] = _build_operation(entry, alloc, data,
                                              child_params)
                report.operations += 1
                if entry.op in ("imov", "fmov"):
                    report.moves += 1
            thread.append(InstructionWord(slots))
            for vreg, cluster in release_at.get(row, ()):
                alloc.release(vreg, cluster)
        report.block_words[block.name] = len(thread.instructions) \
            - words_before
    report.words = len(thread.instructions)
    report.peak_registers = alloc.peaks()
    return thread, report
