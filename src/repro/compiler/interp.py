"""Reference interpreter for the source language.

Executes the macro-expanded AST directly with the *same* numeric
semantics as the compiled machine code (opcode semantics are shared
with the ISA, and the lowering's type-widening rules are mirrored), so
``interpret(source) == simulate(compile(source))`` is a meaningful
differential test for the entire compiler + simulator stack.

Forks run inline at the fork point (depth-first).  This is equivalent
for race-free programs — which all the paper's benchmarks are — and the
synchronizing accesses are honoured: an access whose precondition fails
under inline execution raises :class:`InterpError`, since sequential
execution can never satisfy it later.
"""

from dataclasses import dataclass

from ..errors import CompileError, InterpError
from .astnodes import (Aref, Aset, BINOPS, BinOp, ExprStmt, FLOAT, Fork, If,
                       IfExpr, INT, Let, Num, PREDICATES, Seq, SetVar, Sync,
                       UnOp, Var, While)
from .frontend import parse_program
from .macroexpand import (Expander, expand_kernel, expand_thread,
                          fold_binop, fold_unop, resolve_consts)

_DEFAULT_STEP_LIMIT = 50_000_000


@dataclass
class InterpResult:
    """Final memory state after interpretation."""

    memory: dict          # symbol -> list of values
    presence: dict        # symbol -> list of bools
    steps: int

    def read_symbol(self, name):
        return list(self.memory[name])

    def symbol_presence(self, name):
        return list(self.presence[name])


class _Array:
    def __init__(self, name, size, elem_type, initially_full, values=None):
        self.name = name
        self.elem_type = elem_type
        zero = 0.0 if elem_type is FLOAT else 0
        self.values = list(values) if values is not None else [zero] * size
        self.full = [initially_full] * size

    def check(self, index):
        if not 0 <= index < len(self.values):
            raise InterpError("index %d out of range for %s[%d]"
                              % (index, self.name, len(self.values)))


def _coerce(value, to_type, context):
    if to_type is FLOAT:
        return float(value)
    if isinstance(value, float):
        raise InterpError("implicit float-to-int narrowing in %s" % context)
    return value


class Interpreter:
    """Interprets one program (shared memory, inline forks)."""

    def __init__(self, ast, overrides=None, max_steps=_DEFAULT_STEP_LIMIT):
        self.ast = ast
        self.consts = resolve_consts(ast.consts)
        self.max_steps = max_steps
        self.steps = 0
        sizer = Expander(ast.kernels, self.consts)
        overrides = overrides or {}
        self.arrays = {}
        for decl in ast.globals:
            size = sizer.static_value(decl.size, {}, "global size")
            values = overrides.get(decl.name)
            if values is not None and len(values) != size:
                raise InterpError("override for %r has %d values, need %d"
                                  % (decl.name, len(values), size))
            self.arrays[decl.name] = _Array(decl.name, size, decl.elem_type,
                                            decl.initially_full, values)
        unknown = set(overrides) - set(self.arrays)
        if unknown:
            raise InterpError("overrides for unknown symbols %s"
                              % sorted(unknown))

    def _tick(self):
        self.steps += 1
        if self.steps > self.max_steps:
            raise InterpError("step limit exceeded (%d); diverging loop?"
                              % self.max_steps)

    # -- expressions -------------------------------------------------------

    def eval(self, node, env):
        self._tick()
        if isinstance(node, Num):
            return node.value
        if isinstance(node, Var):
            try:
                return env[node.name]
            except KeyError:
                raise InterpError("unbound variable %r" % node.name)
        if isinstance(node, BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return fold_binop(node.op, left, right)
        if isinstance(node, UnOp):
            return fold_unop(node.op, self.eval(node.operand, env))
        if isinstance(node, Aref):
            return self._load(node, env)
        if isinstance(node, IfExpr):
            cond = self.eval(node.cond, env)
            value = self.eval(node.then if cond else node.els, env)
            # Mirror lowering: the join value is typed by the then-arm,
            # and a float else-arm with an int then-arm is rejected.
            join_type = self._type_of(node.then, env)
            if join_type is INT and self._type_of(node.els, env) is FLOAT:
                raise InterpError("if-expression arms mix float and int")
            return float(value) if join_type is FLOAT else value
        raise InterpError("cannot evaluate %r" % node)

    def _type_of(self, node, env):
        """Static type of an expression, mirroring lowering exactly."""
        if isinstance(node, Num):
            return node.type
        if isinstance(node, Var):
            return FLOAT if isinstance(env.get(node.name), float) else INT
        if isinstance(node, BinOp):
            if node.op in PREDICATES:
                return INT
            if FLOAT in (self._type_of(node.left, env),
                         self._type_of(node.right, env)):
                return FLOAT
            return INT
        if isinstance(node, UnOp):
            if node.op == "float":
                return FLOAT
            if node.op == "int":
                return INT
            if node.op in ("abs", "sqrt"):
                return FLOAT
            return self._type_of(node.operand, env)
        if isinstance(node, Aref):
            array = self.arrays.get(node.array)
            if array is None:
                raise InterpError("unknown array %r" % node.array)
            return array.elem_type
        if isinstance(node, IfExpr):
            return self._type_of(node.then, env)
        raise InterpError("cannot type %r" % node)

    def _index(self, node, env, array):
        index = self.eval(node, env)
        if isinstance(index, float):
            raise InterpError("float index into %r" % array)
        return index

    def _load(self, node, env):
        array = self.arrays.get(node.array)
        if array is None:
            raise InterpError("unknown array %r" % node.array)
        index = self._index(node.index, env, node.array)
        array.check(index)
        if node.flavor in ("ff", "fe") and not array.full[index]:
            raise InterpError(
                "synchronizing load of empty %s[%d] would block forever "
                "under sequential execution" % (node.array, index))
        value = array.values[index]
        if node.flavor == "fe":
            array.full[index] = False
        return value

    # -- statements ------------------------------------------------------------

    def exec(self, node, env):
        self._tick()
        if isinstance(node, Seq):
            for child in node.body:
                self.exec(child, env)
        elif isinstance(node, Let):
            inner = dict(env)
            for name, expr in node.bindings:
                inner[name] = self.eval(expr, inner)
            self.exec(node.body, inner)
            # Mutations of outer variables must escape the let scope.
            for name in env:
                if name not in [n for n, __ in node.bindings]:
                    env[name] = inner[name]
        elif isinstance(node, SetVar):
            if node.name not in env:
                raise InterpError("set! of unbound variable %r" % node.name)
            to_type = FLOAT if isinstance(env[node.name], float) else INT
            env[node.name] = _coerce(self.eval(node.expr, env), to_type,
                                     "assignment to %r" % node.name)
        elif isinstance(node, Aset):
            self._store(node, env)
        elif isinstance(node, If):
            if self.eval(node.cond, env):
                self.exec(node.then, env)
            elif node.els is not None:
                self.exec(node.els, env)
        elif isinstance(node, While):
            while self.eval(node.cond, env):
                self.exec(node.body, env)
        elif isinstance(node, Sync):
            self.eval(node.expr, env)
        elif isinstance(node, Fork):
            self._fork(node, env)
        elif isinstance(node, ExprStmt):
            self.eval(node.expr, env)
        else:
            raise InterpError("cannot execute %r" % node)

    def _store(self, node, env):
        array = self.arrays.get(node.array)
        if array is None:
            raise InterpError("unknown array %r" % node.array)
        index = self._index(node.index, env, node.array)
        array.check(index)
        if node.flavor == "ff" and not array.full[index]:
            raise InterpError("st_ff into empty %s[%d] would block"
                              % (node.array, index))
        if node.flavor == "ef" and array.full[index]:
            raise InterpError("st_ef into full %s[%d] would block"
                              % (node.array, index))
        value = _coerce(self.eval(node.value, env), array.elem_type,
                        "store into %r" % node.array)
        array.values[index] = value
        array.full[index] = True

    def _fork(self, node, env):
        kernel = self.ast.kernels.get(node.kernel)
        if kernel is None:
            raise InterpError("fork of unknown kernel %r" % node.kernel)
        if len(kernel.params) != len(node.args):
            raise InterpError("kernel %r takes %d args, got %d"
                              % (node.kernel, len(kernel.params),
                                 len(node.args)))
        child_env = {}
        for (name, ptype), arg in zip(kernel.params, node.args):
            child_env[name] = _coerce(self.eval(arg, env), ptype,
                                      "fork argument %r" % name)
        body = expand_kernel(kernel, self.ast.kernels, self.consts)
        self.exec(body, child_env)

    def run(self):
        body = expand_thread(self.ast.main, self.ast.kernels, self.consts)
        self.exec(body, {})
        return InterpResult(
            {name: list(a.values) for name, a in self.arrays.items()},
            {name: list(a.full) for name, a in self.arrays.items()},
            self.steps)


def interpret(source, overrides=None, max_steps=_DEFAULT_STEP_LIMIT):
    """Run a source program under the reference semantics."""
    ast = source if not isinstance(source, str) else parse_program(source)
    return Interpreter(ast, overrides, max_steps).run()
