"""Compilation driver: source text to an executable program.

Pipeline per thread: parse -> macro expansion (constants, unrolling,
forall, procedure inlining) -> lowering to IR -> optimization ->
critical-path list scheduling for the thread's cluster assignment ->
code generation.  The driver also assigns fork sites their placements
(TPE cluster pins / coupled cluster-order rotations), compiles one
thread variant per distinct (kernel, placement) pair, and links fork
bindings against callee parameter registers.
"""

from dataclasses import dataclass, field

from ..errors import CompileError
from ..isa.instruction import DataSegment, Program
from . import cache as compile_cache
from . import liveness
from .astnodes import (ExprStmt, Fork, If, Let, ProgramAST, Seq, SetVar,
                       While)
from .codegen import generate_thread
from .frontend import parse_program
from .lowering import lower_thread
from .macroexpand import Expander, expand_kernel, expand_thread, \
    resolve_consts
from .optimize import optimize_thread
from .options import CompilerOptions, DEFAULT_OPTIONS
from .schedule.modes import MODES, SINGLE_THREAD_MODES, main_spec, \
    thread_spec
from .schedule.scheduler import ThreadScheduler


@dataclass
class CompiledProgram:
    """The output of :func:`compile_program`."""

    program: Program
    config: object
    mode: str
    reports: dict                 # thread name -> ThreadReport
    consts: dict

    @property
    def main_report(self):
        return self.reports["main"]

    def peak_registers(self):
        """Peak registers per cluster across all threads (the paper
        reports this instead of performing register allocation)."""
        peaks = {}
        for report in self.reports.values():
            for cluster, count in report.peak_registers.items():
                peaks[cluster] = max(peaks.get(cluster, 0), count)
        return peaks

    def static_operation_count(self):
        return sum(r.operations for r in self.reports.values())


def iter_forks(node):
    """Yield every Fork statement in an expanded statement tree."""
    if isinstance(node, Fork):
        yield node
    elif isinstance(node, Seq):
        for child in node.body:
            yield from iter_forks(child)
    elif isinstance(node, Let):
        yield from iter_forks(node.body)
    elif isinstance(node, If):
        yield from iter_forks(node.then)
        if node.els is not None:
            yield from iter_forks(node.els)
    elif isinstance(node, While):
        yield from iter_forks(node.body)


class _VariantPlanner:
    """Assigns fork sites to thread variants.

    TPE pins each fork site's threads to one arithmetic cluster
    (round-robin over sites unless the source gives ``:cluster``);
    coupled gives each site a rotation of the cluster preference order.
    One compiled variant exists per (kernel, placement).
    """

    def __init__(self, mode, config):
        self.mode = mode
        self.config = config
        self.arith = config.arithmetic_clusters()
        self.site_counter = 0
        self.variants = {}          # variant name -> (kernel, placement)

    def assign(self, body):
        for fork in iter_forks(body):
            if self.mode in SINGLE_THREAD_MODES:
                raise CompileError(
                    "mode %r is single-threaded but the program forks "
                    "kernel %r" % (self.mode, fork.kernel))
            if self.mode == "tpe":
                if fork.cluster is not None:
                    placement = fork.cluster
                else:
                    placement = self.arith[self.site_counter
                                           % len(self.arith)]
            else:   # coupled
                if fork.cluster is not None:
                    placement = fork.cluster % len(self.arith)
                else:
                    placement = self.site_counter % len(self.arith)
            self.site_counter += 1
            variant = "%s@%d" % (fork.kernel, placement)
            fork.variant = variant
            if variant not in self.variants:
                self.variants[variant] = (fork.kernel, placement)


def _topological_variants(bodies):
    """Children-first ordering of thread variants (fork targets must be
    generated before their callers)."""
    order = []
    state = {}

    def visit(name):
        if state.get(name) == "done":
            return
        if state.get(name) == "visiting":
            raise CompileError("recursive fork cycle through %r" % name)
        state[name] = "visiting"
        body = bodies[name][1]
        for fork in iter_forks(body):
            visit(fork.variant)
        state[name] = "done"
        order.append(name)

    for name in bodies:
        visit(name)
    return order


def compile_program(source, config, mode="sts", optimize=True,
                    options=None, cache=None):
    """Compile source text (or a parsed :class:`ProgramAST`) for the
    given machine configuration and simulation mode.

    ``options`` (a :class:`CompilerOptions`) overrides individual
    pipeline features; ``optimize=False`` is shorthand for disabling
    the whole scalar optimizer.  ``cache`` (a
    :class:`~repro.compiler.cache.CompileCache`) memoizes the compiled
    program on disk, keyed by (source hash, mode, schedule signature,
    options); only string sources are cacheable.
    """
    if options is None:
        options = DEFAULT_OPTIONS if optimize else \
            CompilerOptions(optimize=False)
    if mode not in MODES:
        raise CompileError("unknown mode %r (one of %s)"
                           % (mode, ", ".join(MODES)))
    cache_key = None
    if cache is not None:
        cache_key = compile_cache.compile_key(source, mode, config,
                                              options)
        cached = cache.get(cache_key)
        if cached is not None:
            return cached
    ast = source if isinstance(source, ProgramAST) else \
        parse_program(source)
    consts = resolve_consts(ast.consts)
    sizer = Expander(ast.kernels, consts)
    data = DataSegment()
    symbols = {}
    for decl in ast.globals:
        size = sizer.static_value(decl.size, {}, "size of global %r"
                                  % decl.name)
        data.declare(decl.name, size, initially_full=decl.initially_full)
        symbols[decl.name] = decl
    kernel_sigs = {name: [ptype for __, ptype in kernel.params]
                   for name, kernel in ast.kernels.items()}

    planner = _VariantPlanner(mode, config)
    main_body = expand_thread(ast.main, ast.kernels, consts)
    planner.assign(main_body)
    bodies = {"main": (None, main_body, None)}
    # Expand every needed kernel variant (a fresh expansion per variant,
    # so per-variant fork assignments never interfere).
    frontier = list(planner.variants.items())
    while frontier:
        variant, (kernel_name, placement) = frontier.pop()
        if variant in bodies:
            continue
        body = expand_kernel(ast.kernels[kernel_name], ast.kernels, consts)
        before = set(planner.variants)
        planner.assign(body)
        bodies[variant] = (kernel_name, body, placement)
        frontier.extend((name, planner.variants[name])
                        for name in set(planner.variants) - before)

    program = Program(main="main")
    program.data = data
    compiled = {}
    reports = {}

    def child_params(variant):
        child = compiled.get(variant)
        if child is None:
            raise CompileError("fork target %r not yet compiled" % variant)
        return child.param_regs

    for variant in _topological_variants(
            {name: (k, b) for name, (k, b, __) in bodies.items()}):
        kernel_name, body, placement = bodies[variant]
        if variant == "main":
            spec = main_spec(mode, config)
            params = ()
        else:
            spec = thread_spec(mode, config, placement)
            params = ast.kernels[kernel_name].params
        thread_ir = lower_thread(variant, body, symbols, kernel_sigs,
                                 params)
        optimize_thread(thread_ir, options)
        live_in, __ = liveness.analyze(thread_ir)
        scheduler = ThreadScheduler(thread_ir, config, spec, live_in,
                                    options=options)
        scheduled = scheduler.schedule()
        thread, report = generate_thread(scheduled, data, child_params)
        compiled[variant] = thread
        reports[variant] = report
        program.add_thread(thread)
        program.register_usage[variant] = report.peak_registers

    program.validate()
    compiled = CompiledProgram(program, config, mode, reports, consts)
    if cache is not None:
        cache.put(cache_key, compiled)
    return compiled
