"""Lowering: expanded AST statements to the basic-block IR.

Performs type inference (int/float with automatic int-to-float widening
and explicit ``(int ...)`` narrowing), selects ISA opcodes, builds the
CFG for structured control flow, and assigns every mutable variable a
*home* virtual register.
"""

from ..errors import CompileError
from .astnodes import (Aref, Aset, BINOPS, BinOp, ExprStmt, FLOAT, Fork, If,
                       IfExpr, INT, Let, LOAD_FLAVORS, Num, PREDICATES, Seq,
                       SetVar, STORE_FLAVORS, Sync, UnOp, UNOPS, Var, While)
from .ir import Const, IRInstr, ThreadIR, VReg


class Lowerer:
    """Lower one thread's statements to a :class:`ThreadIR`."""

    def __init__(self, name, symbols, kernel_signatures, params=()):
        self.ir = ThreadIR(name)
        self.symbols = symbols                    # name -> GlobalDecl
        self.kernel_signatures = kernel_signatures  # name -> [param types]
        self.env = {}
        for param_name, param_type in params:
            home = self.ir.new_vreg(param_type, param_name, is_home=True)
            self.env[param_name] = home
            self.ir.params.append((param_name, home))
            self.ir.homes[param_name] = home
        self.block = self.ir.new_block()

    # -- helpers ---------------------------------------------------------

    def emit(self, op, dest=None, srcs=(), **kwargs):
        return self.block.emit(IRInstr(op, dest, list(srcs), **kwargs))

    def mov(self, dest, operand):
        op = "imov" if dest.type is INT else "fmov"
        self.emit(op, dest, [operand])

    def coerce(self, operand, to_type, context="expression"):
        if operand.type == to_type:
            return operand
        if to_type is FLOAT:
            if isinstance(operand, Const):
                return Const(float(operand.value))
            temp = self.ir.new_vreg(FLOAT)
            self.emit("itof", temp, [operand])
            return temp
        raise CompileError("implicit float-to-int narrowing in %s; use "
                           "(int ...)" % context)

    def _int_index(self, node, array):
        operand = self.expr(node)
        if operand.type is not INT:
            raise CompileError("index into %r must be an integer" % array)
        return operand

    def _symbol(self, array):
        decl = self.symbols.get(array)
        if decl is None:
            raise CompileError("unknown array %r" % array)
        return decl

    # -- expressions -------------------------------------------------------

    def expr(self, node, dest=None):
        """Lower an expression; returns its operand.  When ``dest`` (a
        home VReg) is given, the value is left exactly there."""
        operand = self._expr(node, dest)
        if dest is None or operand is dest:
            return operand
        operand = self.coerce(operand, dest.type,
                              "assignment to %s" % (dest.name or dest))
        self.mov(dest, operand)
        return dest

    def _result_reg(self, dest, rtype):
        if dest is not None and dest.type == rtype:
            return dest
        return self.ir.new_vreg(rtype)

    def _expr(self, node, dest):
        if isinstance(node, Num):
            return Const(node.value)
        if isinstance(node, Var):
            home = self.env.get(node.name)
            if home is None:
                raise CompileError("unbound variable %r" % node.name)
            return home
        if isinstance(node, BinOp):
            return self._binop(node, dest)
        if isinstance(node, UnOp):
            return self._unop(node, dest)
        if isinstance(node, Aref):
            decl = self._symbol(node.array)
            index = self._int_index(node.index, node.array)
            result = self._result_reg(dest, decl.elem_type)
            self.emit(LOAD_FLAVORS[node.flavor], result, [index],
                      sym=node.array)
            return result
        if isinstance(node, IfExpr):
            return self._if_expr(node)
        raise CompileError("cannot lower expression %r" % node)

    def _binop(self, node, dest):
        left = self.expr(node.left)
        right = self.expr(node.right)
        int_name, float_name = BINOPS[node.op]
        use_float = FLOAT in (left.type, right.type)
        if use_float and float_name is None:
            raise CompileError("operator %r is integer-only" % node.op)
        if use_float:
            left = self.coerce(left, FLOAT)
            right = self.coerce(right, FLOAT)
        opname = float_name if use_float else int_name
        rtype = INT if node.op in PREDICATES else (FLOAT if use_float
                                                   else INT)
        result = self._result_reg(dest, rtype)
        self.emit(opname, result, [left, right])
        return result

    def _unop(self, node, dest):
        operand = self.expr(node.operand)
        if node.op == "float":
            if operand.type is FLOAT:
                return operand
            if isinstance(operand, Const):
                return Const(float(operand.value))
            result = self._result_reg(dest, FLOAT)
            self.emit("itof", result, [operand])
            return result
        if node.op == "int":
            if operand.type is INT:
                return operand
            if isinstance(operand, Const):
                return Const(int(operand.value))
            result = self._result_reg(dest, INT)
            self.emit("ftoi", result, [operand])
            return result
        int_name, float_name = UNOPS[node.op]
        if operand.type is FLOAT and float_name is None:
            raise CompileError("operator %r is integer-only" % node.op)
        if operand.type is INT and int_name is None:
            operand = self.coerce(operand, FLOAT)
        opname = float_name if operand.type is FLOAT else int_name
        result = self._result_reg(dest, operand.type)
        self.emit(opname, result, [operand])
        return result

    def _if_expr(self, node):
        """Ternary: both arms write one join register."""
        # Pre-lower the arms' types by peeking: lower into a typed join
        # home after computing the condition.
        cond = self.expr(node.cond)
        brf = IRInstr("brf", srcs=[cond], target=None)
        self.block.terminator = brf
        then_block = self.ir.new_block("t")
        self.block = then_block
        then_value = self.expr(node.then)
        join_type = then_value.type
        # The join register is written in two blocks, so it must be a
        # home (fixed-location) register.
        join_reg = self.ir.new_vreg(join_type, "ifv", is_home=True)
        then_value = self.coerce(then_value, join_type)
        self.mov(join_reg, then_value)
        then_exit_br = IRInstr("br", target=None)
        self.block.terminator = then_exit_br
        else_block = self.ir.new_block("e")
        brf.target = else_block.name
        self.block = else_block
        else_value = self.expr(node.els)
        if else_value.type is FLOAT and join_type is INT:
            raise CompileError("if-expression arms mix float and int; "
                               "widen the first arm with (float ...)")
        else_value = self.coerce(else_value, join_type)
        self.mov(join_reg, else_value)
        join_block = self.ir.new_block("j")
        then_exit_br.target = join_block.name
        self.block = join_block
        return join_reg

    # -- statements ----------------------------------------------------------

    def stmt(self, node):
        if isinstance(node, Seq):
            for child in node.body:
                self.stmt(child)
        elif isinstance(node, Let):
            saved = dict(self.env)
            for name, init in node.bindings:
                operand = self.expr(init)
                home = self.ir.new_vreg(operand.type, name, is_home=True)
                self.mov(home, operand)
                self.env[name] = home
                self.ir.homes.setdefault(name, home)
            self.stmt(node.body)
            self.env = saved
        elif isinstance(node, SetVar):
            home = self.env.get(node.name)
            if home is None:
                raise CompileError("set! of unbound variable %r" % node.name)
            self.expr(node.expr, dest=home)
        elif isinstance(node, Aset):
            decl = self._symbol(node.array)
            value = self.expr(node.value)
            value = self.coerce(value, decl.elem_type,
                                "store into %r" % node.array)
            index = self._int_index(node.index, node.array)
            self.emit(STORE_FLAVORS[node.flavor], None, [value, index],
                      sym=node.array)
        elif isinstance(node, If):
            self._if_stmt(node)
        elif isinstance(node, While):
            self._while_stmt(node)
        elif isinstance(node, Sync):
            operand = self.expr(node.expr)
            if not isinstance(operand, Const):
                self.emit("sink", None, [operand])
        elif isinstance(node, Fork):
            self._fork_stmt(node)
        elif isinstance(node, ExprStmt):
            self.expr(node.expr)
        else:
            raise CompileError("cannot lower statement %r" % node)

    def _if_stmt(self, node):
        cond = self.expr(node.cond)
        brf = IRInstr("brf", srcs=[cond], target=None)
        self.block.terminator = brf
        self.block = self.ir.new_block("t")
        self.stmt(node.then)
        if node.els is None:
            join = self.ir.new_block("j")
            brf.target = join.name
            self.block = join
            return
        then_exit_br = IRInstr("br", target=None)
        self.block.terminator = then_exit_br
        else_block = self.ir.new_block("e")
        brf.target = else_block.name
        self.block = else_block
        self.stmt(node.els)
        join = self.ir.new_block("j")
        then_exit_br.target = join.name
        self.block = join

    def _while_stmt(self, node):
        header = self.ir.new_block("h")
        self.block = header
        cond = self.expr(node.cond)
        brf = IRInstr("brf", srcs=[cond], target=None)
        self.block.terminator = brf
        self.block = self.ir.new_block("w")
        self.stmt(node.body)
        self.block.terminator = IRInstr("br", target=header.name)
        exit_block = self.ir.new_block("x")
        brf.target = exit_block.name
        self.block = exit_block

    def _fork_stmt(self, node):
        signature = self.kernel_signatures.get(node.kernel)
        if signature is None:
            raise CompileError("fork of unknown kernel %r" % node.kernel)
        if len(signature) != len(node.args):
            raise CompileError("kernel %r takes %d arguments, got %d"
                               % (node.kernel, len(signature),
                                  len(node.args)))
        operands = []
        for arg, ptype in zip(node.args, signature):
            operand = self.expr(arg)
            operand = self.coerce(operand, ptype,
                                  "fork argument of %r" % node.kernel)
            operands.append(operand)
        self.emit("fork", None, [], target=node.variant or node.kernel,
                  fork_args=operands, fork_cluster=node.cluster)

    def finish(self):
        if self.block.terminator is None:
            self.block.terminator = IRInstr("halt")
        else:
            tail = self.ir.new_block("z")
            tail.terminator = IRInstr("halt")
        self.ir.validate()
        return self.ir


def lower_thread(name, body, symbols, kernel_signatures, params=()):
    """Lower a fully expanded thread body to IR."""
    lowerer = Lowerer(name, symbols, kernel_signatures, params)
    lowerer.stmt(body)
    return lowerer.finish()
