"""Intermediate representation: virtual registers, basic blocks, CFGs.

The IR sits between lowering and the scheduler.  Operations use the ISA
opcode names directly so the scheduler/codegen need no translation
table, with three representational differences:

* memory operations carry the accessed symbol name and an index operand
  (the symbol's base address becomes an immediate at code generation,
  and the memory unit performs the addition);
* branch targets name basic blocks rather than instruction indices;
* fork carries the callee kernel name and argument operands (bindings
  to the callee's parameter registers are resolved at code generation).

Mutable source variables get a *home* virtual register that every
assignment writes, giving each variable one fixed physical location per
thread — the paper's "live variables are kept in registers across basic
block boundaries".  Temporaries are single-assignment and block-local.
"""

from dataclasses import dataclass, field

from ..errors import CompileError
from ..isa.operations import UnitClass, opcode
from .astnodes import FLOAT, INT


@dataclass(frozen=True)
class VReg:
    """A virtual register (infinite supply, typed)."""

    id: int
    type: str
    name: str = ""
    is_home: bool = False

    def __str__(self):
        tag = self.name or "v"
        return "%%%s%d:%s" % (tag if self.is_home else "t", self.id,
                              self.type)

    def __hash__(self):
        return hash(self.id)

    def __eq__(self, other):
        return isinstance(other, VReg) and other.id == self.id


@dataclass(frozen=True)
class Const:
    """A compile-time constant operand (becomes an immediate)."""

    value: object

    @property
    def type(self):
        return FLOAT if isinstance(self.value, float) else INT

    def __str__(self):
        return "#%r" % (self.value,)


def is_vreg(operand):
    return isinstance(operand, VReg)


@dataclass
class IRInstr:
    """One IR operation."""

    op: str
    dest: object = None          # VReg or None
    srcs: list = field(default_factory=list)
    sym: str = None              # memory ops: accessed symbol
    target: str = None           # branches: block name; fork: thread name
    fork_args: list = None
    fork_cluster: int = None

    @property
    def spec(self):
        return opcode(self.op)

    @property
    def is_memory(self):
        return self.spec.is_memory

    @property
    def is_pure(self):
        """True when the instruction has no side effects beyond its
        destination register (safe to CSE/DCE)."""
        spec = self.spec
        return (not spec.is_memory and spec.unit is not UnitClass.BRU
                and spec.semantics is not None)

    @property
    def is_sync_memory(self):
        """Synchronizing accesses act as full memory barriers."""
        spec = self.spec
        return spec.is_memory and (spec.precondition != "unconditional"
                                   or spec.postcondition == "set-empty")

    def source_vregs(self):
        regs = [s for s in self.srcs if is_vreg(s)]
        if self.fork_args:
            regs.extend(a for a in self.fork_args if is_vreg(a))
        return regs

    def __str__(self):
        parts = [self.op]
        if self.dest is not None:
            parts.append(str(self.dest) + " <-")
        parts.extend(str(s) for s in self.srcs)
        if self.sym:
            parts.append("@" + self.sym)
        if self.target:
            parts.append("->" + self.target)
        if self.fork_args is not None:
            parts.append("(" + ", ".join(str(a) for a in self.fork_args)
                         + ")")
        return " ".join(parts)


class BasicBlock:
    """A straight-line run of IR instructions plus a terminator.

    ``terminator`` is None (fall through to the next block in layout
    order), or an IRInstr with op in {br, brt, brf, halt}.  ``brt``/
    ``brf`` fall through when not taken.
    """

    def __init__(self, name):
        self.name = name
        self.instrs = []
        self.terminator = None

    def emit(self, instr):
        self.instrs.append(instr)
        return instr

    def successors(self, next_block_name):
        """Names of possible successor blocks."""
        term = self.terminator
        if term is None:
            return [next_block_name] if next_block_name else []
        if term.op == "halt":
            return []
        if term.op == "br":
            return [term.target]
        succs = [term.target]
        if next_block_name:
            succs.append(next_block_name)
        return succs

    def all_instrs(self):
        if self.terminator is not None:
            return self.instrs + [self.terminator]
        return list(self.instrs)

    def __str__(self):
        lines = ["%s:" % self.name]
        lines.extend("  " + str(i) for i in self.all_instrs())
        return "\n".join(lines)


class ThreadIR:
    """The IR of one thread: an ordered list of basic blocks."""

    def __init__(self, name, params=None):
        self.name = name
        self.params = list(params or [])   # [(source name, VReg)]
        self.blocks = []
        self._vreg_counter = 0
        self.homes = {}                    # source var name -> VReg

    def new_vreg(self, vtype, name="", is_home=False):
        self._vreg_counter += 1
        return VReg(self._vreg_counter, vtype, name, is_home)

    def new_block(self, hint="b"):
        block = BasicBlock("%s%d" % (hint, len(self.blocks)))
        self.blocks.append(block)
        return block

    def block_index(self):
        return {block.name: i for i, block in enumerate(self.blocks)}

    def next_block_name(self, position):
        if position + 1 < len(self.blocks):
            return self.blocks[position + 1].name
        return None

    def cfg_successors(self):
        """name -> [successor names] for the whole thread."""
        succs = {}
        for i, block in enumerate(self.blocks):
            succs[block.name] = block.successors(self.next_block_name(i))
        return succs

    def validate(self):
        names = set()
        for block in self.blocks:
            if block.name in names:
                raise CompileError("duplicate block %r" % block.name)
            names.add(block.name)
        last = self.blocks[-1] if self.blocks else None
        if last is None or last.terminator is None \
                or last.terminator.op != "halt":
            raise CompileError("thread %r must end in halt" % self.name)
        for block in self.blocks:
            for instr in block.all_instrs():
                if instr.spec.is_branch and instr.target not in names:
                    raise CompileError("branch to unknown block %r"
                                       % instr.target)

    def __str__(self):
        header = "thread %s(%s)" % (
            self.name, ", ".join("%s=%s" % (n, v) for n, v in self.params))
        return header + "\n" + "\n".join(str(b) for b in self.blocks)
