"""Liveness analysis for home virtual registers.

Temporaries are single-assignment and block-local by construction, so
only home registers (mutable source variables and if-expression join
values) flow across basic blocks.  Standard iterative backward dataflow
over the CFG computes live-in/live-out sets of home vreg ids, used by
dead-code elimination and by the scheduler's block-entry value maps.
"""


def block_use_def(block):
    """(use, def) home-vreg-id sets for one block.

    ``use`` holds homes read before any (re)definition in the block.
    """
    use = set()
    defs = set()
    for instr in block.all_instrs():
        for vreg in instr.source_vregs():
            if vreg.is_home and vreg.id not in defs:
                use.add(vreg.id)
        dest = instr.dest
        if dest is not None and dest.is_home:
            defs.add(dest.id)
    return use, defs


def analyze(thread_ir):
    """Return (live_in, live_out): block name -> set of home vreg ids."""
    succs = thread_ir.cfg_successors()
    use = {}
    defs = {}
    for block in thread_ir.blocks:
        use[block.name], defs[block.name] = block_use_def(block)
    live_in = {block.name: set() for block in thread_ir.blocks}
    live_out = {block.name: set() for block in thread_ir.blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(thread_ir.blocks):
            name = block.name
            out = set()
            for succ in succs[name]:
                out |= live_in[succ]
            new_in = use[name] | (out - defs[name])
            if out != live_out[name] or new_in != live_in[name]:
                live_out[name] = out
                live_in[name] = new_in
                changed = True
    return live_in, live_out
