"""Compiler option flags.

Every optimization and scheduling refinement can be switched off
individually, so the ablation benchmarks can quantify what each design
choice buys (see ``benchmarks/test_ablations.py``).
"""

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class CompilerOptions:
    """Feature switches for the compilation pipeline."""

    #: Master switch for the scalar optimizer (LVN + global constants
    #: + DCE).  Off = the paper's unoptimized lower bound.
    optimize: bool = True
    #: Replace repeated loads of unchanged locations with register
    #: copies (the paper's "memory operations replaced by register
    #: operations"); requires ``optimize``.
    load_elimination: bool = True
    #: Propagate single-definition constant homes across blocks.
    global_constants: bool = True
    #: Affine memory disambiguation in the dependence graph; off makes
    #: every same-symbol store/load pair alias.
    affine_alias: bool = True
    #: Allow a producing operation to name a second destination
    #: register in another cluster; off forces explicit move ops for
    #: all inter-cluster communication.
    dual_destinations: bool = True
    #: Re-schedule with majority-use home placement (the second
    #: scheduling pass); off keeps the lazy first-touch homes.
    two_pass_homes: bool = True

    def without(self, **flags):
        """A copy with the given flags overridden (ablation helper)."""
        return replace(self, **flags)


DEFAULT_OPTIONS = CompilerOptions()

#: Named ablations used by benchmarks/test_ablations.py.
ABLATIONS = {
    "full": DEFAULT_OPTIONS,
    "no-optimizer": CompilerOptions(optimize=False),
    "no-load-elim": CompilerOptions(load_elimination=False),
    "no-global-const": CompilerOptions(global_constants=False),
    "no-affine-alias": CompilerOptions(affine_alias=False),
    "no-dual-dest": CompilerOptions(dual_destinations=False),
    "one-pass-homes": CompilerOptions(two_pass_homes=False),
}
