"""The statically scheduling compiler (paper Section 3).

Source language: simplified C semantics with Lisp syntax; explicit
``fork``/``forall`` threading; hand unrolling via ``unroll``; procedures
macro-expanded via ``call``.  Scheduling is per-basic-block critical-path
list scheduling for a configured machine; no trace scheduling or
software pipelining, exactly as in the paper.
"""

from .astnodes import ProgramAST
from .cache import CompileCache, default_cache
from .driver import CompiledProgram, compile_program, iter_forks
from .frontend import parse_program
from .interp import InterpResult, interpret
from .schedule.modes import MODES

__all__ = ["ProgramAST", "CompileCache", "default_cache",
           "CompiledProgram", "compile_program", "iter_forks",
           "parse_program", "InterpResult", "interpret", "MODES"]
