"""Front end: s-expression forms to the AST.

Surface syntax::

    (program
      (const N 9)
      (global A (* N N))              ; float array, initially full
      (global flags N :int :empty)    ; int array, initially empty
      (kernel row (i lim) stmt...)
      (main stmt...))

Statements: ``let``, ``set!``, ``aset!``/``aset-ff!``/``aset-ef!``,
``if``, ``while``, ``for``, ``unroll``, ``fork``, ``forall``, ``begin``,
``call``, or a bare expression.  Expressions: literals, variables,
arithmetic/comparison forms, ``aref``/``aref-ff``/``aref-fe``,
``if`` (ternary), ``neg``/``not``/``abs``/``sqrt``/``float``/``int``.
"""

from ..errors import CompileError
from .astnodes import (Aref, Aset, BINOPS, BinOp, Call, ConstDecl, ExprStmt,
                       FLOAT, For, Forall, Fork, GlobalDecl, If, IfExpr, INT,
                       KernelDef, Let, LOAD_FLAVORS, Num, ProgramAST, Seq,
                       SetVar, STORE_FLAVORS, Sync, UnOp, UNOPS, Unroll, Var,
                       While)
from .sexpr import Symbol, read_all, to_text

_AREF = {"aref": "normal", "aref-ff": "ff", "aref-fe": "fe"}
_ASET = {"aset!": "normal", "aset-ff!": "ff", "aset-ef!": "ef"}
_CONVERSIONS = ("float", "int")

_STMT_HEADS = {"let", "set!", "if", "while", "for", "unroll", "fork",
               "forall", "begin", "call"} | set(_ASET)


def _head(form):
    if isinstance(form, list) and form and isinstance(form[0], Symbol):
        return str(form[0])
    return None


def _need(form, condition, message):
    if not condition:
        raise CompileError(message, form=to_text(form))


def parse_expr(form):
    """Parse an expression form."""
    if isinstance(form, bool):
        raise CompileError("boolean literal not supported")
    if isinstance(form, (int, float)):
        return Num(form)
    if isinstance(form, Symbol):
        return Var(str(form))
    _need(form, isinstance(form, list) and form, "empty expression")
    head = _head(form)
    _need(form, head is not None, "expression must start with an operator")
    if head in _AREF:
        _need(form, len(form) == 3, "%s takes (array index)" % head)
        return Aref(str(form[1]), parse_expr(form[2]), _AREF[head])
    if head in BINOPS:
        _need(form, len(form) >= 3, "%s takes at least two operands" % head)
        expr = parse_expr(form[1])
        for operand in form[2:]:
            expr = BinOp(head, expr, parse_expr(operand))
        return expr
    if head in UNOPS or head in _CONVERSIONS:
        _need(form, len(form) == 2, "%s takes one operand" % head)
        return UnOp(head, parse_expr(form[1]))
    if head == "if":
        _need(form, len(form) == 4, "if-expression takes (if c then else)")
        return IfExpr(parse_expr(form[1]), parse_expr(form[2]),
                      parse_expr(form[3]))
    if head == "call":
        _need(form, len(form) >= 2, "call takes (call kernel args...)")
        return Call(str(form[1]), [parse_expr(a) for a in form[2:]])
    raise CompileError("unknown expression operator %r" % head,
                       form=to_text(form))


def _parse_loop_spec(form, spec):
    _need(form, isinstance(spec, list) and len(spec) in (3, 4),
          "loop spec must be (var lo hi [step])")
    var = str(spec[0])
    lo = parse_expr(spec[1])
    hi = parse_expr(spec[2])
    step = parse_expr(spec[3]) if len(spec) == 4 else None
    return var, lo, hi, step


def _parse_fork(form):
    _need(form, len(form) >= 2, "fork takes (fork (kernel args...))")
    invocation = form[1]
    _need(form, isinstance(invocation, list) and invocation,
          "fork target must be (kernel args...)")
    kernel = str(invocation[0])
    args = [parse_expr(a) for a in invocation[1:]]
    cluster = None
    rest = form[2:]
    while rest:
        _need(form, len(rest) >= 2 and str(rest[0]) == ":cluster",
              "fork options are [:cluster k]")
        cluster = int(rest[1])
        rest = rest[2:]
    return Fork(kernel, args, cluster=cluster)


def parse_stmt(form):
    """Parse a statement form."""
    head = _head(form)
    if head == "let":
        _need(form, len(form) >= 3, "let takes (let ((x e)...) body...)")
        bindings = []
        for binding in form[1]:
            _need(form, isinstance(binding, list) and len(binding) == 2,
                  "let binding must be (name expr)")
            bindings.append((str(binding[0]), parse_expr(binding[1])))
        return Let(bindings, Seq([parse_stmt(s) for s in form[2:]]))
    if head == "set!":
        _need(form, len(form) == 3, "set! takes (set! var expr)")
        return SetVar(str(form[1]), parse_expr(form[2]))
    if head in _ASET:
        _need(form, len(form) == 4, "%s takes (array index value)" % head)
        return Aset(str(form[1]), parse_expr(form[2]), parse_expr(form[3]),
                    _ASET[head])
    if head == "if":
        _need(form, len(form) in (3, 4), "if takes (if c then [else])")
        els = parse_stmt(form[3]) if len(form) == 4 else None
        return If(parse_expr(form[1]), parse_stmt(form[2]), els)
    if head == "while":
        _need(form, len(form) >= 3, "while takes (while c body...)")
        return While(parse_expr(form[1]),
                     Seq([parse_stmt(s) for s in form[2:]]))
    if head == "for" or head == "unroll":
        _need(form, len(form) >= 3, "%s takes ((var lo hi) body...)" % head)
        var, lo, hi, step = _parse_loop_spec(form, form[1])
        body = Seq([parse_stmt(s) for s in form[2:]])
        cls = For if head == "for" else Unroll
        return cls(var, lo, hi, body, step)
    if head == "fork":
        return _parse_fork(form)
    if head == "forall":
        _need(form, len(form) == 3,
              "forall takes (forall (var lo hi) (kernel args...))")
        var, lo, hi, step = _parse_loop_spec(form, form[1])
        _need(form, step is None, "forall does not take a step")
        invocation = form[2]
        _need(form, isinstance(invocation, list) and invocation,
              "forall body must be (kernel args...)")
        fork = Fork(str(invocation[0]),
                    [parse_expr(a) for a in invocation[1:]])
        return Forall(var, lo, hi, fork)
    if head == "sync":
        _need(form, len(form) == 2, "sync takes (sync expr)")
        return Sync(parse_expr(form[1]))
    if head == "begin":
        return Seq([parse_stmt(s) for s in form[1:]])
    return ExprStmt(parse_expr(form))


def parse_program(text):
    """Parse full source text into a :class:`ProgramAST`."""
    forms = read_all(text)
    if len(forms) != 1 or _head(forms[0]) != "program":
        raise CompileError("source must be a single (program ...) form")
    consts = []
    globals_ = []
    kernels = {}
    main = None
    for form in forms[0][1:]:
        head = _head(form)
        if head == "const":
            _need(form, len(form) == 3, "const takes (const name value)")
            consts.append(ConstDecl(str(form[1]), parse_expr(form[2])))
        elif head == "global":
            _need(form, len(form) >= 3, "global takes (global name size "
                  "[:int|:float] [:empty|:full])")
            elem_type, initially_full = FLOAT, True
            for option in form[3:]:
                option = str(option)
                if option == ":int":
                    elem_type = INT
                elif option == ":float":
                    elem_type = FLOAT
                elif option == ":empty":
                    initially_full = False
                elif option == ":full":
                    initially_full = True
                else:
                    raise CompileError("unknown global option %r" % option,
                                       form=to_text(form))
            globals_.append(GlobalDecl(str(form[1]), parse_expr(form[2]),
                                       elem_type, initially_full))
        elif head == "kernel":
            _need(form, len(form) >= 4,
                  "kernel takes (kernel name (params...) body...)")
            name = str(form[1])
            if name in kernels:
                raise CompileError("duplicate kernel %r" % name)
            params = []
            for param in form[2]:
                if isinstance(param, list):
                    _need(form, len(param) == 2
                          and str(param[1]) in (":int", ":float"),
                          "typed parameter must be (name :int|:float)")
                    ptype = FLOAT if str(param[1]) == ":float" else INT
                    params.append((str(param[0]), ptype))
                else:
                    params.append((str(param), INT))
            kernels[name] = KernelDef(
                name, params, Seq([parse_stmt(s) for s in form[3:]]))
        elif head == "main":
            if main is not None:
                raise CompileError("duplicate (main ...)")
            main = Seq([parse_stmt(s) for s in form[1:]])
        else:
            raise CompileError("unknown top-level form %r" % head,
                               form=to_text(form))
    if main is None:
        raise CompileError("program has no (main ...)")
    return ProgramAST(consts, globals_, kernels, main)
