"""S-expression reader for the source language.

The paper's compiler source language has simplified C semantics with
Lisp syntax.  This reader turns text into nested Python lists of
:class:`Symbol`, ``int``, and ``float`` atoms.  ``;`` starts a comment
that runs to end of line.
"""

from ..errors import CompileError


class Symbol(str):
    """An identifier atom (distinct from Python strings/numbers)."""

    __slots__ = ()

    def __repr__(self):
        return str(self)


_DELIMITERS = "()\n\t\r ;"


def tokenize(text):
    """Yield tokens: '(', ')', or atom strings."""
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
        elif ch == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif ch in "()":
            yield ch
            i += 1
        else:
            start = i
            while i < n and text[i] not in _DELIMITERS:
                i += 1
            yield text[start:i]


def _atom(token):
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return Symbol(token)


def read_all(text):
    """Parse every top-level form in ``text``."""
    stack = [[]]
    for token in tokenize(text):
        if token == "(":
            stack.append([])
        elif token == ")":
            if len(stack) == 1:
                raise CompileError("unbalanced ')'")
            done = stack.pop()
            stack[-1].append(done)
        else:
            stack[-1].append(_atom(token))
    if len(stack) != 1:
        raise CompileError("unbalanced '(' — %d unclosed" % (len(stack) - 1))
    return stack[0]


def read_one(text):
    """Parse exactly one form."""
    forms = read_all(text)
    if len(forms) != 1:
        raise CompileError("expected one form, found %d" % len(forms))
    return forms[0]


def to_text(form, indent=0):
    """Pretty-print a form back to source text (diagnostics)."""
    if isinstance(form, list):
        inner = " ".join(to_text(item) for item in form)
        return "(" + inner + ")"
    return str(form)
