"""Abstract syntax for the source language.

The surface language (paper Section 3) has simplified C semantics with
Lisp syntax: scalar variables, global arrays in node memory, arithmetic,
``while``/``for`` loops, ``if``, explicit ``fork``/``forall`` threading,
hand ``unroll``-ing, and the synchronizing array accesses of Table 1.
Procedures (``kernel`` definitions invoked with ``call``) are
macro-expanded; ``fork`` targets run as independent threads.
"""

from dataclasses import dataclass, field

INT = "i"
FLOAT = "f"

#: aref flavors -> load opcodes (Table 1).
LOAD_FLAVORS = {"normal": "ld", "ff": "ld_ff", "fe": "ld_fe"}
#: aset flavors -> store opcodes (Table 1).
STORE_FLAVORS = {"normal": "st", "ff": "st_ff", "ef": "st_ef"}


@dataclass
class Node:
    pass


# --- expressions ------------------------------------------------------------

@dataclass
class Num(Node):
    value: object

    @property
    def type(self):
        return FLOAT if isinstance(self.value, float) else INT


@dataclass
class Var(Node):
    name: str


@dataclass
class BinOp(Node):
    op: str
    left: Node
    right: Node


@dataclass
class UnOp(Node):
    op: str
    operand: Node


@dataclass
class Aref(Node):
    array: str
    index: Node
    flavor: str = "normal"


@dataclass
class IfExpr(Node):
    cond: Node
    then: Node
    els: Node


@dataclass
class Call(Node):
    """Inline (macro-expanded) procedure invocation."""

    name: str
    args: list


# --- statements -------------------------------------------------------------

@dataclass
class Seq(Node):
    body: list


@dataclass
class Let(Node):
    bindings: list          # [(name, expr), ...]
    body: Seq


@dataclass
class SetVar(Node):
    name: str
    expr: Node


@dataclass
class Aset(Node):
    array: str
    index: Node
    value: Node
    flavor: str = "normal"


@dataclass
class If(Node):
    cond: Node
    then: Node
    els: Node = None


@dataclass
class While(Node):
    cond: Node
    body: Seq


@dataclass
class For(Node):
    """Dynamic counted loop; sugar for Let+While."""

    var: str
    lo: Node
    hi: Node
    body: Seq
    step: Node = None


@dataclass
class Unroll(Node):
    """Statically unrolled loop (bounds must be compile-time constants);
    the paper's compiler requires loops to be unrolled by hand."""

    var: str
    lo: Node
    hi: Node
    body: Seq
    step: Node = None


@dataclass
class Fork(Node):
    """Spawn ``kernel(args)`` as a concurrently running thread."""

    kernel: str
    args: list
    cluster: int = None     # TPE placement hint
    variant: str = None     # filled in by the driver (compiled thread name)


@dataclass
class Forall(Node):
    """Spawn one thread per index value (constant bounds)."""

    var: str
    lo: Node
    hi: Node
    fork: Fork


@dataclass
class Sync(Node):
    """Evaluate an expression and block instruction issue until its
    value is present — the join primitive (compiles to ``sink``)."""

    expr: Node


@dataclass
class ExprStmt(Node):
    expr: Node


# --- top level --------------------------------------------------------------

@dataclass
class GlobalDecl(Node):
    name: str
    size: Node              # constant expression
    elem_type: str = FLOAT
    initially_full: bool = True


@dataclass
class ConstDecl(Node):
    name: str
    value: Node


@dataclass
class KernelDef(Node):
    name: str
    params: list            # [name, ...]
    body: Seq


@dataclass
class ProgramAST(Node):
    consts: list            # [ConstDecl]
    globals: list           # [GlobalDecl]
    kernels: dict           # name -> KernelDef
    main: Seq


#: Binary operators with (int opcode, float opcode); None = unsupported.
BINOPS = {
    "+": ("iadd", "fadd"),
    "-": ("isub", "fsub"),
    "*": ("imul", "fmul"),
    "/": ("idiv", "fdiv"),
    "mod": ("imod", None),
    "min": ("imin", "fmin"),
    "max": ("imax", "fmax"),
    "<<": ("ishl", None),
    ">>": ("ishr", None),
    "&": ("iand", None),
    "|": ("ior", None),
    "^": ("ixor", None),
    "<": ("ilt", "flt"),
    "<=": ("ile", "fle"),
    ">": ("igt", "fgt"),
    ">=": ("ige", "fge"),
    "==": ("ieq", "feq"),
    "!=": ("ine", "fne"),
}

#: Operators whose result is always an integer (predicates).
PREDICATES = {"<", "<=", ">", ">=", "==", "!="}

#: Unary operators with (int opcode, float opcode).
UNOPS = {
    "neg": ("ineg", "fneg"),
    "not": ("inot", None),
    "abs": (None, "fabs"),
    "sqrt": (None, "fsqrt"),
}
