"""Global constant propagation for single-definition home registers.

A mutable variable that is assigned exactly once in the whole thread,
with a constant, is simply a named constant: every use is replaced by
the immediate and the defining move is deleted (DCE would also delete
it, but doing it here keeps the pass self-contained).  This matters for
loop bounds — without it, a ``for`` limit lives in a register whose
cluster may differ from the induction variable's, costing a cross-
cluster move in every loop header.

Thread parameters are excluded: they are defined invisibly at spawn.
Copies of other single-def constants converge over a few iterations.
"""

from ..ir import Const, is_vreg

_MAX_ROUNDS = 4


def _collect_defs(thread_ir):
    defs = {}           # home vreg id -> [instr]
    for block in thread_ir.blocks:
        for instr in block.all_instrs():
            dest = instr.dest
            if dest is not None and dest.is_home:
                defs.setdefault(dest.id, []).append(instr)
    return defs


def propagate_global_constants(thread_ir):
    """Rewrite the thread in place; returns the number of homes folded."""
    param_ids = {vreg.id for __, vreg in thread_ir.params}
    folded_total = 0
    for __ in range(_MAX_ROUNDS):
        defs = _collect_defs(thread_ir)
        constants = {}
        for home_id, instrs in defs.items():
            if home_id in param_ids or len(instrs) != 1:
                continue
            instr = instrs[0]
            if instr.op in ("imov", "fmov") and len(instr.srcs) == 1 \
                    and isinstance(instr.srcs[0], Const) \
                    and instr.srcs[0].type == instr.dest.type:
                constants[home_id] = instr.srcs[0]
        if not constants:
            break
        folded_total += len(constants)
        for block in thread_ir.blocks:
            kept = []
            for instr in block.instrs:
                dest = instr.dest
                if dest is not None and dest.id in constants:
                    continue
                _substitute(instr, constants)
                kept.append(instr)
            block.instrs = kept
            if block.terminator is not None:
                _substitute(block.terminator, constants)
    return folded_total


def _substitute(instr, constants):
    instr.srcs = [constants.get(s.id, s) if is_vreg(s) else s
                  for s in instr.srcs]
    if instr.fork_args:
        instr.fork_args = [constants.get(a.id, a) if is_vreg(a) else a
                           for a in instr.fork_args]
