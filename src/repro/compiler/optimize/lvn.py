"""Local value numbering.

One block-local pass that performs the paper compiler's scalar
optimizations together: constant propagation, copy propagation, static
evaluation (folding) of expressions with constant operands, a few safe
algebraic identities, and common subexpression elimination.  Value
handles carry (vreg, version) pairs so redefinitions of home registers
invalidate stale table entries.

Folding uses the ISA opcode semantics, so compile-time and run-time
arithmetic always agree (including C-style truncating integer
division).
"""

from ..ir import Const, IRInstr, is_vreg


class _Numbering:
    """Bookkeeping for one basic block."""

    def __init__(self):
        self.version = {}          # vreg id -> int
        self.const_of = {}         # (vreg id, version) -> Const
        self.copy_of = {}          # (vreg id, version) -> (vreg, version)
        self.expr_table = {}       # key -> (vreg, version)
        self.load_table = {}       # key -> (vreg, version)
        self.store_epoch = {}      # symbol -> int
        self.barrier_epoch = 0

    def current(self, vreg):
        return self.version.get(vreg.id, 0)

    def bump(self, vreg):
        self.version[vreg.id] = self.current(vreg) + 1

    def handle(self, operand):
        """Resolve an operand to a canonical value handle: a Const or a
        (vreg, version) pair with copies chased."""
        if isinstance(operand, Const):
            return operand
        key = (operand.id, self.current(operand))
        seen = set()
        while key in self.copy_of and key not in seen:
            seen.add(key)
            target_vreg, target_version = self.copy_of[key]
            if self.current(target_vreg) != target_version:
                break
            operand = target_vreg
            key = (target_vreg.id, target_version)
        const = self.const_of.get(key)
        if const is not None:
            return const
        return (operand, key[1])

    def operand_for(self, handle, fallback):
        if isinstance(handle, Const):
            return handle
        vreg, version = handle
        if self.current(vreg) == version:
            return vreg
        return fallback


_ZERO_IDENTITY = {"iadd", "isub", "ior", "ixor", "ishl", "ishr"}
_ONE_IDENTITY = {"imul", "idiv"}


def _algebraic(instr, handles):
    """Return a replacement (op, srcs) for trivial identities, or None.

    Only exact (integer) identities are applied; float arithmetic is
    left untouched so compiled results match the reference interpreter
    bit for bit.
    """
    if len(handles) != 2:
        return None
    left, right = handles
    right_const = right.value if isinstance(right, Const) else None
    left_const = left.value if isinstance(left, Const) else None
    if instr.op in _ZERO_IDENTITY and right_const == 0:
        return ("imov", [instr.srcs[0]])
    if instr.op in _ONE_IDENTITY and right_const == 1:
        return ("imov", [instr.srcs[0]])
    if instr.op == "imul" and (right_const == 0 or left_const == 0):
        return ("imov", [Const(0)])
    if instr.op == "iadd" and left_const == 0:
        return ("imov", [instr.srcs[1]])
    if instr.op == "imul" and left_const == 1:
        return ("imov", [instr.srcs[1]])
    return None


def _normalize(handle):
    if isinstance(handle, Const):
        return ("c", handle.value, handle.type)
    vreg, version = handle
    return ("v", vreg.id, version)


def _expr_key(instr, handles):
    parts = [_normalize(h) for h in handles]
    if instr.spec.commutative:
        parts.sort()
    return (instr.op, tuple(parts))


def _fold(instr, handles):
    """Evaluate a pure instruction whose operands are all constants."""
    values = [h.value for h in handles]
    try:
        return Const(instr.spec.semantics(*values))
    except (ArithmeticError, ValueError):
        return None   # leave runtime-faulting expressions alone


def local_value_numbering(block, load_elimination=True):
    """Rewrite one block in place; returns the number of changes."""
    numbering = _Numbering()
    changes = 0
    new_instrs = []
    for instr in block.all_instrs():
        is_terminator = instr is block.terminator
        handles = []
        new_srcs = []
        for operand in instr.srcs:
            if is_vreg(operand):
                handle = numbering.handle(operand)
                replacement = numbering.operand_for(handle, operand)
                if isinstance(replacement, Const) \
                        and replacement.type != operand.type:
                    # Never change an operand's type (e.g. an int copy
                    # of a float): keep the register.
                    replacement = operand
                    handle = (operand, numbering.current(operand))
                if replacement is not operand:
                    changes += 1
                new_srcs.append(replacement)
                handles.append(handle)
            else:
                new_srcs.append(operand)
                handles.append(operand)
        instr.srcs = new_srcs
        if instr.fork_args:
            new_args = []
            for operand in instr.fork_args:
                if is_vreg(operand):
                    handle = numbering.handle(operand)
                    replacement = numbering.operand_for(handle, operand)
                    if isinstance(replacement, Const) \
                            and replacement.type != operand.type:
                        replacement = operand
                    if replacement is not operand:
                        changes += 1
                    new_args.append(replacement)
                else:
                    new_args.append(operand)
            instr.fork_args = new_args

        dest = instr.dest
        spec = instr.spec
        if spec.is_memory or spec.is_fork:
            # Redundant load elimination: a plain load of the same
            # symbol at the same index, with no intervening store to
            # that symbol, no synchronizing access, and no fork, reuses
            # the earlier register (the paper: "a significant fraction
            # of the memory operations have been replaced by register
            # operations").  Synchronizing accesses and forks act as
            # barriers.
            if instr.is_sync_memory or spec.is_fork:
                numbering.barrier_epoch += 1
                numbering.load_table.clear()
            elif spec.is_store:
                numbering.store_epoch[instr.sym] = \
                    numbering.store_epoch.get(instr.sym, 0) + 1
            elif spec.is_load and load_elimination:
                key = (instr.sym, _normalize(handles[0]),
                       numbering.store_epoch.get(instr.sym, 0),
                       numbering.barrier_epoch)
                previous = numbering.load_table.get(key)
                if previous is not None:
                    prev_vreg, prev_version = previous
                    if numbering.current(prev_vreg) == prev_version \
                            and prev_vreg.type == dest.type:
                        changes += 1
                        move_op = "imov" if dest.type == "i" else "fmov"
                        replacement = IRInstr(move_op, dest, [prev_vreg])
                        numbering.bump(dest)
                        numbering.copy_of[
                            (dest.id, numbering.current(dest))] = previous
                        new_instrs.append(replacement)
                        continue
                numbering.bump(dest)
                numbering.load_table[key] = (dest,
                                             numbering.current(dest))
                new_instrs.append(instr)
                continue
            elif spec.is_load:
                numbering.bump(dest)
                new_instrs.append(instr)
                continue
        if instr.is_pure and dest is not None:
            all_const = all(isinstance(h, Const) for h in handles)
            if instr.spec.is_move:
                # Record the copy/constant and keep the instruction;
                # DCE removes it if nothing ends up needing it.
                numbering.bump(dest)
                key = (dest.id, numbering.current(dest))
                handle = handles[0]
                if isinstance(handle, Const):
                    if handle.type == dest.type:
                        numbering.const_of[key] = handle
                else:
                    numbering.copy_of[key] = handle
                new_instrs.append(instr)
                continue
            if all_const:
                folded = _fold(instr, handles)
                if folded is not None and folded.type == dest.type:
                    changes += 1
                    replacement = IRInstr(
                        "imov" if dest.type == "i" else "fmov",
                        dest, [folded])
                    numbering.bump(dest)
                    numbering.const_of[(dest.id, numbering.current(dest))] \
                        = folded
                    new_instrs.append(replacement)
                    continue
            simplified = _algebraic(instr, handles)
            if simplified is not None:
                op, srcs = simplified
                changes += 1
                move_op = "imov" if dest.type == "i" else "fmov"
                replacement = IRInstr(move_op, dest, srcs)
                numbering.bump(dest)
                key = (dest.id, numbering.current(dest))
                src = srcs[0]
                if isinstance(src, Const):
                    if src.type == dest.type:
                        numbering.const_of[key] = src
                else:
                    numbering.copy_of[key] = (src, numbering.current(src))
                new_instrs.append(replacement)
                continue
            key = _expr_key(instr, handles)
            previous = numbering.expr_table.get(key)
            if previous is not None:
                prev_vreg, prev_version = previous
                if numbering.current(prev_vreg) == prev_version \
                        and prev_vreg.type == dest.type:
                    changes += 1
                    move_op = "imov" if dest.type == "i" else "fmov"
                    replacement = IRInstr(move_op, dest, [prev_vreg])
                    numbering.bump(dest)
                    numbering.copy_of[(dest.id, numbering.current(dest))] \
                        = (prev_vreg, prev_version)
                    new_instrs.append(replacement)
                    continue
            numbering.bump(dest)
            numbering.expr_table[key] = (dest, numbering.current(dest))
            new_instrs.append(instr)
            continue
        if dest is not None:
            numbering.bump(dest)
        if not is_terminator:
            new_instrs.append(instr)
    block.instrs = new_instrs
    return changes
