"""Compiler optimizations (paper Section 3): constant propagation,
common subexpression elimination, static evaluation of constant
expressions, and dead code elimination."""

from .lvn import local_value_numbering
from .dce import eliminate_dead_code
from .pipeline import optimize_thread

__all__ = ["local_value_numbering", "eliminate_dead_code",
           "optimize_thread"]
