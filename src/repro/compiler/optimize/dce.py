"""Dead code elimination.

Backward scan per block seeded with the globally live-out home
registers: pure instructions whose destination is never read afterwards
are removed.  Memory, branch, and fork operations always stay.
"""

from .. import liveness


def _eliminate_block(block, live_out_homes):
    live = set(live_out_homes)
    kept_reversed = []
    removed = 0
    if block.terminator is not None:
        for vreg in block.terminator.source_vregs():
            live.add(vreg.id)
    for instr in reversed(block.instrs):
        dest = instr.dest
        if instr.is_pure and dest is not None and dest.id not in live:
            removed += 1
            continue
        kept_reversed.append(instr)
        if dest is not None:
            live.discard(dest.id)
        for vreg in instr.source_vregs():
            live.add(vreg.id)
    block.instrs = list(reversed(kept_reversed))
    return removed


def eliminate_dead_code(thread_ir):
    """Remove dead pure instructions; returns removed count."""
    __, live_out = liveness.analyze(thread_ir)
    removed = 0
    for block in thread_ir.blocks:
        removed += _eliminate_block(block, live_out[block.name])
    return removed
