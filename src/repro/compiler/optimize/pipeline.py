"""Optimization pipeline: iterate value numbering (constant/copy
propagation, folding, CSE, redundant load elimination), global
single-definition constant propagation, and DCE to a bounded fixed
point — the paper compiler's optimization inventory."""

from ..options import CompilerOptions, DEFAULT_OPTIONS
from .dce import eliminate_dead_code
from .globalprop import propagate_global_constants
from .lvn import local_value_numbering

_MAX_ROUNDS = 8


def optimize_thread(thread_ir, options=True):
    """Optimize a thread IR in place; returns total change count.

    ``options`` may be a :class:`CompilerOptions` or a plain bool
    (True = defaults, False = no optimization).
    """
    if options is True:
        options = DEFAULT_OPTIONS
    elif options is False:
        options = CompilerOptions(optimize=False)
    if not options.optimize:
        return 0
    total = 0
    for __ in range(_MAX_ROUNDS):
        changes = 0
        for block in thread_ir.blocks:
            changes += local_value_numbering(
                block, load_elimination=options.load_elimination)
        if options.global_constants:
            changes += propagate_global_constants(thread_ir)
        changes += eliminate_dead_code(thread_ir)
        total += changes
        if changes == 0:
            break
    return total
