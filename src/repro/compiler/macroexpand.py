"""Macro expansion: constants, static unrolling, forall, inlining.

Mirrors the paper's compiler front end: procedures are implemented as
macro-expansions (``call`` sites are inlined with renamed locals), loops
are unrolled by hand via the ``unroll`` form (bounds must reduce to
compile-time constants), ``forall`` expands to one ``fork`` per index,
``for`` is sugar for ``let`` + ``while``, and named constants are
substituted and folded.
"""

from ..errors import CompileError
from ..isa.operations import opcode
from .astnodes import (Aref, Aset, BINOPS, BinOp, Call, ExprStmt, FLOAT,
                       For, Forall, Fork, If, IfExpr, INT, Let, Num,
                       PREDICATES, Seq, SetVar, Sync, UnOp, UNOPS, Unroll,
                       Var, While)

_INLINE_DEPTH_LIMIT = 64


def num_type(value):
    return FLOAT if isinstance(value, float) else INT


def fold_binop(op, left, right):
    """Fold a binary operator over two constants using the exact ISA
    semantics (so the compiler and the machine always agree)."""
    int_name, float_name = BINOPS[op]
    use_float = (num_type(left) is FLOAT or num_type(right) is FLOAT)
    if use_float and float_name is None:
        raise CompileError("operator %r is integer-only" % op)
    name = float_name if use_float else int_name
    try:
        return opcode(name).semantics(left, right)
    except ArithmeticError as exc:
        raise CompileError("constant %s folds to an error: %s" % (op, exc))


def fold_unop(op, value):
    if op == "float":
        return float(value)
    if op == "int":
        return int(value)
    int_name, float_name = UNOPS[op]
    name = float_name if num_type(value) is FLOAT else int_name
    if name is None and float_name is not None:
        # Mirror lowering: float-only operators widen integer operands.
        value = float(value)
        name = float_name
    if name is None:
        raise CompileError("operator %r unsupported for %s" % (op, value))
    return opcode(name).semantics(value)


class Expander:
    """Performs all macro-level rewrites over statements/expressions."""

    def __init__(self, kernels, consts):
        self.kernels = kernels
        self.consts = dict(consts)     # name -> numeric value
        self._gensym = 0

    def gensym(self, base):
        self._gensym += 1
        return "%s~%d" % (base, self._gensym)

    # -- expressions -----------------------------------------------------

    def expr(self, node, env):
        if isinstance(node, Num):
            return node
        if isinstance(node, Var):
            if node.name in env:
                replacement = env[node.name]
                return replacement if isinstance(replacement, Num) \
                    else Var(replacement)
            if node.name in self.consts:
                return Num(self.consts[node.name])
            return node
        if isinstance(node, BinOp):
            left = self.expr(node.left, env)
            right = self.expr(node.right, env)
            if isinstance(left, Num) and isinstance(right, Num):
                return Num(fold_binop(node.op, left.value, right.value))
            return BinOp(node.op, left, right)
        if isinstance(node, UnOp):
            operand = self.expr(node.operand, env)
            if isinstance(operand, Num):
                return Num(fold_unop(node.op, operand.value))
            return UnOp(node.op, operand)
        if isinstance(node, Aref):
            return Aref(node.array, self.expr(node.index, env), node.flavor)
        if isinstance(node, IfExpr):
            cond = self.expr(node.cond, env)
            if isinstance(cond, Num):
                chosen = node.then if cond.value else node.els
                return self.expr(chosen, env)
            return IfExpr(cond, self.expr(node.then, env),
                          self.expr(node.els, env))
        if isinstance(node, Call):
            raise CompileError("(call ...) is a statement; kernels do not "
                               "return values")
        raise CompileError("unexpected expression node %r" % node)

    def static_value(self, node, env, what):
        folded = self.expr(node, env)
        if not isinstance(folded, Num):
            raise CompileError("%s must be a compile-time constant" % what)
        return folded.value

    # -- statements --------------------------------------------------------

    def stmt(self, node, env, depth=0):
        if depth > _INLINE_DEPTH_LIMIT:
            raise CompileError("inline expansion too deep (recursive "
                               "kernel call?)")
        if isinstance(node, Seq):
            return Seq([self.stmt(s, env, depth) for s in node.body])
        if isinstance(node, Let):
            return self._expand_let(node, env, depth)
        if isinstance(node, SetVar):
            target = env.get(node.name, node.name)
            if isinstance(target, Num):
                raise CompileError("cannot set! unrolled loop variable %r"
                                   % node.name)
            return SetVar(target, self.expr(node.expr, env))
        if isinstance(node, Aset):
            return Aset(node.array, self.expr(node.index, env),
                        self.expr(node.value, env), node.flavor)
        if isinstance(node, If):
            cond = self.expr(node.cond, env)
            then = self.stmt(node.then, env, depth)
            els = self.stmt(node.els, env, depth) if node.els else None
            if isinstance(cond, Num):
                if cond.value:
                    return then
                return els if els is not None else Seq([])
            return If(cond, then, els)
        if isinstance(node, While):
            return While(self.expr(node.cond, env),
                         self.stmt(node.body, env, depth))
        if isinstance(node, For):
            return self._expand_for(node, env, depth)
        if isinstance(node, Unroll):
            return self._expand_unroll(node, env, depth)
        if isinstance(node, Forall):
            return self._expand_forall(node, env, depth)
        if isinstance(node, Fork):
            self._check_kernel(node.kernel, len(node.args))
            return Fork(node.kernel,
                        [self.expr(a, env) for a in node.args],
                        cluster=node.cluster, variant=node.variant)
        if isinstance(node, Sync):
            return Sync(self.expr(node.expr, env))
        if isinstance(node, ExprStmt):
            if isinstance(node.expr, Call):
                return self._inline_call(node.expr, env, depth)
            return ExprStmt(self.expr(node.expr, env))
        raise CompileError("unexpected statement node %r" % node)

    def _expand_let(self, node, env, depth):
        new_env = dict(env)
        bindings = []
        for name, expr in node.bindings:
            fresh = self.gensym(name) if depth > 0 else name
            bindings.append((fresh, self.expr(expr, new_env)))
            new_env[name] = fresh
        return Let(bindings, self.stmt(node.body, new_env, depth))

    def _expand_for(self, node, env, depth):
        """Rewrite ``for`` into ``let`` + ``while`` (C semantics)."""
        step = node.step if node.step is not None else Num(1)
        var = self.gensym(node.var) if depth > 0 else node.var
        limit = self.gensym(node.var + "-limit")
        body_env = dict(env)
        body_env[node.var] = var
        body = self.stmt(node.body, body_env, depth)
        loop = While(BinOp("<", Var(var), Var(limit)),
                     Seq([body,
                          SetVar(var, BinOp("+", Var(var),
                                            self.expr(step, env)))]))
        return Let([(var, self.expr(node.lo, env)),
                    (limit, self.expr(node.hi, env))], Seq([loop]))

    def _expand_unroll(self, node, env, depth):
        lo = self.static_value(node.lo, env, "unroll lower bound")
        hi = self.static_value(node.hi, env, "unroll upper bound")
        step = 1 if node.step is None else \
            self.static_value(node.step, env, "unroll step")
        if step == 0:
            raise CompileError("unroll step must be nonzero")
        iterations = []
        value = lo
        while (value < hi) if step > 0 else (value > hi):
            body_env = dict(env)
            body_env[node.var] = Num(value)
            iterations.append(self.stmt(node.body, body_env, depth))
            value += step
        return Seq(iterations)

    def _expand_forall(self, node, env, depth):
        lo = self.static_value(node.lo, env, "forall lower bound")
        hi = self.static_value(node.hi, env, "forall upper bound")
        forks = []
        for value in range(lo, hi):
            body_env = dict(env)
            body_env[node.var] = Num(value)
            forks.append(self.stmt(node.fork, body_env, depth))
        return Seq(forks)

    def _check_kernel(self, name, n_args):
        kernel = self.kernels.get(name)
        if kernel is None:
            raise CompileError("unknown kernel %r" % name)
        if len(kernel.params) != n_args:
            raise CompileError("kernel %r takes %d arguments, got %d"
                               % (name, len(kernel.params), n_args))

    def _inline_call(self, call, env, depth):
        """Macro-expand a procedure call: bind renamed parameters with a
        let and splice the (renamed) body in."""
        self._check_kernel(call.name, len(call.args))
        kernel = self.kernels[call.name]
        bindings = []
        body_env = dict(env)
        for (param, ptype), arg in zip(kernel.params, call.args):
            fresh = self.gensym(param)
            value = self.expr(arg, env)
            if ptype is FLOAT:
                value = Num(float(value.value)) if isinstance(value, Num) \
                    else UnOp("float", value)
            bindings.append((fresh, value))
            body_env[param] = fresh
        # Locals of the callee are renamed by recursing at depth+1.
        body = self.stmt(kernel.body, body_env, depth + 1)
        return Let(bindings, Seq([body]))


def expand_thread(body, kernels, consts):
    """Expand one thread body (main or a kernel) to core statements:
    Seq/Let/SetVar/Aset/If/While/Fork/ExprStmt only."""
    expander = Expander(kernels, consts)
    return expander.stmt(body, {})


def expand_kernel(kernel, kernels, consts):
    """Expand a kernel body, keeping its parameter names intact."""
    expander = Expander(kernels, consts)
    env = {param: param for param in kernel.params}
    return expander.stmt(kernel.body, env)


def resolve_consts(const_decls):
    """Evaluate (const ...) declarations in order."""
    consts = {}
    expander = Expander({}, consts)
    for decl in const_decls:
        folded = expander.expr(decl.value, {})
        if not isinstance(folded, Num):
            raise CompileError("const %r is not a compile-time constant"
                               % decl.name)
        consts[decl.name] = folded.value
        expander.consts[decl.name] = folded.value
    return consts
