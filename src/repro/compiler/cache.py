"""Persistent on-disk compile cache.

Scheduling a thread is the expensive half of a sweep: the experiment
grid (Figures 5-8, the resilience table, ``repro bench``) compiles the
same (source, mode, machine-signature) triple over and over — across
processes, and across invocations.  This module memoizes
:class:`~repro.compiler.driver.CompiledProgram` objects on disk, keyed
by a digest of

* the source text (hashed, not trusted by name),
* the compilation mode,
* the machine's :meth:`~repro.machine.config.MachineConfig.schedule_signature`
  (everything the scheduler reads from the configuration),
* the :class:`~repro.compiler.options.CompilerOptions` in effect, and
* :data:`CACHE_FORMAT`, a version stamp bumped whenever the compiler's
  output format changes.

Entries live under ``~/.cache/repro/compile/`` (override with the
``REPRO_CACHE_DIR`` environment variable; disable caching entirely
with ``REPRO_NO_CACHE=1``).  Writes are atomic (temp file +
``os.replace``), so concurrent sweep workers can share one cache
directory; corrupt or stale entries are treated as misses and
re-compiled.
"""

import hashlib
import os
import pickle
import tempfile

#: Bump when compiled-program layout or codegen output changes.
CACHE_FORMAT = 1


def default_cache_dir():
    """The cache root: ``$REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return os.path.join(root, "compile")
    return os.path.join(os.path.expanduser("~"), ".cache", "repro",
                        "compile")


def cache_disabled_by_env():
    return bool(os.environ.get("REPRO_NO_CACHE"))


def compile_key(source, mode, config, options):
    """Digest naming one compilation, or None when the input is not
    cacheable (already-parsed ASTs have no stable text to hash)."""
    if not isinstance(source, str):
        return None
    payload = "\x1f".join([
        "format=%d" % CACHE_FORMAT,
        "mode=%s" % mode,
        "schedule=%r" % (config.schedule_signature(),),
        "options=%r" % (options,),
        source,
    ])
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class CompileCache:
    """One cache directory full of pickled CompiledProgram entries."""

    def __init__(self, root=None):
        self.root = root or default_cache_dir()
        self.hits = 0
        self.misses = 0

    def _path(self, key):
        return os.path.join(self.root, key + ".pkl")

    def get(self, key):
        """The cached CompiledProgram, or None.  Unreadable entries
        (corrupt file, stale pickle format) count as misses and are
        removed best-effort."""
        if key is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                compiled = pickle.load(handle)
            self.hits += 1
            return compiled
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            self.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def put(self, key, compiled):
        """Store one entry atomically; IO failures are silent (the
        cache is an accelerator, never a correctness dependency)."""
        if key is None:
            return
        try:
            os.makedirs(self.root, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(compiled, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            pass                    # includes unpicklable payloads

    def clear(self):
        """Remove every entry; returns the number removed."""
        removed = 0
        for __, __, path in self._entries():
            try:
                os.remove(path)
                removed += 1
            except OSError:
                pass
        return removed

    def _entries(self):
        """(mtime, size, path) for every on-disk entry, oldest first.
        Entries that vanish mid-scan (concurrent prune/clear) are
        skipped."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        rows = []
        for name in names:
            if not name.endswith(".pkl"):
                continue
            path = os.path.join(self.root, name)
            try:
                info = os.stat(path)
            except OSError:
                continue
            rows.append((info.st_mtime, info.st_size, path))
        rows.sort()
        return rows

    def stats(self):
        """On-disk footprint plus this process's hit/miss counters:
        ``{"root", "entries", "total_bytes", "hits", "misses"}``."""
        entries = self._entries()
        return {"root": self.root,
                "entries": len(entries),
                "total_bytes": sum(size for __, size, __ in entries),
                "hits": self.hits,
                "misses": self.misses}

    def prune(self, max_bytes):
        """Evict oldest-mtime entries until the cache fits in
        ``max_bytes``; returns ``(removed_entries, freed_bytes)``.
        The cache otherwise grows without bound — every distinct
        (source, mode, schedule-signature) triple ever compiled."""
        entries = self._entries()
        total = sum(size for __, size, __ in entries)
        removed, freed = 0, 0
        for __, size, path in entries:
            if total - freed <= max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed


def default_cache():
    """The process-wide cache, or None when disabled via environment."""
    if cache_disabled_by_env():
        return None
    return CompileCache()
