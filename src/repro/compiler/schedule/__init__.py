"""Static scheduling: critical-path list scheduling of each basic block
onto the configured clusters, with cluster placement, inter-cluster move
insertion, and dual-destination result forwarding."""

from .modes import MODES, ThreadScheduleSpec, main_spec, thread_spec
from .ddg import DependenceGraph, build_ddg
from .scheduler import ScheduledThread, ThreadScheduler

__all__ = ["MODES", "ThreadScheduleSpec", "main_spec", "thread_spec",
           "DependenceGraph", "build_ddg", "ScheduledThread",
           "ThreadScheduler"]
