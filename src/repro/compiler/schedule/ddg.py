"""Per-block data dependence graphs.

Nodes are the block's instructions (terminator included, last).  Edge
kinds:

* ``true``   — definition to use.  The scheduler satisfies these via
  value locations (which already include the producer's latency), but
  the edge still orders list-scheduling.
* ``anti``   — use to the *next* redefinition of the same register.
  Operations in one instruction word may issue in any order (only rows
  are ordered), so an anti-dependent pair must sit in different rows.
* ``output`` — redefinition after definition; same row rule.
* ``mem``    — memory ordering: stores against later loads/stores of
  the same symbol that may alias; synchronizing accesses and forks are
  full barriers against all memory operations.
* ``ctrl``   — everything before the block terminator.

All non-true edges carry delay 1 (strictly later row); true edges carry
the producer's latency.

Alias analysis is *affine*: each memory index is reduced to a linear
form c0 + sum(ci * leaf) over opaque leaves (block-entry registers and
non-affine definitions, versioned by defining instruction).  Two
accesses whose forms share the same leaves but differ in the constant
provably touch different words — this is what lets hand-unrolled loops
(the paper unrolls all inner loops by hand) schedule their independent
iterations in parallel.  Any structural difference falls back to
"may alias".
"""

from dataclasses import dataclass

from ..ir import Const, is_vreg

_AFFINE_OPS = ("iadd", "isub", "imul", "ineg", "imov")


@dataclass
class Edge:
    pred: int
    succ: int
    delay: int
    kind: str


class DependenceGraph:
    """Dependences over one block's instruction list."""

    def __init__(self, instrs):
        self.instrs = instrs
        self.preds = [[] for __ in instrs]
        self.succs = [[] for __ in instrs]
        self.producer = [dict() for __ in instrs]  # node -> {vreg id: def}

    def add_edge(self, pred, succ, delay, kind):
        if pred == succ:
            return
        edge = Edge(pred, succ, delay, kind)
        self.preds[succ].append(edge)
        self.succs[pred].append(edge)

    def priorities(self, weight_fn):
        """Critical-path-to-exit priority per node (longest path)."""
        n = len(self.instrs)
        priority = [0] * n
        for index in range(n - 1, -1, -1):
            best = 0
            for edge in self.succs[index]:
                best = max(best, edge.delay + priority[edge.succ])
            priority[index] = weight_fn(self.instrs[index]) + best
        return priority


class _AffineForms:
    """Linear forms for every in-block definition, built sequentially so
    each form captures the operand versions visible at its definition."""

    def __init__(self):
        self.by_node = {}            # def node -> (coeffs dict, const)

    def operand_form(self, operand, last_def):
        if isinstance(operand, Const):
            if isinstance(operand.value, int):
                return ({}, operand.value)
            return None
        node = last_def.get(operand.id)
        if node is None:
            return ({("entry", operand.id): 1}, 0)
        return self.by_node.get(node)

    def record(self, node, instr, last_def):
        if instr.dest is None:
            return
        form = self._compute(node, instr, last_def)
        if form is None:
            form = ({("node", node): 1}, 0)
        self.by_node[node] = form

    def _compute(self, node, instr, last_def):
        if instr.op not in _AFFINE_OPS:
            return None
        forms = [self.operand_form(s, last_def) for s in instr.srcs]
        if any(f is None for f in forms):
            return None
        if instr.op in ("imov",):
            return forms[0]
        if instr.op == "ineg":
            coeffs, const = forms[0]
            return ({k: -v for k, v in coeffs.items()}, -const)
        if instr.op == "iadd" or instr.op == "isub":
            sign = 1 if instr.op == "iadd" else -1
            coeffs = dict(forms[0][0])
            for key, value in forms[1][0].items():
                coeffs[key] = coeffs.get(key, 0) + sign * value
                if coeffs[key] == 0:
                    del coeffs[key]
            return (coeffs, forms[0][1] + sign * forms[1][1])
        if instr.op == "imul":
            for scale_form, other in ((forms[0], forms[1]),
                                      (forms[1], forms[0])):
                if not scale_form[0]:           # pure constant
                    scale = scale_form[1]
                    coeffs = {k: v * scale for k, v in other[0].items()
                              if v * scale != 0}
                    return (coeffs, other[1] * scale)
            return None
        return None


def _forms_may_alias(form_a, form_b):
    """Conservative alias test on two affine index forms."""
    if form_a is None or form_b is None:
        return True
    coeffs_a, const_a = form_a
    coeffs_b, const_b = form_b
    if coeffs_a == coeffs_b:
        return const_a == const_b
    return True


def build_ddg(block, latency_fn, affine_alias=True):
    """Build the dependence graph for a block.

    ``latency_fn(instr)`` gives the producer-to-consumer delay for true
    dependences (the executing unit's pipeline latency; loads add the
    memory hit latency).  ``affine_alias=False`` disables index
    disambiguation: every same-symbol pair involving a store aliases.
    """
    instrs = block.all_instrs()
    graph = DependenceGraph(instrs)
    affine = _AffineForms()
    last_def = {}
    uses_since_def = {}
    barrier = None
    mem_since_barrier = []           # (node, is_store, sym, index form)
    terminator_index = len(instrs) - 1 if block.terminator is not None \
        else None

    for index, instr in enumerate(instrs):
        for vreg in instr.source_vregs():
            producer = last_def.get(vreg.id)
            if producer is not None:
                graph.producer[index][vreg.id] = producer
                graph.add_edge(producer, index,
                               latency_fn(instrs[producer]), "true")
            uses_since_def.setdefault(vreg.id, []).append(index)
        spec = instr.spec
        # Memory and fork ordering (uses pre-update last_def so index
        # forms reference operands as they stand *before* this instr).
        if spec.is_fork or instr.is_sync_memory:
            if barrier is not None:
                graph.add_edge(barrier, index, 1, "mem")
            for node, __, __, __ in mem_since_barrier:
                graph.add_edge(node, index, 1, "mem")
            barrier = index
            mem_since_barrier = []
        elif spec.is_memory:
            if barrier is not None:
                graph.add_edge(barrier, index, 1, "mem")
            index_operand = instr.srcs[0] if spec.is_load else instr.srcs[1]
            form = affine.operand_form(index_operand, last_def) \
                if affine_alias else None
            for node, node_is_store, node_sym, node_form \
                    in mem_since_barrier:
                if not (spec.is_store or node_is_store):
                    continue
                if node_sym != instr.sym:
                    continue
                if _forms_may_alias(form, node_form):
                    graph.add_edge(node, index, 1, "mem")
            mem_since_barrier.append((index, spec.is_store, instr.sym,
                                      form))
        # Anti and output dependences, then the new definition.
        dest = instr.dest
        if dest is not None:
            for user in uses_since_def.get(dest.id, ()):
                graph.add_edge(user, index, 1, "anti")
            previous = last_def.get(dest.id)
            if previous is not None:
                graph.add_edge(previous, index, 1, "output")
            affine.record(index, instr, last_def)
            last_def[dest.id] = index
            uses_since_def[dest.id] = []
        if terminator_index is not None and index != terminator_index:
            graph.add_edge(index, terminator_index, 0, "ctrl")
    return graph
