"""Critical-path list scheduling onto clusters.

Per basic block (the paper's compiler does not move code across basic
block boundaries), operations are placed most-critical-first onto
(cluster, unit, row) slots:

* a unit reads sources only from its own cluster's register file, so
  when an operand lives elsewhere the scheduler either adds a second
  destination to the producing operation (operations may name up to two
  simultaneous register destinations, possibly in different clusters)
  or inserts an explicit register move executed by an ALU in a cluster
  that holds the value;
* operations are placed to minimize communication between function
  units (candidate clusters are scored by resulting row and fixup
  count, preferring the thread's cluster ordering);
* rows become wide instruction words; dependent operations always sit
  in later rows than their producers, so runtime presence bits only
  ever *stretch* the schedule, never reorder it;
* at most one branch-unit operation per row (the compiler allows each
  thread at most one branch operation per cycle);
* the block terminator is placed in the last row.
"""

from dataclasses import dataclass, field

from ...errors import CompileError
from ...isa.operations import UnitClass
from ..ir import Const, is_vreg
from ..options import DEFAULT_OPTIONS
from .ddg import build_ddg


@dataclass(frozen=True)
class PlacedReg:
    """A virtual register resolved to a cluster's register file."""

    vreg: object
    cluster: int

    def __str__(self):
        return "%s@c%d" % (self.vreg, self.cluster)


@dataclass
class SchedEntry:
    """One operation placed at (cluster, unit, row)."""

    op: str
    row: int
    cluster: int
    kind: UnitClass
    unit_index: int
    dests: list = field(default_factory=list)    # [(vreg, cluster)]
    srcs: list = field(default_factory=list)     # PlacedReg | Const
    sym: str = None
    target: str = None
    fork_args: list = None
    avail: int = 0          # row at which the result becomes readable


@dataclass
class ScheduledBlock:
    name: str
    rows: dict                                   # row -> [SchedEntry]

    def max_row(self):
        return max(self.rows) if self.rows else -1

    def entries(self):
        for row in sorted(self.rows):
            for entry in self.rows[row]:
                yield entry

    def n_words(self):
        return len(self.rows)


@dataclass
class ScheduledThread:
    name: str
    blocks: list
    param_homes: list        # [(vreg, cluster)] in parameter order
    home_loc: dict

    def n_words(self):
        return sum(block.n_words() for block in self.blocks)


class ThreadScheduler:
    """Schedules one thread's IR for one cluster assignment.

    Scheduling runs in two passes: the first places operations with
    lazily assigned home-register clusters and records which clusters
    actually read each home; the second pins every home to its
    majority-use cluster and re-schedules, minimizing the inter-cluster
    moves that loop-carried variables would otherwise pay on every
    iteration (the paper: operations are placed to minimize
    communication between function units).
    """

    def __init__(self, thread_ir, config, spec, live_in, home_plan=None,
                 options=None):
        self.ir = thread_ir
        self.config = config
        self.spec = spec
        self.options = options or DEFAULT_OPTIONS
        self.allowed = list(spec.allowed_clusters)
        self.live_in = live_in
        self._home_plan = home_plan
        self.alu_allowed = [c for c in self.allowed
                            if config.clusters[c].has_alu]
        if not self.alu_allowed:
            raise CompileError(
                "thread %r is restricted to clusters %r, none of which "
                "has an ALU" % (thread_ir.name, self.allowed))
        self.bru_clusters = config.branch_clusters() + [
            c for c in self.allowed
            if config.clusters[c].has(UnitClass.BRU)
            and c not in config.branch_clusters()]
        if not self.bru_clusters:
            raise CompileError("no branch unit available")
        self.home_loc = dict(home_plan or {})
        self._home_rr = 0
        for position, (__, vreg) in enumerate(thread_ir.params):
            self.home_loc.setdefault(vreg.id, self.alu_allowed[
                position % len(self.alu_allowed)])
        self._temp_rr = 0
        self._use_votes = {}

    # -- small helpers ---------------------------------------------------

    def _home_of(self, vreg_id, prefer=None):
        cluster = self.home_loc.get(vreg_id)
        if cluster is None:
            if prefer is not None and prefer in self.alu_allowed:
                cluster = prefer
            else:
                cluster = self.alu_allowed[self._home_rr
                                           % len(self.alu_allowed)]
                self._home_rr += 1
            self.home_loc[vreg_id] = cluster
        return cluster

    def _units(self, cluster, kind):
        return self.config.units_of_kind(kind, cluster)

    def _true_latency(self, instr):
        """Producer-to-consumer delay used for dependence estimates."""
        kind = instr.spec.unit
        candidates = [c for c in self.allowed
                      if self.config.clusters[c].has(kind)]
        if not candidates:
            candidates = [c for c in range(self.config.n_clusters)
                          if self.config.clusters[c].has(kind)]
        if not candidates:
            raise CompileError("machine has no %s unit for %s"
                               % (kind, instr))
        latency = min(min(u.latency for u in self._units(c, kind))
                      for c in candidates)
        if instr.spec.is_load:
            latency += self.config.memory.hit_latency - 1
        return latency

    def _find_slot(self, cluster, kind, min_row, mark=False, control=False):
        """Earliest (row, unit index, latency) for a unit of ``kind`` in
        ``cluster`` at or after ``min_row``; None if the cluster has no
        such unit."""
        units = self._units(cluster, kind)
        if not units:
            return None
        row = max(min_row, 0)
        while True:
            if control and row in self._control_rows:
                row += 1
                continue
            for index, slot in enumerate(units):
                occupied = self._busy.setdefault((cluster, kind, index),
                                                 set())
                if row not in occupied:
                    if mark:
                        occupied.add(row)
                        if control:
                            self._control_rows.add(row)
                    return row, index, slot.latency
            row += 1

    # -- operand placement -------------------------------------------------

    def _locations(self, vreg):
        locations = self._loc.get(vreg.id)
        if locations is None:
            home = self._home_of(vreg.id)
            locations = self._loc[vreg.id] = {home: 0}
        return locations

    def _move_options(self, vreg, locations):
        """Clusters that hold the value and can execute a register move
        (have an IU or FPU) within the thread's allowance."""
        return [c for c in locations if c in self.alu_allowed]

    def _operand_avail(self, vreg, cluster, producer_entry, mutate):
        """Row at which ``vreg`` is readable in ``cluster``, adding a
        second producer destination or a move when needed."""
        locations = self._locations(vreg)
        avail = locations.get(cluster)
        if avail is not None:
            return avail
        option_extra = None
        if self.options.dual_destinations and producer_entry is not None \
                and len(producer_entry.dests) < 2:
            option_extra = producer_entry.avail
        option_move = None
        move_from = None
        for source in self._move_options(vreg, locations):
            kind = self._move_kind(source, vreg)
            slot = self._find_slot(source, kind, locations[source])
            if slot is None:
                continue
            row, __, latency = slot
            candidate = row + latency
            if option_move is None or candidate < option_move:
                option_move = candidate
                move_from = source
        if option_extra is None and option_move is None:
            raise CompileError(
                "thread %r: value %s cannot reach cluster %d (no free "
                "destination and no movable copy)"
                % (self.ir.name, vreg, cluster))
        use_extra = option_extra is not None and (
            option_move is None or option_extra <= option_move)
        if not mutate:
            return option_extra if use_extra else option_move
        if use_extra:
            producer_entry.dests.append((vreg, cluster))
            locations[cluster] = option_extra
            return option_extra
        kind = self._move_kind(move_from, vreg)
        row, index, latency = self._find_slot(move_from, kind,
                                              locations[move_from],
                                              mark=True)
        move_op = "imov" if kind is UnitClass.IU else "fmov"
        entry = SchedEntry(move_op, row, move_from, kind, index,
                           dests=[(vreg, cluster)],
                           srcs=[PlacedReg(vreg, move_from)],
                           avail=row + latency)
        self._rows.setdefault(row, []).append(entry)
        self._max_row = max(self._max_row, row)
        self._moves_inserted += 1
        locations[cluster] = row + latency
        return row + latency

    def _move_kind(self, cluster, vreg):
        spec = self.config.clusters[cluster]
        preferred = UnitClass.IU if vreg.type == "i" else UnitClass.FPU
        if spec.has(preferred):
            return preferred
        return UnitClass.FPU if preferred is UnitClass.IU else UnitClass.IU

    # -- instruction placement ------------------------------------------------

    def _candidate_clusters(self, instr):
        kind = instr.spec.unit
        if kind is UnitClass.BRU:
            return list(self.bru_clusters)
        candidates = [c for c in self.allowed
                      if self.config.clusters[c].has(kind)]
        if not candidates:
            raise CompileError(
                "thread %r: no %s unit among allowed clusters %r for %s"
                % (self.ir.name, kind, self.allowed, instr))
        return candidates

    def _base_est(self, node, graph, entries):
        est = 0
        for edge in graph.preds[node]:
            if edge.kind == "true":
                continue
            est = max(est, entries[edge.pred].row + edge.delay)
        return est

    def _estimate(self, instr, node, cluster, graph, entries, base_est):
        est = base_est
        fixups = 0
        for operand in instr.srcs:
            if not is_vreg(operand):
                continue
            producer_node = graph.producer[node].get(operand.id)
            producer_entry = entries.get(producer_node) \
                if producer_node is not None else None
            locations = self._locations(operand)
            if cluster in locations:
                est = max(est, locations[cluster])
            else:
                est = max(est, self._operand_avail(operand, cluster,
                                                   producer_entry,
                                                   mutate=False))
                fixups += 1
        return est, fixups

    def _commit(self, instr, node, cluster, graph, entries, base_est,
                min_row=0):
        est = base_est
        placed_srcs = []
        for operand in instr.srcs:
            if not is_vreg(operand):
                placed_srcs.append(operand)
                continue
            producer_node = graph.producer[node].get(operand.id)
            producer_entry = entries.get(producer_node) \
                if producer_node is not None else None
            est = max(est, self._operand_avail(operand, cluster,
                                               producer_entry,
                                               mutate=True))
            placed_srcs.append(PlacedReg(operand, cluster))
            if operand.is_home and cluster in self.alu_allowed:
                votes = self._use_votes.setdefault(operand.id, {})
                votes[cluster] = votes.get(cluster, 0) + 1
        placed_args = None
        if instr.fork_args is not None:
            placed_args = []
            for operand in instr.fork_args:
                if not is_vreg(operand):
                    placed_args.append(operand)
                    continue
                locations = self._locations(operand)
                source, avail = min(locations.items(), key=lambda kv: kv[1])
                est = max(est, avail)
                placed_args.append(PlacedReg(operand, source))
        kind = instr.spec.unit
        is_control = kind is UnitClass.BRU
        row, index, latency = self._find_slot(cluster, kind,
                                              max(est, min_row),
                                              mark=True,
                                              control=is_control)
        avail = row + latency
        if instr.spec.is_load:
            avail += self.config.memory.hit_latency - 1
        entry = SchedEntry(instr.op, row, cluster, kind, index,
                           srcs=placed_srcs, sym=instr.sym,
                           target=instr.target, fork_args=placed_args,
                           avail=avail)
        if instr.dest is not None:
            dest = instr.dest
            if dest.is_home:
                dest_cluster = self._home_of(dest.id, prefer=cluster)
            elif cluster in self.alu_allowed:
                dest_cluster = cluster
            else:
                dest_cluster = self.alu_allowed[self._temp_rr
                                                % len(self.alu_allowed)]
                self._temp_rr += 1
            entry.dests = [(dest, dest_cluster)]
            # A redefinition invalidates every tracked copy.
            self._loc[dest.id] = {dest_cluster: avail}
        self._rows.setdefault(row, []).append(entry)
        self._max_row = max(self._max_row, row)
        entries[node] = entry
        return entry

    def _place(self, instr, node, graph, entries, is_terminator):
        base_est = self._base_est(node, graph, entries)
        candidates = self._candidate_clusters(instr)
        best = None
        for preference, cluster in enumerate(candidates):
            est, fixups = self._estimate(instr, node, cluster, graph,
                                         entries, base_est)
            slot = self._find_slot(cluster, instr.spec.unit, est,
                                   mark=False,
                                   control=instr.spec.unit is UnitClass.BRU)
            if slot is None:
                continue
            row = slot[0]
            score = (row, fixups, preference)
            if best is None or score < best[0]:
                best = (score, cluster)
        if best is None:
            raise CompileError("thread %r: nowhere to place %s"
                               % (self.ir.name, instr))
        min_row = self._max_row if is_terminator else 0
        self._commit(instr, node, best[1], graph, entries, base_est,
                     min_row=min_row)

    # -- per-block driver ---------------------------------------------------

    def _schedule_block(self, block):
        graph = build_ddg(block, self._true_latency,
                          affine_alias=self.options.affine_alias)
        instrs = graph.instrs
        priority = graph.priorities(self._true_latency)
        self._loc = {}
        for home_id in self.live_in.get(block.name, ()):
            home = self._home_of(home_id)
            self._loc[home_id] = {home: 0}
        self._busy = {}
        self._control_rows = set()
        self._rows = {}
        self._max_row = -1
        entries = {}
        remaining = [len(graph.preds[i]) for i in range(len(instrs))]
        ready = [i for i in range(len(instrs)) if remaining[i] == 0]
        scheduled = 0
        while ready:
            ready.sort(key=lambda i: (-priority[i], i))
            node = ready.pop(0)
            instr = instrs[node]
            is_terminator = (block.terminator is not None
                             and node == len(instrs) - 1)
            self._place(instr, node, graph, entries, is_terminator)
            scheduled += 1
            for edge in graph.succs[node]:
                remaining[edge.succ] -= 1
                if remaining[edge.succ] == 0:
                    ready.append(edge.succ)
        if scheduled != len(instrs):
            raise CompileError("dependence cycle while scheduling block %r"
                               % block.name)
        return ScheduledBlock(block.name, self._rows)

    def _run_all(self):
        self._moves_inserted = 0
        blocks = [self._schedule_block(block) for block in self.ir.blocks]
        param_homes = [(vreg, self.home_loc[vreg.id])
                       for __, vreg in self.ir.params]
        return ScheduledThread(self.ir.name, blocks, param_homes,
                               dict(self.home_loc))

    def _revised_home_plan(self):
        """Pin each home register to the cluster that read it most."""
        plan = dict(self.home_loc)
        for home_id, votes in self._use_votes.items():
            best = max(sorted(votes), key=lambda c: votes[c])
            plan[home_id] = best
        return plan

    def schedule(self):
        first = self._run_all()
        if self._home_plan is not None or not self.options.two_pass_homes:
            return first
        plan = self._revised_home_plan()
        if plan == self.home_loc:
            return first
        second = ThreadScheduler(self.ir, self.config, self.spec,
                                 self.live_in, home_plan=plan,
                                 options=self.options)
        return second._run_all()
