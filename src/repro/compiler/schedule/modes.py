"""Machine modes (paper Section 3, "Simulation Modes").

Code can be compiled in two ways depending on the mode flag: ``single``
(each thread's code runs on the function units of a single cluster) and
``unrestricted`` (each thread may use as many function units as it
needs).  The five simulation modes map onto those:

==========  ========== ==============================================
mode        threading  cluster restriction
==========  ========== ==============================================
seq         single     one cluster
sts         single     unrestricted (VLIW-like)
ideal       single     unrestricted, source fully hand-unrolled
tpe         threaded   each thread pinned to one cluster
coupled     threaded   unrestricted, rotated per-thread cluster order
==========  ========== ==============================================

The compiler assigns an ordered list of clusters to each thread; using
different orderings for different threads is a simple form of load
balancing (the paper's words).  Branch clusters are usable by any
thread in every mode.
"""

from dataclasses import dataclass

from ...errors import CompileError

MODES = ("seq", "sts", "ideal", "tpe", "coupled")

#: Modes whose source programs must be single threaded.
SINGLE_THREAD_MODES = ("seq", "sts", "ideal")


@dataclass(frozen=True)
class ThreadScheduleSpec:
    """Cluster assignment for one compiled thread."""

    allowed_clusters: tuple      # ordered arithmetic-cluster preference

    def __post_init__(self):
        if not self.allowed_clusters:
            raise CompileError("thread has no clusters to run on")


def _rotate(sequence, start):
    start %= len(sequence)
    return tuple(sequence[start:]) + tuple(sequence[:start])


def main_spec(mode, config):
    """Cluster assignment for the main thread."""
    arith = config.arithmetic_clusters()
    if mode not in MODES:
        raise CompileError("unknown mode %r (one of %s)"
                           % (mode, ", ".join(MODES)))
    if mode in ("seq", "tpe"):
        return ThreadScheduleSpec((arith[0],))
    return ThreadScheduleSpec(tuple(arith))


def thread_spec(mode, config, placement):
    """Cluster assignment for a forked thread.

    ``placement`` is the cluster pin (TPE) or the rotation offset
    (coupled), chosen per fork site by the driver.
    """
    arith = config.arithmetic_clusters()
    if mode == "tpe":
        if placement not in arith:
            raise CompileError("TPE thread pinned to cluster %r, which is "
                               "not an arithmetic cluster" % placement)
        return ThreadScheduleSpec((placement,))
    if mode == "coupled":
        return ThreadScheduleSpec(_rotate(arith, placement))
    raise CompileError("mode %r does not fork threads" % mode)
