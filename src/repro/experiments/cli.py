"""Command line entry point: ``python -m repro.experiments <target>``.

Targets: table2, figure4, figure5, table3, figure6, figure7, figure8,
all.  Each prints the regenerated artifact next to the paper's
published values.  The extra ``resilience`` target (not part of
``all``) sweeps performance under injected unit faults.
"""

import argparse
import sys
import time

from . import (figure5, figure6, figure7, figure8, resilience, table2,
               table3)
from .runner import Harness

TARGETS = ("table2", "figure4", "figure5", "table3", "figure6",
           "figure7", "figure8", "resilience", "all")


def _emit(out, text):
    out.write(text + "\n\n")
    out.flush()


def main(argv=None, out=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    parser.add_argument("target", choices=TARGETS)
    parser.add_argument("--seed", type=int, default=1,
                        help="input-data seed (default 1)")
    parser.add_argument("--no-check", action="store_true",
                        help="skip result validation against references")
    parser.add_argument("--quick", action="store_true",
                        help="resilience only: one benchmark, two fault "
                             "rates (CI smoke run)")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="fan the experiment grid out over N "
                             "supervised worker processes")
    parser.add_argument("--on-error", choices=("raise", "collect"),
                        default="raise",
                        help="cell-failure policy: abort (raise, "
                             "default) or render failed cells as "
                             "missing/FAILED and keep going (collect)")
    args = parser.parse_args(argv)
    out = out or sys.stdout
    harness = Harness(seed=args.seed, check=not args.no_check)
    sweep = {"workers": args.workers, "on_error": args.on_error}
    started = time.time()
    want = lambda name: args.target in (name, "all")
    if want("table2") or want("figure4"):
        rows = table2.run(harness, **sweep)
        if args.target != "figure4":
            _emit(out, table2.render(rows))
        if want("figure4"):
            _emit(out, table2.render_figure4(rows))
    if want("figure5"):
        _emit(out, figure5.render(figure5.run(harness, **sweep)))
    if want("table3"):
        _emit(out, table3.render(table3.run(seed=args.seed)))
    if want("figure6"):
        _emit(out, figure6.render(figure6.run(harness, **sweep)))
    if want("figure7"):
        _emit(out, figure7.render(figure7.run(harness, **sweep)))
    if want("figure8"):
        _emit(out, figure8.render(figure8.run(harness, **sweep)))
    if args.target == "resilience":
        if args.quick:
            cells = resilience.run(harness, rates=resilience.QUICK_RATES,
                                   benchmarks=("matrix",), **sweep)
        else:
            cells = resilience.run(harness, **sweep)
        _emit(out, resilience.render(cells))
    out.write("[%s done in %.1fs]\n" % (args.target,
                                        time.time() - started))
    return 0


if __name__ == "__main__":
    sys.exit(main())
