"""Shared experiment runner: compile and simulation caching, wall-clock
accounting, and a *supervised* process-pool fan-out for sweep grids.

The paper's evaluation is an embarrassingly parallel grid — benchmarks
x modes x machine configurations, every cell independent — so
:meth:`Harness.run_many` can dispatch cells to worker processes and
merge their compile/run caches back into the parent.  Parallel runs
are bit-identical to serial ones: each cell's result depends only on
its (benchmark, mode, config, seed), never on scheduling order, and
every worker derives its inputs from the same harness seed.

Pooled execution is crash-isolated (see
:mod:`repro.experiments.supervision`): a worker that raises, dies, or
hangs costs only its own cell — captured as a structured
:class:`~repro.errors.CellFailure` under ``on_error="collect"`` —
while pool breakage is retried with backoff and, once retries are
exhausted, re-executed serially in the parent.  Passing
``journal=path`` keeps an append-only JSONL ledger of completed
cells, so an interrupted sweep resumes by replaying the ledger and
re-running only the remainder.
"""

import time
from dataclasses import dataclass, replace

from ..compiler import CompileCache, compile_program, default_cache
from ..errors import CellFailure, ConfigError, VerificationError
from ..machine import baseline
from ..programs import get_benchmark
from ..sim import run_program
from .supervision import (ReplayedStats, Supervisor, SupervisorPolicy,
                          SweepCell, SweepJournal, chaos_if_requested,
                          run_key_digest)


@dataclass(frozen=True)
class RunSpec:
    """One (benchmark, mode, config) cell of a sweep grid.

    Picklable, so a batch of specs can fan out across processes.
    ``config=None`` means the baseline machine; ``tag`` overrides the
    run-cache key (rarely needed now that the key covers the full run
    signature, but kept for explicit grouping).  ``seed`` overrides
    the harness input seed for this cell only (None = harness seed) —
    the *lane axis* of the batch backend: specs that differ solely in
    ``seed`` share one compiled program and one machine timing, so
    ``run_many(backend="batch")`` simulates them in numpy lockstep.
    """

    benchmark: str
    mode: str
    config: object = None
    tag: object = None
    seed: object = None


@dataclass
class RunResult:
    """One benchmark x mode x machine simulation."""

    benchmark: str
    mode: str
    config: object
    cycles: int
    utilization: dict               # unit-class name -> ops/cycle
    stats: object
    compiled: object
    sim: object
    verified: bool
    wall_seconds: float = 0.0       # simulation wall clock
    compile_seconds: float = 0.0    # compilation wall clock (0 on hit)
    cache_hit: bool = False         # compile served from a cache?
    replayed: bool = False          # rebuilt from a sweep journal?
    #: Which execution path produced this cell: "scalar" (a plain
    #: Harness.run), "batch" (one lane of a lockstep bundle, wall
    #: clock = bundle wall / lanes), or "batch-peeled" (diverged out
    #: of a bundle and re-run on the scalar kernel — wall clock is
    #: the re-run's own).
    backend: str = "scalar"
    lanes: int = 1                  # bundle width this cell rode in
    peeled_lanes: int = 0           # lanes peeled from that bundle

    #: Discriminates RunResult from CellFailure in a collected sweep.
    ok = True

    @property
    def fpu_util(self):
        return self.utilization["fpu"]

    @property
    def iu_util(self):
        return self.utilization["iu"]

    @property
    def cycles_per_second(self):
        """Simulated cycles per wall-clock second (perf trajectory).

        0.0 whenever the wall clock is zero, negative, or too small to
        be a real measurement — notably journal-replayed cells whose
        record predates wall-clock capture — so ``--resume`` aggregates
        can never divide by zero or report inf."""
        if self.wall_seconds <= 1e-9:
            return 0.0
        return self.cycles / self.wall_seconds


class Harness:
    """Caches compilations (per machine signature) and simulations so
    the table/figure generators can share runs.

    ``fast_forward`` toggles the simulator's skip-ahead fast path
    (results are identical either way).  ``compile_cache`` controls the
    persistent on-disk compile cache: the default uses
    ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``; ``REPRO_NO_CACHE=1``
    disables it), ``False``/``None`` disables it for this harness, and
    a :class:`~repro.compiler.cache.CompileCache` instance is used
    as-is.
    """

    def __init__(self, seed=1, check=True, max_cycles=5_000_000,
                 fast_forward=True, compile_cache="auto", sanitize=None):
        self.seed = seed
        self.check = check
        self.max_cycles = max_cycles
        self.fast_forward = fast_forward
        self.sanitize = sanitize
        if compile_cache == "auto":
            compile_cache = default_cache()
        elif not compile_cache:
            compile_cache = None
        self.disk_cache = compile_cache
        self._compiled = {}
        self._runs = {}
        self._inputs = {}
        # Sweep dedupe accounting (see run_many): specs served from
        # the run cache vs. specs collapsed onto an identical cell
        # already in this batch (simulated once, fanned out).
        self.deduped_cached = 0
        self.deduped_in_flight = 0

    def inputs_for(self, benchmark, seed=None):
        eff_seed = self.seed if seed is None else seed
        key = (benchmark, eff_seed)
        if key not in self._inputs:
            self._inputs[key] = \
                get_benchmark(benchmark).make_inputs(eff_seed)
        return self._inputs[key]

    def compile(self, benchmark, mode, config):
        return self._compile_tracked(benchmark, mode, config)[0]

    def _compile_tracked(self, benchmark, mode, config):
        """Compile (or fetch) a cell's program; returns
        ``(compiled, cache_hit)`` where ``cache_hit`` is True when the
        program came from the in-memory or on-disk compile cache
        rather than a fresh compilation."""
        key = (benchmark, mode, config.schedule_signature())
        if key in self._compiled:
            return self._compiled[key], True
        bench = get_benchmark(benchmark)
        disk_hits = self.disk_cache.hits \
            if self.disk_cache is not None else 0
        compiled = compile_program(bench.source(mode), config, mode=mode,
                                   cache=self.disk_cache)
        hit = (self.disk_cache is not None
               and self.disk_cache.hits > disk_hits)
        self._compiled[key] = compiled
        return compiled, hit

    def _run_key(self, benchmark, mode, config, tag, seed=None):
        """The run-cache key.  Everything a simulation's outcome
        depends on participates: the full config run signature (which
        covers the fault plan, seed, op cache, arbitration, ...) plus
        the input seed (the spec override, defaulting to the harness
        seed — so seedless keys are unchanged from older journals) and
        cycle budget."""
        if tag is not None:
            return (benchmark, mode, tag)
        eff_seed = self.seed if seed is None else seed
        return (benchmark, mode, config.run_signature(), eff_seed,
                self.max_cycles)

    def run(self, benchmark, mode, config=None, tag=None, seed=None):
        config = config or baseline()
        key = self._run_key(benchmark, mode, config, tag, seed)
        if key in self._runs:
            return self._runs[key]
        bench = get_benchmark(benchmark)
        started = time.perf_counter()
        compiled, cache_hit = self._compile_tracked(benchmark, mode,
                                                    config)
        compile_seconds = time.perf_counter() - started
        inputs = self.inputs_for(benchmark, seed)
        started = time.perf_counter()
        sim = run_program(compiled.program, config, overrides=inputs,
                          max_cycles=self.max_cycles,
                          fast_forward=self.fast_forward,
                          sanitize=self.sanitize)
        wall_seconds = time.perf_counter() - started
        verified = True
        if self.check:
            problems = bench.check(sim, inputs)
            if problems:
                raise VerificationError(
                    benchmark, mode, config.name, problems,
                    signature=run_key_digest(
                        config.run_signature())[:12],
                    seed=self.seed if seed is None else seed)
        result = RunResult(benchmark, mode, config, sim.cycles,
                           sim.stats.utilization_table(), sim.stats,
                           compiled, sim, verified,
                           wall_seconds=wall_seconds,
                           compile_seconds=compile_seconds,
                           cache_hit=cache_hit)
        self._runs[key] = result
        return result

    # -- supervised fan-out ----------------------------------------------

    def run_many(self, specs, workers=None, on_error="raise",
                 cell_timeout=None, retries=2, journal=None,
                 policy=None, backend=None):
        """Run a batch of specs, optionally across worker processes,
        under supervision.

        ``specs`` is an iterable of :class:`RunSpec` or
        ``(benchmark, mode[, config[, tag[, seed]]])`` tuples.
        ``workers`` <= 1 (or None) runs serially in-process; otherwise
        a process pool of that size is used and each worker's compile
        and run results are merged back into this harness's caches, so
        subsequent :meth:`run` calls hit.  Falls back to serial
        execution when process pools are unavailable.  Results come
        back in spec order and are bit-identical to a serial run.

        ``backend="batch"`` additionally groups untagged specs that
        share one compiled program and one machine timing — same
        (benchmark, mode, ``config.run_signature()``), differing only
        in input ``seed`` — into lockstep *lane bundles* executed by
        :mod:`repro.sim.batch`; groups of one fall back to the normal
        path, and a bundle rides the pool (and the journal, and the
        per-cell timeout — which then covers the whole bundle) as a
        single cell whose per-lane results are fanned back out.  Lanes
        that diverge are peeled and re-run on the scalar kernel, so
        every result is still bit-identical to a serial run.
        ``backend=None`` or ``"pool"`` is the plain per-cell path.

        Failure policy (see :mod:`repro.experiments.supervision`):
        ``on_error="raise"`` aborts on the first failed cell after
        cancelling the queue; ``"collect"`` puts a
        :class:`~repro.errors.CellFailure` in that cell's result slot
        and keeps sweeping.  ``cell_timeout`` bounds each cell's wall
        clock (pooled execution only); ``retries`` bounds
        re-dispatches after worker-pool breakage before the cell runs
        serially in the parent.  A prebuilt
        :class:`~repro.experiments.supervision.SupervisorPolicy` via
        ``policy`` overrides the three knobs.

        ``journal`` names an append-only JSONL ledger: completed cells
        are recorded as they finish, and cells already recorded there
        (from an interrupted earlier invocation) are *replayed* —
        rebuilt as :class:`RunResult` with ``replayed=True`` — instead
        of re-simulated.  Bundles journal per lane, so a resumed sweep
        replays individual lanes no matter which backend recorded
        them.
        """
        if backend not in (None, "pool", "batch"):
            raise ConfigError("backend must be 'pool' or 'batch', "
                              "got %r" % (backend,))
        if backend == "batch":
            from ..sim.batch import batch_supported
            if not batch_supported():
                raise ConfigError(
                    "backend='batch' requires numpy, which is "
                    "unavailable; use backend='pool'")
            if self.sanitize:
                raise ConfigError(
                    "backend='batch' cannot run under --sanitize "
                    "(the sanitizer shadows the scalar kernels); "
                    "use backend='pool'")
        specs = [self._coerce_spec(spec) for spec in specs]
        policy = policy or SupervisorPolicy(on_error=on_error,
                                            cell_timeout=cell_timeout,
                                            max_retries=retries)
        keyed = [(self._run_key(s.benchmark, s.mode,
                                s.config or baseline(), s.tag, s.seed),
                  s)
                 for s in specs]
        journal = self._open_journal(journal)
        if journal is not None:
            self._replay_from_journal(journal, keyed)
        failures = {}

        def on_lane_complete(cell, outcome):
            if outcome.ok:
                self._absorb(cell.key, outcome)
                if journal is not None:
                    journal.record_ok(run_key_digest(cell.key),
                                      _journal_record(outcome))
            else:
                failures[cell.key] = outcome
                if journal is not None:
                    journal.record_failed(run_key_digest(cell.key),
                                          outcome)

        def on_complete(cell, outcome):
            if isinstance(cell.spec, _BatchBundle):
                self._fan_out_bundle(cell.spec, outcome,
                                     on_lane_complete)
            else:
                on_lane_complete(cell, outcome)

        # Dedupe against the cache and within the batch: each distinct
        # run key simulates at most once; every duplicate requester is
        # served the same RunResult from the fan-out loop below.
        todo = {}
        for key, spec in keyed:
            if key in self._runs:
                self.deduped_cached += 1
            elif key in todo:
                self.deduped_in_flight += 1
            else:
                todo[key] = spec
        if backend == "batch":
            work = self._plan_bundles(todo, policy.on_error)
        else:
            work = todo
        try:
            if work:
                pooled = (workers is not None and workers > 1
                          and len(work) > 1)
                if pooled:
                    supervisor = Supervisor(
                        policy, workers, _run_spec_in_worker,
                        self._worker_payload(),
                        self._serial_cell,
                        on_complete=on_complete)
                    pooled = supervisor.run(list(work.items())) \
                        is not None
                if not pooled:
                    self._run_serial(work, policy, on_complete)
        finally:
            if journal is not None:
                journal.close()
        out = []
        for key, spec in keyed:
            out.append(self._runs[key] if key in self._runs
                       else failures[key])
        return out

    def _serial_cell(self, spec):
        """Run one schedulable unit — a plain spec or a lane bundle —
        in this process (the supervisor's serial fallback and the
        no-pool path)."""
        if isinstance(spec, _BatchBundle):
            return self._run_bundle(spec)
        return self.run(spec.benchmark, spec.mode, spec.config,
                        spec.tag, spec.seed)

    def _run_serial(self, todo, policy, on_complete):
        """In-process sweep execution under the same failure policy
        (timeouts cannot be enforced without a pool and are ignored
        here)."""
        for key, spec in todo.items():
            cell = SweepCell(key, spec)
            try:
                result = self._serial_cell(spec)
            except Exception as exc:
                failure = CellFailure.from_exception(
                    spec.benchmark, spec.mode, exc,
                    key_digest=run_key_digest(key))
                on_complete(cell, failure)
                if policy.on_error == "raise":
                    raise
            else:
                on_complete(cell, result)

    # -- batch-lane bundles ----------------------------------------------

    def _plan_bundles(self, todo, on_error):
        """Group the outstanding cells into lane bundles: untagged
        specs sharing (benchmark, mode, run signature) — i.e. one
        compiled program *and* one machine timing, differing only in
        input seed — become one :class:`_BatchBundle` keyed by the
        tuple of its lane keys; everything else (tagged specs,
        singleton groups) keeps its plain per-cell entry."""
        groups = {}
        work = {}
        for key, spec in todo.items():
            if spec.tag is not None:
                work[key] = spec
                continue
            config = spec.config or baseline()
            gkey = (spec.benchmark, spec.mode, config.run_signature())
            groups.setdefault(gkey, []).append((key, spec))
        for members in groups.values():
            if len(members) < 2:
                key, spec = members[0]
                work[key] = spec
                continue
            lane_keys = tuple(key for key, __ in members)
            work[lane_keys] = _BatchBundle(
                members[0][1].benchmark, members[0][1].mode,
                lane_keys, [spec for __, spec in members], on_error)
        return work

    def _run_bundle(self, bundle):
        """Execute one lane bundle: compile once, simulate every lane
        in lockstep, re-run peeled lanes on the scalar kernel.
        Returns per-lane outcomes (RunResult / CellFailure) in
        ``bundle.lane_specs`` order; under ``on_error="raise"`` the
        first lane failure raises instead."""
        from ..sim.batch import run_batch
        config = bundle.lane_specs[0].config or baseline()
        bench = get_benchmark(bundle.benchmark)
        started = time.perf_counter()
        compiled, cache_hit = self._compile_tracked(
            bundle.benchmark, bundle.mode, config)
        compile_share = (time.perf_counter() - started) \
            / len(bundle.lane_specs)
        lane_inputs = [self.inputs_for(bundle.benchmark, spec.seed)
                       for spec in bundle.lane_specs]
        started = time.perf_counter()
        outcome = run_batch(compiled.program, config, lane_inputs,
                            max_cycles=self.max_cycles,
                            fast_forward=self.fast_forward)
        # Lockstep lanes split the bundle's wall clock evenly: the
        # shared simulation did each lane's work simultaneously, and
        # an even split keeps wall-clock *sums* (aggregate
        # throughput) honest.  Peeled lanes are charged their own
        # scalar re-run instead.
        wall_share = (time.perf_counter() - started) / outcome.lanes
        peeled = len(outcome.peeled)
        results = []
        for lane, spec in enumerate(bundle.lane_specs):
            sim = outcome.results[lane]
            try:
                if sim is None:
                    rerun = self.run(spec.benchmark, spec.mode,
                                     spec.config, spec.tag, spec.seed)
                    result = replace(rerun, backend="batch-peeled",
                                     lanes=outcome.lanes,
                                     peeled_lanes=peeled)
                else:
                    verified = True
                    if self.check:
                        problems = bench.check(sim, lane_inputs[lane])
                        if problems:
                            raise VerificationError(
                                spec.benchmark, spec.mode, config.name,
                                problems,
                                signature=run_key_digest(
                                    config.run_signature())[:12],
                                seed=self.seed if spec.seed is None
                                else spec.seed)
                    result = RunResult(
                        spec.benchmark, spec.mode, config, sim.cycles,
                        sim.stats.utilization_table(), sim.stats,
                        compiled, sim, verified,
                        wall_seconds=wall_share,
                        compile_seconds=compile_share,
                        cache_hit=cache_hit, backend="batch",
                        lanes=outcome.lanes, peeled_lanes=peeled)
            except Exception as exc:
                if bundle.on_error == "raise":
                    raise
                result = CellFailure.from_exception(
                    spec.benchmark, spec.mode, exc,
                    key_digest=run_key_digest(bundle.lane_keys[lane]))
            results.append(result)
        return results

    def _fan_out_bundle(self, bundle, outcome, on_lane_complete):
        """Distribute a finished bundle's outcome to its lanes.  A
        list is per-lane outcomes from :meth:`_run_bundle`; anything
        else is a whole-bundle :class:`CellFailure` (worker crash,
        bundle timeout) copied to every lane with its own key
        digest."""
        if isinstance(outcome, list):
            for key, spec, lane_outcome in zip(
                    bundle.lane_keys, bundle.lane_specs, outcome):
                on_lane_complete(SweepCell(key, spec), lane_outcome)
            return
        for key, spec in zip(bundle.lane_keys, bundle.lane_specs):
            lane_failure = CellFailure(
                spec.benchmark, spec.mode, outcome.error_type,
                outcome.message, attempts=outcome.attempts,
                timed_out=outcome.timed_out,
                key_digest=run_key_digest(key),
                reproducer=outcome.reproducer)
            on_lane_complete(SweepCell(key, spec), lane_failure)

    # -- journal replay --------------------------------------------------

    def _journal_header(self):
        """Everything a cell's outcome depends on at the harness level
        (the config level is covered by the per-cell key digest).
        ``sanitize`` is deliberately absent: a sanitized run that does
        not trip is bit-identical to a plain one, so sanitized and
        unsanitized sweeps may share a journal."""
        return {"seed": self.seed, "check": self.check,
                "max_cycles": self.max_cycles,
                "fast_forward": self.fast_forward}

    def _open_journal(self, journal):
        if journal is None or isinstance(journal, SweepJournal):
            return journal
        return SweepJournal(journal, header=self._journal_header())

    def _replay_from_journal(self, journal, keyed):
        """Rebuild RunResults for every cell of this sweep already
        recorded ok in the journal, so the dedupe pass skips them."""
        for key, spec in keyed:
            if key in self._runs:
                continue
            record = journal.completed(run_key_digest(key))
            if record is None:
                continue
            result = RunResult(
                record["benchmark"], record["mode"],
                spec.config or baseline(), record["cycles"],
                dict(record["utilization"]),
                ReplayedStats(record["stats"],
                              fused_dispatches=record.get(
                                  "fused_dispatches", 0),
                              defuse_reasons=record.get(
                                  "defuse_reasons"),
                              quarantined_blocks=record.get(
                                  "quarantined_blocks", 0)),
                None, None, record.get("verified", True),
                wall_seconds=record.get("wall_seconds", 0.0),
                compile_seconds=record.get("compile_seconds", 0.0),
                cache_hit=record.get("cache_hit", False),
                replayed=True,
                backend=record.get("backend", "scalar"),
                lanes=record.get("lanes", 1),
                peeled_lanes=record.get("peeled_lanes", 0))
            self._absorb(key, result)

    @staticmethod
    def _coerce_spec(spec):
        if isinstance(spec, RunSpec):
            return spec
        return RunSpec(*spec)

    def _worker_payload(self):
        cache_root = self.disk_cache.root if self.disk_cache is not None \
            else None
        return (self.seed, self.check, self.max_cycles,
                self.fast_forward, cache_root, self.sanitize)

    def _absorb(self, key, result):
        """Merge one worker result into the run and compile caches."""
        self._runs[key] = result
        if result.compiled is not None:
            ckey = (result.benchmark, result.mode,
                    result.config.schedule_signature())
            self._compiled.setdefault(ckey, result.compiled)


def _journal_record(result):
    """The JSON-serializable slice of a RunResult a journal keeps —
    enough to rebuild everything the report generators read."""
    return {"benchmark": result.benchmark, "mode": result.mode,
            "cycles": result.cycles,
            "utilization": dict(result.utilization),
            "stats": result.stats.summary(),
            "fused_dispatches":
                getattr(result.stats, "fused_dispatches", 0),
            "defuse_reasons":
                dict(getattr(result.stats, "defuse_reasons", None) or {}),
            "quarantined_blocks":
                getattr(result.stats, "quarantined_blocks", 0),
            "verified": result.verified,
            "wall_seconds": result.wall_seconds,
            "compile_seconds": result.compile_seconds,
            "cache_hit": result.cache_hit,
            "backend": result.backend,
            "lanes": result.lanes,
            "peeled_lanes": result.peeled_lanes}


class _BatchBundle:
    """One schedulable lane bundle: ≥2 untagged specs sharing a
    compiled program and run signature, simulated in lockstep by
    :func:`repro.sim.batch.run_batch`.  Rides the supervisor (and the
    process pool) as a single cell — ``benchmark``/``mode`` are the
    shared ones, satisfying the supervisor's failure-reporting
    surface — keyed by the tuple of its lane run keys."""

    __slots__ = ("benchmark", "mode", "lane_keys", "lane_specs",
                 "on_error")

    def __init__(self, benchmark, mode, lane_keys, lane_specs,
                 on_error):
        self.benchmark = benchmark
        self.mode = mode
        self.lane_keys = lane_keys
        self.lane_specs = lane_specs
        self.on_error = on_error

    def __repr__(self):
        return "_BatchBundle(%s/%s x%d)" % (self.benchmark, self.mode,
                                            len(self.lane_specs))


def _run_spec_in_worker(payload, spec):
    """Process-pool entry point: rebuild a harness and run one spec
    (or one lane bundle, which returns a per-lane outcome list).  The
    chaos hook fires only here — never in the parent — so the
    serial-fallback path completes cells whose workers always die."""
    chaos_if_requested(spec.benchmark, spec.mode)
    seed, check, max_cycles, fast_forward, cache_root, sanitize = payload
    cache = CompileCache(cache_root) if cache_root is not None else None
    harness = Harness(seed=seed, check=check, max_cycles=max_cycles,
                      fast_forward=fast_forward, compile_cache=cache,
                      sanitize=sanitize)
    if isinstance(spec, _BatchBundle):
        return harness._run_bundle(spec)
    return harness.run(spec.benchmark, spec.mode, spec.config, spec.tag,
                       spec.seed)
