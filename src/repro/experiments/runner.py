"""Shared experiment runner: compile and simulation caching, wall-clock
accounting, and a process-pool fan-out for sweep grids.

The paper's evaluation is an embarrassingly parallel grid — benchmarks
x modes x machine configurations, every cell independent — so
:meth:`Harness.run_many` can dispatch cells to worker processes and
merge their compile/run caches back into the parent.  Parallel runs
are bit-identical to serial ones: each cell's result depends only on
its (benchmark, mode, config, seed), never on scheduling order, and
every worker derives its inputs from the same harness seed.
"""

import time
from dataclasses import dataclass

from ..compiler import CompileCache, compile_program, default_cache
from ..errors import ReproError
from ..machine import baseline
from ..programs import get_benchmark
from ..sim import run_program


@dataclass(frozen=True)
class RunSpec:
    """One (benchmark, mode, config) cell of a sweep grid.

    Picklable, so a batch of specs can fan out across processes.
    ``config=None`` means the baseline machine; ``tag`` overrides the
    run-cache key (rarely needed now that the key covers the full run
    signature, but kept for explicit grouping).
    """

    benchmark: str
    mode: str
    config: object = None
    tag: object = None


@dataclass
class RunResult:
    """One benchmark x mode x machine simulation."""

    benchmark: str
    mode: str
    config: object
    cycles: int
    utilization: dict               # unit-class name -> ops/cycle
    stats: object
    compiled: object
    sim: object
    verified: bool
    wall_seconds: float = 0.0       # simulation wall clock
    compile_seconds: float = 0.0    # compilation wall clock (0 on hit)
    cache_hit: bool = False         # compile served from a cache?

    @property
    def fpu_util(self):
        return self.utilization["fpu"]

    @property
    def iu_util(self):
        return self.utilization["iu"]

    @property
    def cycles_per_second(self):
        """Simulated cycles per wall-clock second (perf trajectory)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cycles / self.wall_seconds


class Harness:
    """Caches compilations (per machine signature) and simulations so
    the table/figure generators can share runs.

    ``fast_forward`` toggles the simulator's skip-ahead fast path
    (results are identical either way).  ``compile_cache`` controls the
    persistent on-disk compile cache: the default uses
    ``~/.cache/repro`` (or ``$REPRO_CACHE_DIR``; ``REPRO_NO_CACHE=1``
    disables it), ``False``/``None`` disables it for this harness, and
    a :class:`~repro.compiler.cache.CompileCache` instance is used
    as-is.
    """

    def __init__(self, seed=1, check=True, max_cycles=5_000_000,
                 fast_forward=True, compile_cache="auto"):
        self.seed = seed
        self.check = check
        self.max_cycles = max_cycles
        self.fast_forward = fast_forward
        if compile_cache == "auto":
            compile_cache = default_cache()
        elif not compile_cache:
            compile_cache = None
        self.disk_cache = compile_cache
        self._compiled = {}
        self._runs = {}
        self._inputs = {}

    def inputs_for(self, benchmark):
        if benchmark not in self._inputs:
            self._inputs[benchmark] = \
                get_benchmark(benchmark).make_inputs(self.seed)
        return self._inputs[benchmark]

    def compile(self, benchmark, mode, config):
        return self._compile_tracked(benchmark, mode, config)[0]

    def _compile_tracked(self, benchmark, mode, config):
        """Compile (or fetch) a cell's program; returns
        ``(compiled, cache_hit)`` where ``cache_hit`` is True when the
        program came from the in-memory or on-disk compile cache
        rather than a fresh compilation."""
        key = (benchmark, mode, config.schedule_signature())
        if key in self._compiled:
            return self._compiled[key], True
        bench = get_benchmark(benchmark)
        disk_hits = self.disk_cache.hits \
            if self.disk_cache is not None else 0
        compiled = compile_program(bench.source(mode), config, mode=mode,
                                   cache=self.disk_cache)
        hit = (self.disk_cache is not None
               and self.disk_cache.hits > disk_hits)
        self._compiled[key] = compiled
        return compiled, hit

    def _run_key(self, benchmark, mode, config, tag):
        """The run-cache key.  Everything a simulation's outcome
        depends on participates: the full config run signature (which
        covers the fault plan, seed, op cache, arbitration, ...) plus
        the harness-level input seed and cycle budget."""
        if tag is not None:
            return (benchmark, mode, tag)
        return (benchmark, mode, config.run_signature(), self.seed,
                self.max_cycles)

    def run(self, benchmark, mode, config=None, tag=None):
        config = config or baseline()
        key = self._run_key(benchmark, mode, config, tag)
        if key in self._runs:
            return self._runs[key]
        bench = get_benchmark(benchmark)
        started = time.perf_counter()
        compiled, cache_hit = self._compile_tracked(benchmark, mode,
                                                    config)
        compile_seconds = time.perf_counter() - started
        inputs = self.inputs_for(benchmark)
        started = time.perf_counter()
        sim = run_program(compiled.program, config, overrides=inputs,
                          max_cycles=self.max_cycles,
                          fast_forward=self.fast_forward)
        wall_seconds = time.perf_counter() - started
        verified = True
        if self.check:
            problems = bench.check(sim, inputs)
            if problems:
                raise ReproError(
                    "%s/%s on %s produced wrong results: %s"
                    % (benchmark, mode, config.name, problems[:3]))
        result = RunResult(benchmark, mode, config, sim.cycles,
                           sim.stats.utilization_table(), sim.stats,
                           compiled, sim, verified,
                           wall_seconds=wall_seconds,
                           compile_seconds=compile_seconds,
                           cache_hit=cache_hit)
        self._runs[key] = result
        return result

    # -- parallel fan-out ------------------------------------------------

    def run_many(self, specs, workers=None):
        """Run a batch of specs, optionally across worker processes.

        ``specs`` is an iterable of :class:`RunSpec` or
        ``(benchmark, mode[, config[, tag]])`` tuples.  ``workers``
        <= 1 (or None) runs serially in-process; otherwise a process
        pool of that size is used and each worker's compile and run
        results are merged back into this harness's caches, so
        subsequent :meth:`run` calls hit.  Falls back to serial
        execution when process pools are unavailable.  Results come
        back in spec order and are bit-identical to a serial run.
        """
        specs = [self._coerce_spec(spec) for spec in specs]
        if workers is None or workers <= 1 or len(specs) <= 1:
            return [self.run(s.benchmark, s.mode, s.config, s.tag)
                    for s in specs]
        # Dedupe against the cache and within the batch.
        todo = {}
        for spec in specs:
            key = self._run_key(spec.benchmark, spec.mode,
                                spec.config or baseline(), spec.tag)
            if key not in self._runs and key not in todo:
                todo[key] = spec
        if todo:
            merged = self._run_pool(list(todo.items()), workers)
            if merged is None:          # pool unavailable: serial fallback
                for spec in todo.values():
                    self.run(spec.benchmark, spec.mode, spec.config,
                             spec.tag)
            else:
                for key, result in merged:
                    self._absorb(key, result)
        return [self._runs[self._run_key(s.benchmark, s.mode,
                                         s.config or baseline(), s.tag)]
                for s in specs]

    @staticmethod
    def _coerce_spec(spec):
        if isinstance(spec, RunSpec):
            return spec
        return RunSpec(*spec)

    def _worker_payload(self):
        cache_root = self.disk_cache.root if self.disk_cache is not None \
            else None
        return (self.seed, self.check, self.max_cycles,
                self.fast_forward, cache_root)

    def _run_pool(self, keyed_specs, workers):
        """Execute (key, spec) pairs on a process pool; returns the
        (key, result) list, or None when no pool could be created."""
        try:
            from concurrent.futures import ProcessPoolExecutor
            pool = ProcessPoolExecutor(max_workers=workers)
        except (ImportError, NotImplementedError, OSError):
            return None
        payload = self._worker_payload()
        try:
            futures = [(key, pool.submit(_run_spec_in_worker, payload,
                                         spec))
                       for key, spec in keyed_specs]
            return [(key, future.result()) for key, future in futures]
        finally:
            pool.shutdown()

    def _absorb(self, key, result):
        """Merge one worker result into the run and compile caches."""
        self._runs[key] = result
        if result.compiled is not None:
            ckey = (result.benchmark, result.mode,
                    result.config.schedule_signature())
            self._compiled.setdefault(ckey, result.compiled)


def _run_spec_in_worker(payload, spec):
    """Process-pool entry point: rebuild a harness and run one spec."""
    seed, check, max_cycles, fast_forward, cache_root = payload
    cache = CompileCache(cache_root) if cache_root is not None else None
    harness = Harness(seed=seed, check=check, max_cycles=max_cycles,
                      fast_forward=fast_forward, compile_cache=cache)
    return harness.run(spec.benchmark, spec.mode, spec.config, spec.tag)
