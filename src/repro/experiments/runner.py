"""Shared experiment runner with compile and simulation caching."""

from dataclasses import dataclass, field

from ..compiler import compile_program
from ..errors import ReproError
from ..isa.operations import UnitClass
from ..machine import baseline
from ..programs import get_benchmark
from ..sim import run_program


@dataclass
class RunResult:
    """One benchmark x mode x machine simulation."""

    benchmark: str
    mode: str
    config: object
    cycles: int
    utilization: dict               # UnitClass -> ops/cycle
    stats: object
    compiled: object
    sim: object
    verified: bool

    @property
    def fpu_util(self):
        return self.utilization[UnitClass.FPU]

    @property
    def iu_util(self):
        return self.utilization[UnitClass.IU]


class Harness:
    """Caches compilations (per machine signature) and simulations so
    the table/figure generators can share runs."""

    def __init__(self, seed=1, check=True, max_cycles=5_000_000):
        self.seed = seed
        self.check = check
        self.max_cycles = max_cycles
        self._compiled = {}
        self._runs = {}
        self._inputs = {}

    def inputs_for(self, benchmark):
        if benchmark not in self._inputs:
            self._inputs[benchmark] = \
                get_benchmark(benchmark).make_inputs(self.seed)
        return self._inputs[benchmark]

    def compile(self, benchmark, mode, config):
        key = (benchmark, mode, config.schedule_signature())
        if key not in self._compiled:
            bench = get_benchmark(benchmark)
            self._compiled[key] = compile_program(bench.source(mode),
                                                  config, mode=mode)
        return self._compiled[key]

    def run(self, benchmark, mode, config=None, tag=None):
        config = config or baseline()
        key = (benchmark, mode, tag if tag is not None
               else (config.schedule_signature(),
                     config.interconnect.scheme, config.memory.name,
                     config.seed))
        if key in self._runs:
            return self._runs[key]
        bench = get_benchmark(benchmark)
        compiled = self.compile(benchmark, mode, config)
        inputs = self.inputs_for(benchmark)
        sim = run_program(compiled.program, config, overrides=inputs,
                          max_cycles=self.max_cycles)
        verified = True
        if self.check:
            problems = bench.check(sim, inputs)
            if problems:
                raise ReproError(
                    "%s/%s on %s produced wrong results: %s"
                    % (benchmark, mode, config.name, problems[:3]))
        result = RunResult(benchmark, mode, config, sim.cycles,
                           sim.stats.utilization_table(), sim.stats,
                           compiled, sim, verified)
        self._runs[key] = result
        return result
