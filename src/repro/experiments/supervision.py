"""Supervised sweep execution: crash isolation, timeouts, retries,
and a journaled ledger for :meth:`Harness.run_many`.

The paper's evaluation grid is embarrassingly parallel, which also
means individual-worker failure is the *common* case at scale: one
segfaulting worker, one hung cell, or one interrupted invocation must
not cost the whole sweep.  This module supplies the three mechanisms
the harness composes:

* :class:`SupervisorPolicy` — what to do when a cell fails
  (``on_error="raise"|"collect"``), how long a cell may run
  (``cell_timeout``), and how many times a cell may be re-dispatched
  after its worker pool broke underneath it (``max_retries`` with
  exponential backoff).

* :class:`Supervisor` — a sliding-window scheduler over a
  ``ProcessPoolExecutor``.  Cells are submitted at most ``workers`` at
  a time so submit time ≈ start time and per-cell deadlines are
  meaningful.  A Python-level exception from a worker is deterministic
  and fails only its own cell; a *broken pool* (worker SIGKILL, OOM)
  is transient: the pool is torn down, every in-flight cell is charged
  one attempt and requeued, and cells that exhaust their attempts are
  re-executed serially in the parent — so a worker that dies every
  time still cannot sink the sweep.  A cell past its deadline is
  failed with :class:`CellTimeoutError`, its (possibly hung) pool is
  killed, and the innocent in-flight cells are requeued unpenalized.

* :class:`SweepJournal` — an append-only JSONL ledger keyed by a
  digest of the harness run key (which covers the full
  ``MachineConfig.run_signature()``).  Every completed cell — ok or
  failed — is journaled as soon as it finishes, so
  ``run_many(..., journal=path)`` after a kill replays the completed
  cells from disk and re-runs only the remainder.  Replayed results
  are bit-identical in everything the journal records (cycles,
  statistics, utilization); only the live ``sim``/``compiled`` handles
  are absent (``RunResult.replayed`` is True).

The ``REPRO_CHAOS_WORKER`` environment flag (test/CI only) makes a
worker kill or hang itself mid-cell; see :func:`chaos_if_requested`.
"""

import hashlib
import json
import os
import signal
import time
from collections import deque
from dataclasses import dataclass

from ..errors import (CellFailure, CellTimeoutError, ConfigError,
                      SweepJournalError)

#: Bump when the journal line format changes incompatibly.
JOURNAL_VERSION = 1

ON_ERROR_POLICIES = ("raise", "collect")


def run_key_digest(key):
    """Stable hex digest naming one sweep cell.  ``key`` is the
    harness run key — a nested tuple of primitives, enums, and frozen
    dataclasses, whose ``repr`` is deterministic across processes —
    so the digest survives interpreter restarts and is safe to use as
    a journal key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class SupervisorPolicy:
    """Failure policy for one supervised sweep.

    ``on_error="raise"`` aborts the sweep on the first cell failure
    (after cancelling everything still queued); ``"collect"`` records
    a :class:`CellFailure` and keeps going.  ``cell_timeout`` is the
    per-cell wall-clock budget in seconds (None = unlimited; enforced
    only under pooled execution).  ``max_retries`` bounds how many
    times a cell is re-dispatched to a rebuilt pool after pool
    breakage before falling back to in-parent serial execution;
    rebuild *i* sleeps ``min(backoff_cap, backoff_base * 2**(i-1))``.
    """

    on_error: str = "raise"
    cell_timeout: float = None
    max_retries: int = 2
    backoff_base: float = 0.1
    backoff_cap: float = 2.0

    def __post_init__(self):
        if self.on_error not in ON_ERROR_POLICIES:
            raise ConfigError("on_error must be one of %s, got %r"
                              % (ON_ERROR_POLICIES, self.on_error))
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ConfigError("cell_timeout must be positive, got %r"
                              % (self.cell_timeout,))
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0, got %r"
                              % (self.max_retries,))

    def backoff(self, rebuild):
        """Sleep before pool rebuild number ``rebuild`` (1-based)."""
        if rebuild <= 0 or self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_cap,
                   self.backoff_base * (2.0 ** (rebuild - 1)))


class ReplayedStats:
    """Stats facade for a journal-replayed cell: exposes the recorded
    :meth:`~repro.sim.stats.Stats.summary` dict and the counters the
    report generators read, without a live simulation behind it."""

    def __init__(self, summary, fused_dispatches=0, defuse_reasons=None,
                 quarantined_blocks=0):
        self._summary = dict(summary)
        self.cycles = self._summary.get("cycles", 0)
        self.total_operations = self._summary.get("operations", 0)
        # Not part of summary() (engine bookkeeping, kept out so fused
        # and unfused digests match); journaled separately so a
        # resumed bench still reports them per cell.
        self.fused_dispatches = fused_dispatches
        self.defuse_reasons = dict(defuse_reasons or {})
        self.quarantined_blocks = quarantined_blocks

    def summary(self):
        return dict(self._summary)

    def __repr__(self):
        return "ReplayedStats(%r)" % (self._summary,)


class SweepJournal:
    """Append-only JSONL ledger of completed sweep cells.

    Line 1 is a header recording the harness parameters the cells
    depend on; resuming with different parameters raises
    :class:`SweepJournalError` rather than silently mixing two
    experiments.  Each subsequent line is one completed cell keyed by
    :func:`run_key_digest`.  Corrupt lines (e.g. a partial final line
    after a kill -9 mid-write) are skipped — the worst case is
    re-running one cell.  Only ``status == "ok"`` cells are replayed;
    failed cells are recorded for the post-mortem but always re-run.
    """

    def __init__(self, path, header):
        self.path = os.fspath(path)
        self.header = dict(header)
        self.header["version"] = JOURNAL_VERSION
        self._completed = {}
        self._failed = {}
        self._handle = None
        self._load()

    def _load(self):
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except (FileNotFoundError, OSError):
            return
        seen_header = False
        for line in lines:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue                      # torn write: skip
            if not isinstance(record, dict):
                continue
            if record.get("kind") == "header":
                recorded = {k: record.get(k) for k in self.header}
                if recorded != self.header:
                    expect = self.header.get("report_schema")
                    got = recorded.get("report_schema")
                    if expect is not None and got != expect:
                        # A schema bump changed what each cell record
                        # carries; replaying old cells would produce a
                        # report missing the new fields.
                        raise SweepJournalError(
                            "journal %s records report schema %s but "
                            "this build writes schema %s; re-run the "
                            "sweep with a fresh journal (old journals "
                            "cannot be resumed across a schema bump)"
                            % (self.path, got, expect))
                    raise SweepJournalError(
                        "journal %s was written by a different sweep: "
                        "header %r vs current %r"
                        % (self.path, recorded, self.header))
                seen_header = True
            elif record.get("kind") == "cell" and seen_header:
                if record.get("status") == "ok":
                    self._completed[record["key"]] = record
                else:
                    self._failed[record["key"]] = record

    def completed(self, digest):
        """The recorded ok-cell for this key digest, or None."""
        return self._completed.get(digest)

    @property
    def completed_count(self):
        return len(self._completed)

    @property
    def failed_count(self):
        return len(self._failed)

    def _ensure_open(self):
        if self._handle is not None:
            return
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        fresh = not os.path.exists(self.path) \
            or os.path.getsize(self.path) == 0
        self._handle = open(self.path, "a")
        if fresh:
            header = dict(self.header)
            header["kind"] = "header"
            self._write(header)

    def _write(self, record):
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass

    def record_ok(self, digest, record):
        """Journal one completed cell.  ``record`` must be
        JSON-serializable (the harness shapes it from the RunResult)."""
        self._ensure_open()
        entry = dict(record)
        entry.update(kind="cell", key=digest, status="ok")
        self._write(entry)
        self._completed[digest] = entry

    def record_failed(self, digest, failure):
        """Journal one failed cell (a :class:`CellFailure`)."""
        self._ensure_open()
        entry = failure.as_record()
        entry.update(kind="cell", key=digest, status="failed")
        self._write(entry)
        self._failed[digest] = entry

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()


class SweepCell:
    """One schedulable unit of a supervised sweep."""

    __slots__ = ("key", "spec", "attempts", "deadline")

    def __init__(self, key, spec):
        self.key = key
        self.spec = spec
        self.attempts = 0
        self.deadline = None


class Supervisor:
    """Sliding-window pool scheduler with crash isolation.

    ``worker_fn(payload, spec)`` runs in the pool; ``serial_fn(spec)``
    runs a cell in the parent (the retry-exhausted fallback and the
    no-pool degradation path).  ``on_complete(cell, outcome)`` fires
    once per finished cell — RunResult or CellFailure — *before* any
    policy-triggered raise, so the journal always sees the completion.
    """

    #: Exceptions treated as transient infrastructure failures: the
    #: pool broke (worker SIGKILL/OOM) or IPC/IO glitched.  These
    #: charge an attempt and retry; everything else is deterministic
    #: and fails the cell immediately.
    TRANSIENT = None                # filled lazily (import cost)

    def __init__(self, policy, workers, worker_fn, payload, serial_fn,
                 on_complete=None, sleep=time.sleep):
        self.policy = policy
        self.workers = max(1, int(workers))
        self.worker_fn = worker_fn
        self.payload = payload
        self.serial_fn = serial_fn
        self.on_complete = on_complete or (lambda cell, outcome: None)
        self.sleep = sleep
        self.rebuilds = 0
        self.outcomes = {}

    # -- pool lifecycle --------------------------------------------------

    def _make_pool(self):
        try:
            from concurrent.futures import ProcessPoolExecutor
            return ProcessPoolExecutor(max_workers=self.workers)
        except (ImportError, NotImplementedError, OSError):
            return None

    @staticmethod
    def _kill_pool(pool):
        """Tear a pool down without waiting: cancel everything queued
        and terminate worker processes (a hung worker would otherwise
        outlive the shutdown)."""
        if pool is None:
            return
        procs = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for proc in procs:
            try:
                proc.terminate()
            except Exception:
                pass

    @classmethod
    def _transient_types(cls):
        if cls.TRANSIENT is None:
            from concurrent.futures import BrokenExecutor
            cls.TRANSIENT = (BrokenExecutor, OSError, EOFError)
        return cls.TRANSIENT

    # -- outcome plumbing ------------------------------------------------

    def _complete(self, cell, result):
        self.outcomes[cell.key] = result
        self.on_complete(cell, result)

    def _fail(self, cell, exc, pool=None):
        """Record (collect) or propagate (raise) one cell failure.
        The journal callback always runs first so a resumed sweep
        knows the cell was attempted."""
        failure = CellFailure.from_exception(
            cell.spec.benchmark, cell.spec.mode, exc,
            attempts=max(1, cell.attempts + 1),
            key_digest=run_key_digest(cell.key))
        self.outcomes[cell.key] = failure
        self.on_complete(cell, failure)
        if self.policy.on_error == "raise":
            self._kill_pool(pool)
            raise exc

    def _run_serial(self, cell, pool=None):
        """Parent-process fallback execution of one cell."""
        try:
            result = self.serial_fn(cell.spec)
        except Exception as exc:
            self._fail(cell, exc, pool=pool)
        else:
            self._complete(cell, result)

    # -- failure handling ------------------------------------------------

    def _handle_break(self, pool, in_flight, queue):
        """The pool broke: charge every in-flight cell one attempt,
        requeue the ones with budget left, run the rest serially, and
        rebuild the pool after a backoff sleep."""
        suspects = list(in_flight.values())
        in_flight.clear()
        self._kill_pool(pool)
        for cell in suspects:
            cell.attempts += 1
            cell.deadline = None
            if cell.attempts > self.policy.max_retries:
                self._run_serial(cell)
            else:
                queue.append(cell)
        self.rebuilds += 1
        pause = self.policy.backoff(self.rebuilds)
        if pause > 0:
            self.sleep(pause)
        return self._make_pool()

    def _handle_timeout(self, pool, in_flight, queue):
        """At least one cell is past its deadline: fail it, kill the
        pool (the worker may be hung), requeue the innocent in-flight
        cells unpenalized, and rebuild."""
        now = time.monotonic()
        overdue = [cell for cell in in_flight.values()
                   if cell.deadline is not None and now >= cell.deadline]
        if not overdue:
            return pool                      # spurious wake
        innocent = [cell for cell in in_flight.values()
                    if cell not in overdue]
        in_flight.clear()
        for cell in overdue:
            exc = CellTimeoutError(cell.spec.benchmark, cell.spec.mode,
                                   self.policy.cell_timeout)
            self._fail(cell, exc, pool=pool)
        self._kill_pool(pool)
        for cell in innocent:
            cell.deadline = None
            queue.append(cell)
        return self._make_pool()

    # -- main loop -------------------------------------------------------

    def run(self, keyed_specs):
        """Execute ``(key, spec)`` pairs under supervision; returns
        the key -> outcome dict, or None when no process pool could be
        created at all (caller falls back to plain serial)."""
        from concurrent.futures import FIRST_COMPLETED, wait

        pool = self._make_pool()
        if pool is None:
            return None
        transient = self._transient_types()
        queue = deque(SweepCell(key, spec) for key, spec in keyed_specs)
        in_flight = {}
        try:
            while queue or in_flight:
                if pool is None:
                    pool = self._make_pool()
                    if pool is None:
                        # Pools are gone for good: drain serially.
                        for cell in list(in_flight.values()):
                            self._run_serial(cell)
                        in_flight.clear()
                        while queue:
                            self._run_serial(queue.popleft())
                        break
                while queue and len(in_flight) < self.workers:
                    cell = queue.popleft()
                    try:
                        future = pool.submit(self.worker_fn,
                                             self.payload, cell.spec)
                    except transient:
                        in_flight[_SubmitFailed(cell)] = cell
                        pool = self._handle_break(pool, in_flight, queue)
                        break
                    if self.policy.cell_timeout:
                        cell.deadline = (time.monotonic()
                                         + self.policy.cell_timeout)
                    in_flight[future] = cell
                if not in_flight:
                    continue
                timeout = None
                if self.policy.cell_timeout:
                    timeout = max(0.0,
                                  min(c.deadline
                                      for c in in_flight.values())
                                  - time.monotonic())
                done, __ = wait(set(in_flight), timeout=timeout,
                                return_when=FIRST_COMPLETED)
                if not done:
                    pool = self._handle_timeout(pool, in_flight, queue)
                    continue
                broke = False
                for future in done:
                    cell = in_flight.pop(future)
                    try:
                        result = future.result(timeout=0)
                    except transient:
                        # Pool broke under this cell; leave it (and
                        # every other in-flight cell) to _handle_break,
                        # which charges attempts and requeues.
                        broke = True
                        in_flight[future] = cell
                    except Exception as exc:
                        self._fail(cell, exc, pool=pool)
                    else:
                        self._complete(cell, result)
                if broke:
                    pool = self._handle_break(pool, in_flight, queue)
        finally:
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
        return self.outcomes


class _SubmitFailed:
    """Placeholder future for a cell whose submit itself raised."""

    __slots__ = ("cell",)

    def __init__(self, cell):
        self.cell = cell


# -- chaos injection (tests / CI only) ----------------------------------

def chaos_if_requested(benchmark, mode):
    """Honor the ``REPRO_CHAOS_WORKER`` flag inside a sweep *worker*.

    Format: ``<benchmark>/<mode>[@<sentinel-path>][:kill|:hang]``.
    A matching cell makes the worker SIGKILL itself (default) or hang
    forever — exercising, respectively, the pool-rebuild/retry path
    and the cell-timeout path.  With ``@sentinel``, the chaos fires
    only once: the first matching worker creates the sentinel file
    atomically before dying, so the retry succeeds.  ``*`` matches
    every cell.  The flag is only consulted from the pool worker entry
    point, never from in-parent (serial) execution — so the
    serial-fallback path completes even a cell that crashes on every
    pooled attempt.
    """
    flag = os.environ.get("REPRO_CHAOS_WORKER")
    if not flag:
        return
    action = "kill"
    if flag.endswith(":kill") or flag.endswith(":hang"):
        flag, action = flag[:-5], flag[-4:]
    target, __, sentinel = flag.partition("@")
    if target not in ("*", "%s/%s" % (benchmark, mode)):
        return
    if sentinel:
        try:
            fd = os.open(sentinel,
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(fd)
        except FileExistsError:
            return                           # already fired once
        except OSError:
            return
    if action == "hang":
        while True:
            time.sleep(3600)
    os.kill(os.getpid(), signal.SIGKILL)
