"""Figure 7: cycle counts under variable memory latency (Min, Mem1,
Mem2) for the statically scheduled and threaded modes.

Long, statically unpredictable latencies stall STS/Ideal; Coupled and
TPE hide them by running other threads (Coupled better, because a
stalled TPE thread idles its whole cluster).
"""

from ..machine import baseline, mem1, mem2, min_memory
from ..programs import get_benchmark
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness

MEMORY_MODELS = ("min", "mem1", "mem2")
MODES = ("sts", "tpe", "coupled", "ideal")
_SPECS = {"min": min_memory, "mem1": mem1, "mem2": mem2}


def run(harness=None, config=None):
    harness = harness or Harness()
    config = config or baseline()
    cells = {}
    for model_name in MEMORY_MODELS:
        memory_config = config.with_memory(_SPECS[model_name]())
        for benchmark in BENCHMARK_ORDER:
            for mode in MODES:
                if mode not in get_benchmark(benchmark).modes:
                    continue
                result = harness.run(benchmark, mode, memory_config)
                cells[(benchmark, mode, model_name)] = result.cycles
    return cells


def slowdown(cells, mode):
    """Average Mem2/Min cycle ratio for one mode across benchmarks."""
    ratios = []
    for benchmark in BENCHMARK_ORDER:
        if (benchmark, mode, "min") not in cells:
            continue
        ratios.append(cells[(benchmark, mode, "mem2")]
                      / cells[(benchmark, mode, "min")])
    return sum(ratios) / len(ratios)


def render(cells):
    sections = []
    for benchmark in BENCHMARK_ORDER:
        modes = [m for m in MODES
                 if (benchmark, m, "min") in cells]
        grid = format_grid(
            {(m, mm): cells[(benchmark, m, mm)]
             for m in modes for mm in MEMORY_MODELS},
            modes, MEMORY_MODELS,
            title="Figure 7 — %s (cycles)" % benchmark)
        sections.append(grid)
    summary = ["average Mem2/Min slowdown:"]
    for mode in ("sts", "tpe", "coupled"):
        summary.append("  %-8s %.2fx" % (mode, slowdown(cells, mode)))
    summary.append("(paper: STS ~5.5x, TPE ~2.3x, Coupled ~2.0x)")
    return "\n\n".join(sections) + "\n" + "\n".join(summary)
