"""Figure 7: cycle counts under variable memory latency (Min, Mem1,
Mem2) for the statically scheduled and threaded modes.

Long, statically unpredictable latencies stall STS/Ideal; Coupled and
TPE hide them by running other threads (Coupled better, because a
stalled TPE thread idles its whole cluster).
"""

from ..machine import baseline, mem1, mem2, min_memory
from ..programs import get_benchmark
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness, RunSpec

MEMORY_MODELS = ("min", "mem1", "mem2")
MODES = ("sts", "tpe", "coupled", "ideal")
_SPECS = {"min": min_memory, "mem1": mem1, "mem2": mem2}


def run(harness=None, config=None, workers=None, on_error="raise"):
    harness = harness or Harness()
    config = config or baseline()
    grid = []
    for model_name in MEMORY_MODELS:
        memory_config = config.with_memory(_SPECS[model_name]())
        for benchmark in BENCHMARK_ORDER:
            for mode in MODES:
                if mode not in get_benchmark(benchmark).modes:
                    continue
                grid.append((benchmark, mode, model_name,
                             memory_config))
    results = harness.run_many(
        [RunSpec(benchmark, mode, memory_config)
         for benchmark, mode, __, memory_config in grid],
        workers=workers, on_error=on_error)
    return {(benchmark, mode, model_name): result.cycles
            for (benchmark, mode, model_name, __), result
            in zip(grid, results) if result.ok}


def slowdown(cells, mode):
    """Average Mem2/Min cycle ratio for one mode across the benchmarks
    with both cells present (None when there are none)."""
    ratios = []
    for benchmark in BENCHMARK_ORDER:
        slow = cells.get((benchmark, mode, "mem2"))
        fast = cells.get((benchmark, mode, "min"))
        if not fast or slow is None:
            continue
        ratios.append(slow / fast)
    return sum(ratios) / len(ratios) if ratios else None


def render(cells):
    sections = []
    for benchmark in BENCHMARK_ORDER:
        modes = [m for m in MODES
                 if any((benchmark, m, mm) in cells
                        for mm in MEMORY_MODELS)]
        grid = format_grid(
            {(m, mm): cells[(benchmark, m, mm)]
             for m in modes for mm in MEMORY_MODELS
             if (benchmark, m, mm) in cells},
            modes, MEMORY_MODELS,
            title="Figure 7 — %s (cycles)" % benchmark)
        sections.append(grid)
    summary = ["average Mem2/Min slowdown:"]
    for mode in ("sts", "tpe", "coupled"):
        ratio = slowdown(cells, mode)
        summary.append("  %-8s %s" % (mode, "%.2fx" % ratio
                                      if ratio is not None else "n/a"))
    summary.append("(paper: STS ~5.5x, TPE ~2.3x, Coupled ~2.0x)")
    return "\n\n".join(sections) + "\n" + "\n".join(summary)
