"""The paper's published numbers, for side-by-side comparison.

Absolute cycle counts cannot be expected to match (different compiler,
different benchmark codings), so the harness compares *shapes*: ratios
to Coupled mode, orderings, and utilization patterns.
"""

#: Table 2 — baseline cycle counts.
TABLE2_CYCLES = {
    ("matrix", "seq"): 1992, ("matrix", "sts"): 1182,
    ("matrix", "tpe"): 629, ("matrix", "coupled"): 638,
    ("matrix", "ideal"): 350,
    ("fft", "seq"): 3377, ("fft", "sts"): 1792,
    ("fft", "tpe"): 1977, ("fft", "coupled"): 1102,
    ("fft", "ideal"): 402,
    ("model", "seq"): 993, ("model", "sts"): 771,
    ("model", "tpe"): 395, ("model", "coupled"): 369,
    ("lud", "seq"): 57975, ("lud", "sts"): 33126,
    ("lud", "tpe"): 22627, ("lud", "coupled"): 21543,
}

#: Table 2 — FPU and IU utilization (average operations per cycle).
TABLE2_UTILIZATION = {
    ("matrix", "seq"): (0.69, 0.90), ("matrix", "sts"): (1.16, 1.52),
    ("matrix", "tpe"): (2.19, 2.83), ("matrix", "coupled"): (2.16, 2.79),
    ("matrix", "ideal"): (3.93, 0.28),
    ("fft", "seq"): (0.24, 0.61), ("fft", "sts"): (0.45, 1.24),
    ("fft", "tpe"): (0.40, 1.05), ("fft", "coupled"): (0.73, 2.03),
    ("fft", "ideal"): (1.99, 2.54),
    ("model", "seq"): (0.21, 0.10), ("model", "sts"): (0.27, 0.13),
    ("model", "tpe"): (0.54, 0.64), ("model", "coupled"): (0.57, 0.70),
    ("lud", "seq"): (0.14, 0.45), ("lud", "sts"): (0.24, 0.78),
    ("lud", "tpe"): (0.35, 1.35), ("lud", "coupled"): (0.37, 1.42),
}

#: Table 3 — Model interference experiment.
TABLE3 = {
    ("sts", 1): {"schedule": 25, "runtime": 25.0, "devices": 20},
    ("coupled", 1): {"schedule": 23, "runtime": 28.0, "devices": 8},
    ("coupled", 2): {"schedule": 23, "runtime": 38.7, "devices": 6},
    ("coupled", 3): {"schedule": 23, "runtime": 77.3, "devices": 3},
    ("coupled", 4): {"schedule": 23, "runtime": 80.7, "devices": 3},
}
TABLE3_AGGREGATE = {"coupled_total": 274, "sts_total": 505}

#: Figure 6 — qualitative facts: Tri-port costs ~4% over Full on
#: average; Single-port and Shared-bus are far worse.
FIGURE6_TRIPORT_OVERHEAD = 0.04

#: Figure 7 — average slowdowns of Mem2 relative to Min.
FIGURE7_SLOWDOWN = {"sts": 5.5, "coupled": 2.0, "tpe": 2.3}

#: The five machine modes in presentation order.
MODE_ORDER = ("seq", "sts", "tpe", "coupled", "ideal")
