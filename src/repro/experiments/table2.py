"""Table 2 / Figure 4: baseline cycle counts and FPU/IU utilization for
the five machine modes on the four benchmarks."""

from ..machine import baseline
from ..programs import get_benchmark
from ..programs.suite import BENCHMARK_ORDER
from . import paper
from .report import format_bar_chart, format_table
from .runner import Harness, RunSpec


def run(harness=None, config=None, workers=None, on_error="raise"):
    """Returns a list of row dicts in the paper's presentation order.
    With ``on_error="collect"`` a failed cell is simply absent from
    the rows (and ratios against it render as ``-``)."""
    harness = harness or Harness()
    config = config or baseline()
    grid = [(benchmark, mode)
            for benchmark in BENCHMARK_ORDER
            for mode in paper.MODE_ORDER
            if mode in get_benchmark(benchmark).modes]
    results = harness.run_many(
        [RunSpec(benchmark, mode, config) for benchmark, mode in grid],
        workers=workers, on_error=on_error)
    by_key = {key: result for key, result in zip(grid, results)
              if result.ok}
    rows = []
    for benchmark, mode in grid:
        result = by_key.get((benchmark, mode))
        if result is None:
            continue
        coupled = by_key.get((benchmark, "coupled"))
        rows.append({
            "benchmark": benchmark,
            "mode": mode,
            "cycles": result.cycles,
            "vs_coupled": result.cycles / coupled.cycles
            if coupled is not None else None,
            "fpu_util": result.fpu_util,
            "iu_util": result.iu_util,
            "paper_cycles": paper.TABLE2_CYCLES.get((benchmark, mode)),
            "paper_vs_coupled": _paper_ratio(benchmark, mode),
        })
    return rows


def _paper_ratio(benchmark, mode):
    cycles = paper.TABLE2_CYCLES.get((benchmark, mode))
    coupled = paper.TABLE2_CYCLES.get((benchmark, "coupled"))
    if cycles is None or coupled is None:
        return None
    return cycles / coupled


def render(rows):
    table_rows = []
    for row in rows:
        table_rows.append([
            row["benchmark"], row["mode"], row["cycles"],
            row["vs_coupled"] if row["vs_coupled"] is not None else "-",
            row["fpu_util"], row["iu_util"],
            row["paper_cycles"] if row["paper_cycles"] is not None else "-",
            row["paper_vs_coupled"]
            if row["paper_vs_coupled"] is not None else "-",
        ])
    return format_table(
        ["benchmark", "mode", "cycles", "vs coupled", "FPU", "IU",
         "paper cycles", "paper vs coupled"],
        table_rows,
        title="Table 2: baseline cycle counts (utilization = average "
              "operations per cycle)")


def render_figure4(rows):
    """Figure 4 is Table 2's cycle counts as bar charts."""
    sections = []
    for benchmark in BENCHMARK_ORDER:
        entries = [(row["mode"], row["cycles"]) for row in rows
                   if row["benchmark"] == benchmark]
        sections.append(format_bar_chart(
            entries, title="Figure 4 — %s (cycles)" % benchmark))
    return "\n\n".join(sections)
