"""Figure 5: function unit utilization (FPU, IU, MEM, BR operations per
cycle) for every benchmark and machine mode."""

from ..isa.operations import UnitClass
from ..machine import baseline
from ..programs import get_benchmark
from ..programs.suite import BENCHMARK_ORDER
from . import paper
from .report import format_table
from .runner import Harness, RunSpec

_KINDS = (UnitClass.FPU, UnitClass.IU, UnitClass.MEM, UnitClass.BRU)


def run(harness=None, config=None, workers=None, on_error="raise"):
    harness = harness or Harness()
    config = config or baseline()
    specs = [RunSpec(benchmark, mode, config)
             for benchmark in BENCHMARK_ORDER
             for mode in paper.MODE_ORDER
             if mode in get_benchmark(benchmark).modes]
    rows = []
    for result in harness.run_many(specs, workers=workers,
                                   on_error=on_error):
        if not result.ok:
            continue                  # collected failure: omit the row
        row = {"benchmark": result.benchmark, "mode": result.mode}
        for kind in _KINDS:
            row[kind.value] = result.utilization[kind.value]
        rows.append(row)
    return rows


def render(rows):
    table_rows = [[row["benchmark"], row["mode"]]
                  + [row[kind.value] for kind in _KINDS]
                  for row in rows]
    return format_table(
        ["benchmark", "mode", "FPU/cyc", "IU/cyc", "MEM/cyc", "BR/cyc"],
        table_rows,
        title="Figure 5: function unit utilization by class")
