"""Figure 8: Coupled-mode cycle counts as a function of the number and
mix of function units — all configurations of 1..4 IUs x 1..4 FPUs with
four memory units and a single branch cluster."""

from ..machine import unit_mix
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness

SWEEP = tuple((n_iu, n_fpu) for n_iu in (1, 2, 3, 4)
              for n_fpu in (1, 2, 3, 4))


def run(harness=None, benchmarks=BENCHMARK_ORDER):
    harness = harness or Harness()
    cells = {}
    for n_iu, n_fpu in SWEEP:
        config = unit_mix(n_iu, n_fpu)
        for benchmark in benchmarks:
            result = harness.run(benchmark, "coupled", config)
            cells[(benchmark, n_iu, n_fpu)] = result.cycles
    return cells


def render(cells):
    benchmarks = sorted({key[0] for key in cells},
                        key=lambda b: BENCHMARK_ORDER.index(b))
    sections = []
    for benchmark in benchmarks:
        grid = format_grid(
            {("%d IU" % n_iu, "%d FPU" % n_fpu):
             cells[(benchmark, n_iu, n_fpu)]
             for n_iu in (1, 2, 3, 4) for n_fpu in (1, 2, 3, 4)},
            ["%d IU" % n for n in (1, 2, 3, 4)],
            ["%d FPU" % n for n in (1, 2, 3, 4)],
            title="Figure 8 — %s (Coupled cycles, 4 MEM units)"
                  % benchmark)
        sections.append(grid)
    return "\n\n".join(sections)
