"""Figure 8: Coupled-mode cycle counts as a function of the number and
mix of function units — all configurations of 1..4 IUs x 1..4 FPUs with
four memory units and a single branch cluster."""

from ..machine import unit_mix
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness, RunSpec

SWEEP = tuple((n_iu, n_fpu) for n_iu in (1, 2, 3, 4)
              for n_fpu in (1, 2, 3, 4))


def run(harness=None, benchmarks=BENCHMARK_ORDER, workers=None,
        on_error="raise"):
    harness = harness or Harness()
    grid = [(benchmark, n_iu, n_fpu)
            for n_iu, n_fpu in SWEEP
            for benchmark in benchmarks]
    results = harness.run_many(
        [RunSpec(benchmark, "coupled", unit_mix(n_iu, n_fpu))
         for benchmark, n_iu, n_fpu in grid],
        workers=workers, on_error=on_error)
    return {key: result.cycles
            for key, result in zip(grid, results) if result.ok}


def render(cells):
    benchmarks = sorted({key[0] for key in cells},
                        key=lambda b: BENCHMARK_ORDER.index(b))
    sections = []
    for benchmark in benchmarks:
        grid = format_grid(
            {("%d IU" % n_iu, "%d FPU" % n_fpu):
             cells[(benchmark, n_iu, n_fpu)]
             for n_iu in (1, 2, 3, 4) for n_fpu in (1, 2, 3, 4)
             if (benchmark, n_iu, n_fpu) in cells},
            ["%d IU" % n for n in (1, 2, 3, 4)],
            ["%d FPU" % n for n in (1, 2, 3, 4)],
            title="Figure 8 — %s (Coupled cycles, 4 MEM units)"
                  % benchmark)
        sections.append(grid)
    return "\n\n".join(sections)
