"""Table 3: thread interference on the modified Model benchmark.

Four Coupled-mode threads drain a shared queue of identical devices
under strict-priority arbitration; the runtime cycles per device
evaluation dilate relative to the compile-time schedule, and more so
for lower-priority threads.  The STS run provides the single-thread
baseline whose runtime matches its schedule.
"""

from ..compiler import compile_program
from ..machine import baseline
from ..programs import model
from ..sim import run_program
from . import paper


def _loop_schedule_length(report):
    """Compile-time schedule length of the drain loop: the words of the
    blocks from the while header to its exit (block names are laid out
    in order; 'h*' starts a loop header, 'x*' its exit)."""
    names = list(report.block_words)
    start = next((i for i, n in enumerate(names) if n.startswith("h")),
                 None)
    if start is None:
        return report.words
    end = next((i for i, n in enumerate(names[start:], start)
                if n.startswith("x")), len(names))
    return sum(report.block_words[n] for n in names[start:end])


def run(config=None, qdev=model.QDEV, seed=1):
    config = config or baseline()
    inputs = model.make_inputs(seed=seed, ndev=qdev, identical=True)
    rows = []
    aggregate = {}

    # Coupled: four workers share the queue.
    compiled = compile_program(model.queue_source("coupled"), config,
                               mode="coupled")
    sim = run_program(compiled.program, config, overrides=inputs)
    counts = sim.read_symbol("count")
    worker_reports = [r for name, r in compiled.reports.items()
                      if name.startswith("worker@")]
    schedule = _loop_schedule_length(worker_reports[0])
    workers = [t for t in sim.threads if t.name.startswith("worker@")]
    workers.sort(key=lambda t: t.tid)
    for position, thread in enumerate(workers, start=1):
        devices = counts[position - 1]
        busy = (thread.finish_cycle or sim.cycles) - thread.spawn_cycle
        rows.append({
            "mode": "coupled",
            "thread": position,
            "schedule": schedule,
            "runtime_per_device": busy / devices if devices else
            float("inf"),
            "devices": devices,
        })
    aggregate["coupled_total"] = sim.cycles
    aggregate["coupled_per_device"] = sim.cycles / qdev
    expected = model.queue_reference(inputs, qdev=qdev)
    got = sim.read_symbol("idev")
    aggregate["verified"] = all(
        abs(g - w) <= 1e-9 * max(1.0, abs(w))
        for g, w in zip(got, expected["idev"]))

    # STS: one thread drains the whole queue.
    compiled_sts = compile_program(model.queue_source("sts"), config,
                                   mode="sts")
    sim_sts = run_program(compiled_sts.program, config, overrides=inputs)
    schedule_sts = _loop_schedule_length(compiled_sts.reports["main"])
    rows.insert(0, {
        "mode": "sts",
        "thread": 1,
        "schedule": schedule_sts,
        "runtime_per_device": sim_sts.cycles / qdev,
        "devices": qdev,
    })
    aggregate["sts_total"] = sim_sts.cycles
    return {"rows": rows, "aggregate": aggregate}


def render(data):
    from .report import format_table
    table_rows = []
    for row in data["rows"]:
        key = (row["mode"], row["thread"])
        published = paper.TABLE3.get(key, {})
        table_rows.append([
            row["mode"], row["thread"], row["schedule"],
            row["runtime_per_device"], row["devices"],
            published.get("schedule", "-"),
            published.get("runtime", "-"),
            published.get("devices", "-"),
        ])
    agg = data["aggregate"]
    footer = ("aggregate: coupled %d cycles vs sts %d cycles "
              "(paper: %d vs %d)"
              % (agg["coupled_total"], agg["sts_total"],
                 paper.TABLE3_AGGREGATE["coupled_total"],
                 paper.TABLE3_AGGREGATE["sts_total"]))
    return format_table(
        ["mode", "thread", "schedule", "cycles/device", "devices",
         "paper sched", "paper cyc/dev", "paper devices"],
        table_rows,
        title="Table 3: per-thread interference (priority arbitration)"
    ) + "\n" + footer
