"""Plain-text rendering for experiment results: aligned tables and
horizontal bar charts (the closest a terminal gets to the paper's
figures)."""


def format_table(headers, rows, title=None):
    """Render rows (lists of cells) as an aligned text table."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(entries, title=None, width=50):
    """Render (label, value) pairs as a horizontal bar chart."""
    if not entries:
        return title or ""
    peak = max(value for __, value in entries) or 1
    label_width = max(len(label) for label, __ in entries)
    lines = []
    if title:
        lines.append(title)
    for label, value in entries:
        bar = "#" * max(1, int(round(width * value / peak)))
        lines.append("%s  %s %s"
                     % (label.ljust(label_width), bar, _fmt(value)))
    return "\n".join(lines)


def format_grid(values, row_labels, col_labels, title=None):
    """Render a 2-D dict ``values[(row, col)]`` as a matrix table."""
    headers = [""] + [str(c) for c in col_labels]
    rows = []
    for row in row_labels:
        rows.append([str(row)] + [values.get((row, col), "")
                                  for col in col_labels])
    return format_table(headers, rows, title=title)


def _fmt(cell):
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)
