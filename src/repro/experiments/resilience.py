"""Resilience sweep: performance under degradation (a workload axis
beyond the paper's Figures 5-8).

A seeded :class:`~repro.sim.faults.FaultPlan` of ``unit_offline``
windows is replayed against every mode of every benchmark at a range
of fault rates; the same plan is shared by every mode of a benchmark
so the modes face identical disturbances.  The arbiter re-routes the
pending operations of an offline unit to surviving units of the same
class — runtime rescheduling, the paper's thesis, exercised under
faults the compile-time scheduler could not have anticipated.  Every
run's numeric output is still validated against the Python reference,
so the table demonstrates *correct* degraded execution, not just
survival.

::

    python -m repro.experiments resilience [--quick]
"""

from ..machine import baseline
from ..programs import get_benchmark
from ..programs.suite import BENCHMARK_ORDER
from ..sim.faults import FaultPlan
from .report import format_grid
from .runner import Harness, RunSpec

MODES = ("sts", "tpe", "coupled")
#: Expected unit-offline windows per 1000 cycles.
RATES = (0.0, 1.0, 2.0, 4.0)
QUICK_RATES = (0.0, 4.0)
FAULT_SEED = 7

#: Sentinel cell value for a collected failure (render shows FAILED;
#: ratios against it come out None).
FAILED = "failed"


def run(harness=None, config=None, rates=RATES, benchmarks=BENCHMARK_ORDER,
        fault_seed=FAULT_SEED, workers=None, on_error="raise"):
    """Simulate every (benchmark, mode, rate) cell; returns a dict of
    ``(benchmark, mode, rate) -> cycles`` (:data:`FAILED` for cells
    collected as failures under ``on_error="collect"``)."""
    harness = harness or Harness()
    config = config or baseline()
    cells = {}
    # Fault-free baselines first: they size each benchmark's fault-plan
    # horizon, so they must complete before the faulted grid exists.
    per_benchmark = {}
    baseline_specs = []
    for benchmark in benchmarks:
        modes = [m for m in MODES
                 if m in get_benchmark(benchmark).modes]
        per_benchmark[benchmark] = modes
        baseline_specs.extend(RunSpec(benchmark, mode, config)
                              for mode in modes)
    baseline_results = dict(zip(
        [(s.benchmark, s.mode) for s in baseline_specs],
        harness.run_many(baseline_specs, workers=workers,
                         on_error=on_error)))
    fault_specs = []
    for benchmark, modes in per_benchmark.items():
        survivors = [baseline_results[(benchmark, mode)]
                     for mode in modes
                     if baseline_results[(benchmark, mode)].ok]
        for mode in modes:
            result = baseline_results[(benchmark, mode)]
            cells[(benchmark, mode, 0.0)] = \
                result.cycles if result.ok else FAILED
        if not survivors:
            continue        # no horizon — skip this benchmark's faults
        # One plan horizon per benchmark (spanning its slowest mode)
        # so every mode replays the *same* fault windows.
        horizon = 2 * max(result.cycles for result in survivors)
        for rate in rates:
            if rate <= 0.0:
                continue
            plan = FaultPlan.random(fault_seed, config, rate=rate,
                                    horizon=horizon)
            fault_specs.extend(
                RunSpec(benchmark, mode, config.with_faults(plan),
                        tag=(benchmark, mode, "faults", rate,
                             fault_seed, horizon))
                for mode in modes)
    for spec, result in zip(fault_specs,
                            harness.run_many(fault_specs,
                                             workers=workers,
                                             on_error=on_error)):
        rate = spec.tag[3]
        cells[(spec.benchmark, spec.mode, rate)] = \
            result.cycles if result.ok else FAILED
    return cells


def slowdown(cells, benchmark, mode, rate):
    base = cells.get((benchmark, mode, 0.0))
    faulted = cells.get((benchmark, mode, rate))
    if not base or faulted is None or FAILED in (base, faulted):
        return None
    return faulted / base


def render(cells):
    benchmarks = sorted({key[0] for key in cells},
                        key=BENCHMARK_ORDER.index)
    rates = sorted({key[2] for key in cells})
    sections = []
    for benchmark in benchmarks:
        modes = [m for m in MODES if (benchmark, m, rates[0]) in cells]
        values = {}
        for mode in modes:
            for rate in rates:
                cell = cells.get((benchmark, mode, rate))
                ratio = slowdown(cells, benchmark, mode, rate)
                if cell is None or cell == FAILED:
                    values[(mode, "%g/kc" % rate)] = "FAILED"
                elif ratio is None:
                    values[(mode, "%g/kc" % rate)] = "%d" % cell
                else:
                    values[(mode, "%g/kc" % rate)] = \
                        "%d (%.2fx)" % (cell, ratio)
        sections.append(format_grid(
            values, modes, ["%g/kc" % rate for rate in rates],
            title="Resilience — %s (cycles under unit-offline faults, "
                  "slowdown vs fault-free)" % benchmark))
    top = max(rates)
    summary = ["average slowdown at %g faults/kilocycle:" % top]
    for mode in MODES:
        ratios = [slowdown(cells, benchmark, mode, top)
                  for benchmark in benchmarks
                  if (benchmark, mode, top) in cells]
        ratios = [ratio for ratio in ratios if ratio]
        if ratios:
            summary.append("  %-8s %.2fx" % (mode,
                                             sum(ratios) / len(ratios)))
    summary.append("(every cell is validated against the reference "
                   "output: degraded, never wrong)")
    return "\n\n".join(sections) + "\n" + "\n".join(summary)
