"""Figure 6: Coupled-mode cycle counts under the five restricted
communication schemes, plus the relative interconnect area model."""

from ..machine import baseline
from ..machine.interconnect import ALL_SCHEMES, InterconnectSpec
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness, RunSpec


def run(harness=None, config=None, workers=None, on_error="raise"):
    harness = harness or Harness()
    config = config or baseline()
    grid = [(benchmark, scheme)
            for scheme in ALL_SCHEMES
            for benchmark in BENCHMARK_ORDER]
    results = harness.run_many(
        [RunSpec(benchmark, "coupled", config.with_interconnect(scheme))
         for benchmark, scheme in grid],
        workers=workers, on_error=on_error)
    cells = {(benchmark, scheme.value): result.cycles
             for (benchmark, scheme), result in zip(grid, results)
             if result.ok}
    areas = {
        scheme.value: InterconnectSpec.from_scheme(scheme).relative_area(
            n_clusters=4, units_per_cluster=3)
        for scheme in ALL_SCHEMES}
    return {"cycles": cells, "areas": areas}


def overhead_vs_full(data, scheme):
    """Average cycle overhead of a scheme relative to Full, over the
    benchmarks with both cells present (None when there are none)."""
    ratios = []
    for benchmark in BENCHMARK_ORDER:
        full = data["cycles"].get((benchmark, "full"))
        restricted = data["cycles"].get((benchmark, scheme))
        if not full or restricted is None:
            continue
        ratios.append(restricted / full - 1.0)
    return sum(ratios) / len(ratios) if ratios else None


def render(data):
    scheme_names = [s.value for s in ALL_SCHEMES]
    grid = format_grid(
        {key: value for key, value in data["cycles"].items()},
        BENCHMARK_ORDER, scheme_names,
        title="Figure 6: Coupled cycles under restricted communication")
    lines = [grid, ""]
    for scheme in scheme_names:
        if scheme == "full":
            continue
        overhead = overhead_vs_full(data, scheme)
        if overhead is None:
            lines.append("%-12s overhead vs full: n/a (cells failed)"
                         % scheme)
            continue
        lines.append("%-12s overhead vs full: %5.1f%%  relative area: %.2f"
                     % (scheme, 100 * overhead,
                        data["areas"][scheme]))
    lines.append("(paper: Tri-port needs ~4% more cycles than Full at "
                 "~28% of its interconnect area)")
    return "\n".join(lines)
