"""Figure 6: Coupled-mode cycle counts under the five restricted
communication schemes, plus the relative interconnect area model."""

from ..machine import baseline
from ..machine.interconnect import ALL_SCHEMES, InterconnectSpec
from ..programs.suite import BENCHMARK_ORDER
from .report import format_grid
from .runner import Harness


def run(harness=None, config=None):
    harness = harness or Harness()
    config = config or baseline()
    cells = {}
    for scheme in ALL_SCHEMES:
        scheme_config = config.with_interconnect(scheme)
        for benchmark in BENCHMARK_ORDER:
            result = harness.run(benchmark, "coupled", scheme_config)
            cells[(benchmark, scheme.value)] = result.cycles
    areas = {
        scheme.value: InterconnectSpec.from_scheme(scheme).relative_area(
            n_clusters=4, units_per_cluster=3)
        for scheme in ALL_SCHEMES}
    return {"cycles": cells, "areas": areas}


def overhead_vs_full(data, scheme):
    """Average cycle overhead of a scheme relative to Full."""
    ratios = []
    for benchmark in BENCHMARK_ORDER:
        full = data["cycles"][(benchmark, "full")]
        ratios.append(data["cycles"][(benchmark, scheme)] / full - 1.0)
    return sum(ratios) / len(ratios)


def render(data):
    scheme_names = [s.value for s in ALL_SCHEMES]
    grid = format_grid(
        {(b, s): data["cycles"][(b, s)] for b in BENCHMARK_ORDER
         for s in scheme_names},
        BENCHMARK_ORDER, scheme_names,
        title="Figure 6: Coupled cycles under restricted communication")
    lines = [grid, ""]
    for scheme in scheme_names:
        if scheme == "full":
            continue
        lines.append("%-12s overhead vs full: %5.1f%%  relative area: %.2f"
                     % (scheme, 100 * overhead_vs_full(data, scheme),
                        data["areas"][scheme]))
    lines.append("(paper: Tri-port needs ~4% more cycles than Full at "
                 "~28% of its interconnect area)")
    return "\n".join(lines)
