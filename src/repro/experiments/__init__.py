"""Experiment harnesses regenerating every table and figure of the
paper's evaluation (Section 4):

* Table 2 / Figure 4 — baseline mode comparison (:mod:`table2`)
* Figure 5 — unit utilization breakdown (:mod:`figure5`)
* Table 3 — thread interference (:mod:`table3`)
* Figure 6 — restricted communication (:mod:`figure6`)
* Figure 7 — variable memory latency (:mod:`figure7`)
* Figure 8 — number and mix of function units (:mod:`figure8`)

Run them from the command line::

    python -m repro.experiments table2
    python -m repro.experiments all
"""

from . import figure5, figure6, figure7, figure8, paper, table2, table3
from .runner import Harness, RunResult, RunSpec
from .supervision import SupervisorPolicy, SweepJournal

__all__ = ["figure5", "figure6", "figure7", "figure8", "paper",
           "table2", "table3", "Harness", "RunResult", "RunSpec",
           "SupervisorPolicy", "SweepJournal"]
