"""Exception hierarchy for the processor-coupling reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single except clause while the
subclasses preserve which layer failed (machine description, compiler,
assembler, or simulator).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine configuration was constructed or requested."""


class FaultConfigError(ConfigError):
    """An ill-formed fault-injection plan or event."""


class AsmError(ReproError):
    """Malformed assembly text or an ill-formed in-memory program."""


class CompileError(ReproError):
    """The compiler rejected a source program."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form: %s)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """The simulator detected an inconsistent machine state."""


class DeadlockError(SimulationError):
    """No thread can make progress and nothing is in flight.

    ``blocked`` holds (tid, name, word, reason) rows for every stuck
    thread; ``wait_for`` holds the detected wait-for cycle as a list of
    alternating thread/resource labels (empty when no cycle exists,
    e.g. a dangling wait on an address nothing will ever fill).
    """

    def __init__(self, message, blocked=None, wait_for=None):
        super().__init__(message)
        self.blocked = list(blocked or ())
        self.wait_for = list(wait_for or ())


class WatchdogError(SimulationError):
    """The simulator ran out of its cycle budget or made no forward
    progress (livelock) for the configured watchdog window.

    ``cycle`` is where the run was cut, ``last_progress_cycle`` the
    last cycle on which any operation issued, completed, or wrote back,
    and ``blocked`` holds (tid, name, word, reason) rows describing
    why each live thread cannot proceed.
    """

    def __init__(self, message, cycle=None, last_progress_cycle=None,
                 blocked=None):
        super().__init__(message)
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.blocked = list(blocked or ())


class InterpError(ReproError):
    """The reference interpreter rejected or could not run a program."""


class VerificationError(ReproError):
    """A simulation completed but its numeric output did not match the
    reference interpreter.

    Carries everything needed to reproduce the cell from the error
    alone: benchmark, mode, the config's ``run_signature()`` digest
    prefix, and the harness input seed.  ``problems`` holds every
    mismatch; the message shows the first three plus the total count.
    """

    SHOWN = 3

    def __init__(self, benchmark, mode, config_name, problems,
                 signature=None, seed=None):
        self.benchmark = benchmark
        self.mode = mode
        self.config_name = config_name
        self.problems = list(problems)
        self.signature = signature
        self.seed = seed
        shown = self.problems[:self.SHOWN]
        more = len(self.problems) - len(shown)
        message = ("%s/%s on %s produced wrong results: %d problem(s)"
                   % (benchmark, mode, config_name, len(self.problems)))
        message += ": %s" % (shown,)
        if more > 0:
            message += " (+%d more)" % more
        message += (" [run_signature=%s seed=%s]"
                    % (signature or "?", seed if seed is not None else "?"))
        super().__init__(message)


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its wall-clock budget under supervised
    execution (``run_many(..., cell_timeout=...)``).  The hung worker
    is killed and the pool rebuilt; the cell is not retried (the
    simulator's own watchdog covers in-simulation livelock — a harness
    timeout means even that never fired)."""

    def __init__(self, benchmark, mode, timeout):
        super().__init__("%s/%s exceeded the %.1fs cell timeout"
                         % (benchmark, mode, timeout))
        self.benchmark = benchmark
        self.mode = mode
        self.timeout = timeout


class WorkerCrashError(ReproError):
    """A sweep worker process died (segfault, OOM kill, ...) while
    executing a cell, and retries were exhausted."""

    def __init__(self, benchmark, mode, attempts, cause=None):
        super().__init__(
            "%s/%s: worker process died (%d attempt(s)%s)"
            % (benchmark, mode, attempts,
               "; last error: %s" % cause if cause else ""))
        self.benchmark = benchmark
        self.mode = mode
        self.attempts = attempts
        self.cause = cause


class SweepJournalError(ReproError):
    """A sweep journal cannot be used for resume: its header records
    different harness parameters (seed, cycle budget, ...) than the
    sweep being resumed, so replaying its cells would mix results from
    two different experiments."""


class CellFailure:
    """Structured record of one failed sweep cell.

    Not an exception: with ``on_error="collect"`` these appear in the
    ``run_many`` result list *in place of* :class:`RunResult` for the
    cells that failed, so a sweep survives individual-cell failure and
    the caller can render/skip/retry them.  ``ok`` distinguishes the
    two result kinds without isinstance checks.
    """

    ok = False

    def __init__(self, benchmark, mode, error_type, message,
                 attempts=1, timed_out=False, key_digest=None):
        self.benchmark = benchmark
        self.mode = mode
        self.error_type = error_type
        self.message = message
        self.attempts = attempts
        self.timed_out = timed_out
        self.key_digest = key_digest

    @classmethod
    def from_exception(cls, benchmark, mode, exc, attempts=1,
                       key_digest=None):
        return cls(benchmark, mode, type(exc).__name__, str(exc),
                   attempts=attempts,
                   timed_out=isinstance(exc, CellTimeoutError),
                   key_digest=key_digest)

    def as_record(self):
        """JSON-serializable shape (journal lines, bench reports)."""
        return {"benchmark": self.benchmark, "mode": self.mode,
                "error_type": self.error_type, "message": self.message,
                "attempts": self.attempts, "timed_out": self.timed_out}

    def __repr__(self):
        return ("CellFailure(%s/%s %s: %s after %d attempt(s))"
                % (self.benchmark, self.mode, self.error_type,
                   self.message, self.attempts))
