"""Exception hierarchy for the processor-coupling reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single except clause while the
subclasses preserve which layer failed (machine description, compiler,
assembler, or simulator).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine configuration was constructed or requested."""


class FaultConfigError(ConfigError):
    """An ill-formed fault-injection plan or event."""


class AsmError(ReproError):
    """Malformed assembly text or an ill-formed in-memory program."""


class CompileError(ReproError):
    """The compiler rejected a source program."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form: %s)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """The simulator detected an inconsistent machine state."""


class DeadlockError(SimulationError):
    """No thread can make progress and nothing is in flight.

    ``blocked`` holds (tid, name, word, reason) rows for every stuck
    thread; ``wait_for`` holds the detected wait-for cycle as a list of
    alternating thread/resource labels (empty when no cycle exists,
    e.g. a dangling wait on an address nothing will ever fill).
    ``fusion`` (fused event kernel only) is a dict describing the
    superblock machinery at the moment of death: last dispatched span
    entry point, per-reason de-fusion counters, quarantined entries,
    and the interleaved promotion-ladder state.
    """

    def __init__(self, message, blocked=None, wait_for=None, fusion=None):
        super().__init__(message)
        self.blocked = list(blocked or ())
        self.wait_for = list(wait_for or ())
        self.fusion = fusion


class WatchdogError(SimulationError):
    """The simulator ran out of its cycle budget or made no forward
    progress (livelock) for the configured watchdog window.

    ``cycle`` is where the run was cut, ``last_progress_cycle`` the
    last cycle on which any operation issued, completed, or wrote back,
    and ``blocked`` holds (tid, name, word, reason) rows describing
    why each live thread cannot proceed.  ``fusion`` carries the fused
    kernel's superblock context (see :class:`DeadlockError`) so a hang
    inside or around a fused span is debuggable without a rerun.
    """

    def __init__(self, message, cycle=None, last_progress_cycle=None,
                 blocked=None, fusion=None):
        super().__init__(message)
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.blocked = list(blocked or ())
        self.fusion = fusion


class SanitizerError(SimulationError):
    """The runtime state sanitizer (``repro.sim.sanitize``) tripped.

    ``report`` is the structured :class:`~repro.sim.sanitize.
    SanitizerReport` dict; ``bundle_path`` points at the replayable
    reproducer bundle extracted at trip time (``repro replay <path>``
    re-executes it deterministically).  Both survive a round trip
    through a process pool: sweep workers raise these and the
    supervisor rebuilds them on the parent side.
    """

    def __init__(self, message, report=None, bundle_path=None):
        super().__init__(message)
        self.report = report
        self.bundle_path = bundle_path

    def __reduce__(self):
        # The default Exception reduce carries only args; keep the
        # report dict and bundle path across pickling so CellFailure
        # can attach the reproducer on the pool's parent side.
        return (self.__class__,
                (self.args[0], self.report, self.bundle_path))


class InvariantViolation(SanitizerError):
    """Tier-1: a strided architectural-invariant audit failed (presence
    bitmasks, completion-heap monotonicity, lost wakeups, arbiter
    starvation bounds, opcache fill-board consistency).  ``cycle`` is
    the audited cycle; ``violations`` lists every failed check."""

    def __init__(self, message, cycle=None, violations=None, report=None,
                 bundle_path=None):
        super().__init__(message, report=report, bundle_path=bundle_path)
        self.cycle = cycle
        self.violations = list(violations or ())

    def __reduce__(self):
        return (self.__class__,
                (self.args[0], self.cycle, self.violations, self.report,
                 self.bundle_path))


class DivergenceError(SanitizerError):
    """Tier-2: the fused run diverged from its shadow reference and
    graceful de-optimization could not converge them (quarantining the
    suspect superblocks and finally disabling fusion outright still
    reproduced the mismatch), so the divergence is not the fused
    path's fault — the state itself is corrupt."""


class InterpError(ReproError):
    """The reference interpreter rejected or could not run a program."""


class VerificationError(ReproError):
    """A simulation completed but its numeric output did not match the
    reference interpreter.

    Carries everything needed to reproduce the cell from the error
    alone: benchmark, mode, the config's ``run_signature()`` digest
    prefix, and the harness input seed.  ``problems`` holds every
    mismatch; the message shows the first three plus the total count.
    """

    SHOWN = 3

    def __init__(self, benchmark, mode, config_name, problems,
                 signature=None, seed=None):
        self.benchmark = benchmark
        self.mode = mode
        self.config_name = config_name
        self.problems = list(problems)
        self.signature = signature
        self.seed = seed
        shown = self.problems[:self.SHOWN]
        more = len(self.problems) - len(shown)
        message = ("%s/%s on %s produced wrong results: %d problem(s)"
                   % (benchmark, mode, config_name, len(self.problems)))
        message += ": %s" % (shown,)
        if more > 0:
            message += " (+%d more)" % more
        message += (" [run_signature=%s seed=%s]"
                    % (signature or "?", seed if seed is not None else "?"))
        super().__init__(message)


class CellTimeoutError(ReproError):
    """A sweep cell exceeded its wall-clock budget under supervised
    execution (``run_many(..., cell_timeout=...)``).  The hung worker
    is killed and the pool rebuilt; the cell is not retried (the
    simulator's own watchdog covers in-simulation livelock — a harness
    timeout means even that never fired)."""

    def __init__(self, benchmark, mode, timeout):
        super().__init__("%s/%s exceeded the %.1fs cell timeout"
                         % (benchmark, mode, timeout))
        self.benchmark = benchmark
        self.mode = mode
        self.timeout = timeout


class WorkerCrashError(ReproError):
    """A sweep worker process died (segfault, OOM kill, ...) while
    executing a cell, and retries were exhausted."""

    def __init__(self, benchmark, mode, attempts, cause=None):
        super().__init__(
            "%s/%s: worker process died (%d attempt(s)%s)"
            % (benchmark, mode, attempts,
               "; last error: %s" % cause if cause else ""))
        self.benchmark = benchmark
        self.mode = mode
        self.attempts = attempts
        self.cause = cause


class SweepJournalError(ReproError):
    """A sweep journal cannot be used for resume: its header records
    different harness parameters (seed, cycle budget, ...) than the
    sweep being resumed, so replaying its cells would mix results from
    two different experiments."""


class CellFailure:
    """Structured record of one failed sweep cell.

    Not an exception: with ``on_error="collect"`` these appear in the
    ``run_many`` result list *in place of* :class:`RunResult` for the
    cells that failed, so a sweep survives individual-cell failure and
    the caller can render/skip/retry them.  ``ok`` distinguishes the
    two result kinds without isinstance checks.
    """

    ok = False

    def __init__(self, benchmark, mode, error_type, message,
                 attempts=1, timed_out=False, key_digest=None,
                 reproducer=None):
        self.benchmark = benchmark
        self.mode = mode
        self.error_type = error_type
        self.message = message
        self.attempts = attempts
        self.timed_out = timed_out
        self.key_digest = key_digest
        # Sanitizer trips attach the reproducer bundle path extracted
        # at trip time; ``repro replay <path>`` re-executes it.
        self.reproducer = reproducer

    @classmethod
    def from_exception(cls, benchmark, mode, exc, attempts=1,
                       key_digest=None):
        return cls(benchmark, mode, type(exc).__name__, str(exc),
                   attempts=attempts,
                   timed_out=isinstance(exc, CellTimeoutError),
                   key_digest=key_digest,
                   reproducer=getattr(exc, "bundle_path", None))

    def as_record(self):
        """JSON-serializable shape (journal lines, bench reports)."""
        record = {"benchmark": self.benchmark, "mode": self.mode,
                  "error_type": self.error_type, "message": self.message,
                  "attempts": self.attempts, "timed_out": self.timed_out}
        if self.reproducer is not None:
            record["reproducer"] = self.reproducer
        return record

    def __repr__(self):
        return ("CellFailure(%s/%s %s: %s after %d attempt(s))"
                % (self.benchmark, self.mode, self.error_type,
                   self.message, self.attempts))
