"""Exception hierarchy for the processor-coupling reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single except clause while the
subclasses preserve which layer failed (machine description, compiler,
assembler, or simulator).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine configuration was constructed or requested."""


class AsmError(ReproError):
    """Malformed assembly text or an ill-formed in-memory program."""


class CompileError(ReproError):
    """The compiler rejected a source program."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form: %s)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """The simulator detected an inconsistent machine state."""


class DeadlockError(SimulationError):
    """No thread can make progress and nothing is in flight."""


class InterpError(ReproError):
    """The reference interpreter rejected or could not run a program."""
