"""Exception hierarchy for the processor-coupling reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with a single except clause while the
subclasses preserve which layer failed (machine description, compiler,
assembler, or simulator).
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """An invalid machine configuration was constructed or requested."""


class FaultConfigError(ConfigError):
    """An ill-formed fault-injection plan or event."""


class AsmError(ReproError):
    """Malformed assembly text or an ill-formed in-memory program."""


class CompileError(ReproError):
    """The compiler rejected a source program."""

    def __init__(self, message, form=None):
        if form is not None:
            message = "%s (in form: %s)" % (message, form)
        super().__init__(message)
        self.form = form


class SimulationError(ReproError):
    """The simulator detected an inconsistent machine state."""


class DeadlockError(SimulationError):
    """No thread can make progress and nothing is in flight.

    ``blocked`` holds (tid, name, word, reason) rows for every stuck
    thread; ``wait_for`` holds the detected wait-for cycle as a list of
    alternating thread/resource labels (empty when no cycle exists,
    e.g. a dangling wait on an address nothing will ever fill).
    """

    def __init__(self, message, blocked=None, wait_for=None):
        super().__init__(message)
        self.blocked = list(blocked or ())
        self.wait_for = list(wait_for or ())


class WatchdogError(SimulationError):
    """The simulator ran out of its cycle budget or made no forward
    progress (livelock) for the configured watchdog window.

    ``cycle`` is where the run was cut, ``last_progress_cycle`` the
    last cycle on which any operation issued, completed, or wrote back,
    and ``blocked`` holds (tid, name, word, reason) rows describing
    why each live thread cannot proceed.
    """

    def __init__(self, message, cycle=None, last_progress_cycle=None,
                 blocked=None):
        super().__init__(message)
        self.cycle = cycle
        self.last_progress_cycle = last_progress_cycle
        self.blocked = list(blocked or ())


class InterpError(ReproError):
    """The reference interpreter rejected or could not run a program."""
