"""Textual assembly for processor-coupled programs.

The compiler emits this format (mirroring the paper's compiler, which
produced assembly code for the simulator), and the simulator's loader
accepts it, so hand-written kernels and round-trip tests are easy.

Grammar sketch::

    ; comment
    .symbol NAME SIZE full|empty
    .thread NAME [params=c0.r0,c0.r1]
    LABEL:
    {
      c0.iu0: iadd c0.r1, c0.r2, #4
      c0.fpu0: fmul c1.r3 & c0.r5, c0.r4, c0.r6
      c4.bru0: brt c0.r1, LABEL
      c4.bru0: fork CHILD [c0.r0=c0.r9, c0.r1=#3]
    }

Each ``{ ... }`` block is one wide instruction word; destinations are
joined with ``&`` (at most two); immediates are written ``#value``.
"""

from ..errors import AsmError
from .instruction import InstructionWord, Operation, Program, ThreadProgram
from .operands import Imm, Label, Reg, parse_operand, parse_reg
from .operations import opcode


def emit_operation(op):
    """Render one operation in the canonical text form."""
    fields = []
    if op.dests:
        fields.append(" & ".join(str(d) for d in op.dests))
    fields.extend(str(s) for s in op.srcs)
    if op.target is not None:
        fields.append(op.target.name)
    text = op.name
    if fields:
        text += " " + ", ".join(fields)
    if op.bindings:
        inner = ", ".join("%s=%s" % (reg, value)
                          for reg, value in op.bindings)
        text += " [" + inner + "]"
    return text


def emit(program):
    """Serialize a :class:`Program` to assembly text."""
    lines = []
    # Base-address order: the parser allocates sequentially, so this is
    # what makes emit/parse preserve every symbol's address.
    for sym in sorted(program.data.symbols.values(),
                      key=lambda s: s.base):
        state = "full" if sym.initially_full else "empty"
        lines.append(".symbol %s %d %s" % (sym.name, sym.size, state))
    thread_names = [program.main] + sorted(
        n for n in program.threads if n != program.main)
    for thread_name in thread_names:
        thread = program.threads[thread_name]
        header = ".thread %s" % thread.name
        if thread.param_regs:
            header += " params=%s" % ",".join(str(r)
                                              for r in thread.param_regs)
        lines.append(header)
        labels_at = {}
        for label, index in thread.labels.items():
            labels_at.setdefault(index, []).append(label)
        for index, word in enumerate(thread.instructions):
            for label in sorted(labels_at.get(index, [])):
                lines.append("%s:" % label)
            lines.append("{")
            for uid, op in word:
                lines.append("  %s: %s" % (uid, emit_operation(op)))
            lines.append("}")
        for label in sorted(labels_at.get(len(thread.instructions), [])):
            lines.append("%s:" % label)
    return "\n".join(lines) + "\n"


def _split_commas(text):
    """Split on top-level commas (none are nested in this grammar)."""
    return [part.strip() for part in text.split(",") if part.strip()]


def parse_operation(text):
    """Parse the canonical text form back into an :class:`Operation`."""
    text = text.strip()
    name, __, rest = text.partition(" ")
    spec = opcode(name)
    rest = rest.strip()
    bindings = []
    if spec.is_fork:
        if "[" in rest:
            rest, __, binding_text = rest.partition("[")
            binding_text = binding_text.rstrip()
            if not binding_text.endswith("]"):
                raise AsmError("fork: unterminated bindings in %r" % text)
            for pair in _split_commas(binding_text[:-1]):
                child_text, __, value_text = pair.partition("=")
                bindings.append((parse_reg(child_text),
                                 parse_operand(value_text)))
        target = Label(rest.strip().rstrip(","))
        if not target.name:
            raise AsmError("fork: missing target in %r" % text)
        return Operation(name, target=target, bindings=tuple(bindings))
    fields = _split_commas(rest)
    target = None
    if spec.is_branch:
        if not fields:
            raise AsmError("%s: missing label in %r" % (name, text))
        target = Label(fields.pop())
    dests = ()
    if spec.has_dest:
        if not fields:
            raise AsmError("%s: missing destination in %r" % (name, text))
        dests = tuple(parse_reg(part)
                      for part in fields.pop(0).split("&"))
    srcs = tuple(parse_operand(part) for part in fields)
    return Operation(name, dests=dests, srcs=srcs, target=target)


def parse(text, main="main"):
    """Parse assembly text into a :class:`Program`."""
    program = Program(main=main)
    thread = None
    word_slots = None
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        try:
            if line.startswith(".symbol"):
                parts = line.split()
                if len(parts) != 4 or parts[3] not in ("full", "empty"):
                    raise AsmError("malformed .symbol directive")
                program.data.declare(parts[1], int(parts[2]),
                                     initially_full=parts[3] == "full")
            elif line.startswith(".thread"):
                parts = line.split()
                params = []
                for part in parts[2:]:
                    if part.startswith("params="):
                        params = [parse_reg(p)
                                  for p in part[len("params="):].split(",")
                                  if p]
                thread = program.add_thread(
                    ThreadProgram(parts[1], param_regs=params))
            elif line.startswith("{") and line.endswith("}") and \
                    len(line) > 1:
                # One-line form: { uid: op ; uid: op }
                if thread is None:
                    raise AsmError("instruction outside .thread")
                if word_slots is not None:
                    raise AsmError("nested instruction word")
                slots = {}
                for part in line[1:-1].split(" ; "):
                    part = part.strip()
                    if not part:
                        continue
                    uid, __, op_text = part.partition(":")
                    if not op_text:
                        raise AsmError("missing ':' after unit id")
                    uid = uid.strip()
                    if uid in slots:
                        raise AsmError("unit %s used twice in one word"
                                       % uid)
                    slots[uid] = parse_operation(op_text)
                thread.append(InstructionWord(slots))
            elif line == "{":
                if thread is None:
                    raise AsmError("instruction outside .thread")
                if word_slots is not None:
                    raise AsmError("nested instruction word")
                word_slots = {}
            elif line == "}":
                if word_slots is None:
                    raise AsmError("unmatched '}'")
                thread.append(InstructionWord(word_slots))
                word_slots = None
            elif line.endswith(":") and word_slots is None:
                if thread is None:
                    raise AsmError("label outside .thread")
                thread.add_label(line[:-1].strip())
            else:
                if word_slots is None:
                    raise AsmError("operation outside instruction word")
                uid, __, op_text = line.partition(":")
                if not op_text:
                    raise AsmError("missing ':' after unit id")
                uid = uid.strip()
                if uid in word_slots:
                    raise AsmError("unit %s used twice in one word" % uid)
                word_slots[uid] = parse_operation(op_text)
        except AsmError as exc:
            raise AsmError("line %d: %s" % (line_no, exc))
    if word_slots is not None:
        raise AsmError("unterminated instruction word at end of input")
    program.validate()
    return program
