"""Wide instruction words and thread programs.

A thread's compiled code is a *sparse matrix of operations* (paper,
Section 2): each row is one :class:`InstructionWord`, each column an
operation field for one function unit.  A :class:`Program` bundles the
thread programs together with the node's initial memory image.
"""

from dataclasses import dataclass, field

from ..errors import AsmError
from .operands import Imm, Label, Reg, is_source
from .operations import UnitClass, opcode


def unit_id(cluster, kind, index=0):
    """Build the canonical unit identifier string, e.g. ``c0.iu0``."""
    kind_name = kind.value if isinstance(kind, UnitClass) else str(kind)
    return "c%d.%s%d" % (cluster, kind_name, index)


def parse_unit_id(text):
    """Split ``c0.iu0`` into ``(cluster, UnitClass, index)``."""
    text = text.strip()
    if not text.startswith("c") or "." not in text:
        raise AsmError("malformed unit id %r" % text)
    cluster_part, __, unit_part = text[1:].partition(".")
    for kind in UnitClass:
        if unit_part.startswith(kind.value):
            suffix = unit_part[len(kind.value):]
            try:
                return int(cluster_part), kind, int(suffix)
            except ValueError:
                break
    raise AsmError("malformed unit id %r" % text)


@dataclass(frozen=True)
class Operation:
    """One operation: opcode, destinations, sources, control payload.

    * ``dests`` holds at most two registers (the paper's limit on
      simultaneous register destinations), possibly in different
      clusters.
    * ``target`` names the branch/fork destination label.
    * ``bindings`` (fork only) lists ``(child_reg, parent_source)``
      pairs copied into the spawned thread's register set.
    """

    name: str
    dests: tuple = ()
    srcs: tuple = ()
    target: object = None
    bindings: tuple = ()

    def __post_init__(self):
        spec = opcode(self.name)
        if len(self.dests) > 2:
            raise AsmError("%s: more than two destinations" % self.name)
        if spec.has_dest and not self.dests:
            raise AsmError("%s: missing destination" % self.name)
        if not spec.has_dest and self.dests:
            raise AsmError("%s: unexpected destination" % self.name)
        if len(self.srcs) != spec.n_srcs:
            raise AsmError("%s: expected %d sources, got %d"
                           % (self.name, spec.n_srcs, len(self.srcs)))
        for dest in self.dests:
            if not isinstance(dest, Reg):
                raise AsmError("%s: destination %r is not a register"
                               % (self.name, dest))
        for src in self.srcs:
            if not is_source(src):
                raise AsmError("%s: bad source %r" % (self.name, src))
        if (spec.is_branch or spec.is_fork) and not isinstance(self.target,
                                                               Label):
            raise AsmError("%s: missing target label" % self.name)
        for child_reg, value in self.bindings:
            if not isinstance(child_reg, Reg) or not is_source(value):
                raise AsmError("fork: bad binding (%r, %r)"
                               % (child_reg, value))

    @property
    def spec(self):
        return opcode(self.name)

    def source_regs(self):
        """Registers this operation reads (bindings included for fork)."""
        regs = [src for src in self.srcs if isinstance(src, Reg)]
        regs.extend(value for __, value in self.bindings
                    if isinstance(value, Reg))
        return regs

    def __str__(self):
        parts = []
        if self.dests:
            parts.append(" & ".join(str(d) for d in self.dests))
        parts.extend(str(s) for s in self.srcs)
        text = self.name
        if parts:
            text += " " + ", ".join(parts)
        if self.target is not None:
            text += " " + self.target.name
        if self.bindings:
            inner = ", ".join("%s=%s" % (reg, value)
                              for reg, value in self.bindings)
            text += " [" + inner + "]"
        return text


class InstructionWord:
    """One row of the sparse operation matrix: unit id -> Operation."""

    def __init__(self, slots=None):
        self.slots = dict(slots or {})
        self._check()

    def _check(self):
        control_ops = 0
        for uid, op in self.slots.items():
            cluster, kind, __ = parse_unit_id(uid)
            if op.spec.unit is not kind:
                raise AsmError("operation %s cannot run on unit %s"
                               % (op.name, uid))
            if op.spec.unit is UnitClass.BRU:
                control_ops += 1
        if control_ops > 1:
            raise AsmError("more than one control operation in an "
                           "instruction word (the compiler issues at most "
                           "one branch per thread per cycle)")

    def __len__(self):
        return len(self.slots)

    def __iter__(self):
        return iter(sorted(self.slots.items()))

    def operations(self):
        return list(self.slots.values())

    def control_op(self):
        """Return the branch/fork/halt operation of this word, if any."""
        for op in self.slots.values():
            if op.spec.unit is UnitClass.BRU:
                return op
        return None

    def __str__(self):
        inner = " ; ".join("%s: %s" % (uid, op) for uid, op in self)
        return "{ %s }" % inner


class ThreadProgram:
    """A label-annotated sequence of instruction words for one thread.

    ``param_regs`` records where the compiler placed the thread's
    parameters, so fork sites know which registers to initialize.
    """

    def __init__(self, name, instructions=None, labels=None,
                 param_regs=None):
        self.name = name
        self.instructions = list(instructions or [])
        self.labels = dict(labels or {})
        self.param_regs = list(param_regs or [])

    def add_label(self, label_name):
        if label_name in self.labels:
            raise AsmError("duplicate label %r in thread %r"
                           % (label_name, self.name))
        self.labels[label_name] = len(self.instructions)

    def append(self, word):
        self.instructions.append(word)

    def resolve(self, label):
        name = label.name if isinstance(label, Label) else label
        try:
            return self.labels[name]
        except KeyError:
            raise AsmError("undefined label %r in thread %r"
                           % (name, self.name))

    def validate(self):
        """Check label targets and intra-word structural rules."""
        for word in self.instructions:
            for __, op in word:
                if op.target is not None and op.spec.is_branch:
                    self.resolve(op.target)
        for name, index in self.labels.items():
            if not 0 <= index <= len(self.instructions):
                raise AsmError("label %r out of range" % name)

    def __len__(self):
        return len(self.instructions)


@dataclass
class SymbolSpec:
    """One named region of node memory.

    ``initially_full`` selects the initial presence bit of each word;
    the Table 3 style synchronization patterns rely on regions that
    start out empty.
    """

    name: str
    base: int
    size: int
    initially_full: bool = True
    init_values: list = None

    def addresses(self):
        return range(self.base, self.base + self.size)


class DataSegment:
    """The node's initial memory image, addressed by named symbols."""

    def __init__(self):
        self.symbols = {}
        self._next_base = 0

    def declare(self, name, size, initially_full=True, init_values=None):
        if name in self.symbols:
            raise AsmError("duplicate symbol %r" % name)
        if size <= 0:
            raise AsmError("symbol %r must have positive size" % name)
        if init_values is not None and len(init_values) != size:
            raise AsmError("symbol %r: %d init values for size %d"
                           % (name, len(init_values), size))
        spec = SymbolSpec(name, self._next_base, size, initially_full,
                          list(init_values) if init_values else None)
        self.symbols[name] = spec
        self._next_base += size
        return spec

    def __contains__(self, name):
        return name in self.symbols

    def __getitem__(self, name):
        return self.symbols[name]

    def total_size(self):
        return self._next_base


class Program:
    """A complete executable: thread programs plus initial memory."""

    def __init__(self, main="main"):
        self.threads = {}
        self.main = main
        self.data = DataSegment()
        self.register_usage = {}   # thread name -> {cluster: peak regs}

    def add_thread(self, thread):
        if thread.name in self.threads:
            raise AsmError("duplicate thread %r" % thread.name)
        self.threads[thread.name] = thread
        return thread

    def thread(self, name):
        try:
            return self.threads[name]
        except KeyError:
            raise AsmError("undefined thread %r" % name)

    def validate(self):
        if self.main not in self.threads:
            raise AsmError("missing main thread %r" % self.main)
        for thread in self.threads.values():
            thread.validate()
            for word in thread.instructions:
                for __, op in word:
                    if op.spec.is_fork:
                        self.thread(op.target.name)

    def static_operation_count(self):
        return sum(len(word) for thread in self.threads.values()
                   for word in thread.instructions)
