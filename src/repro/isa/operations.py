"""Opcode definitions for the processor-coupled node.

Each opcode is described by an :class:`OpcodeSpec`: which unit class
executes it, how many sources it reads, whether it produces a register
result, and (for arithmetic) a pure semantics function used by both the
simulator and the compiler's constant folder.

Memory opcodes carry the synchronizing precondition/postcondition pairs
of the paper's Table 1 (Tera-style presence bits on every location):

========  =================  ==============
opcode    precondition       postcondition
========  =================  ==============
ld        unconditional      leave as is
ld_ff     wait until full    leave full
ld_fe     wait until full    set empty
st        unconditional      set full
st_ff     wait until full    leave full
st_ef     wait until empty   set full
========  =================  ==============
"""

import math
from dataclasses import dataclass, field
from enum import Enum

from ..errors import AsmError


class UnitClass(Enum):
    """The four function-unit classes of the paper's node."""

    IU = "iu"
    FPU = "fpu"
    MEM = "mem"
    BRU = "bru"

    def __str__(self):
        return self.value


#: Memory access preconditions (paper Table 1).
PRE_ALWAYS = "unconditional"
PRE_FULL = "wait-full"
PRE_EMPTY = "wait-empty"

#: Memory access postconditions (paper Table 1).
POST_KEEP = "leave"
POST_FULL = "set-full"
POST_EMPTY = "set-empty"


@dataclass(frozen=True)
class OpcodeSpec:
    """Static description of one opcode."""

    name: str
    unit: UnitClass
    n_srcs: int
    has_dest: bool
    semantics: object = None       # pure fn(*src_values) -> value, if any
    commutative: bool = False
    is_branch: bool = False        # transfers control (br/brt/brf)
    is_fork: bool = False
    is_halt: bool = False
    is_memory: bool = False
    is_load: bool = False
    is_store: bool = False
    precondition: str = PRE_ALWAYS
    postcondition: str = POST_KEEP
    is_move: bool = False

    @property
    def is_control(self):
        """True for any operation executed by a branch unit."""
        return self.unit is UnitClass.BRU

    def __reduce__(self):
        # Registry specs pickle (and deepcopy) by name: the semantics
        # functions are lambdas, which cannot cross process boundaries,
        # but every spec is interned in ``_REGISTRY`` so a name lookup
        # restores the identical object.  This is what lets compiled
        # programs and simulation results travel to worker processes
        # and live in the on-disk compile cache.
        if _REGISTRY.get(self.name) is self:
            return (opcode, (self.name,))
        return super().__reduce__()


_REGISTRY = {}


def _define(spec):
    if spec.name in _REGISTRY:
        raise ValueError("duplicate opcode %r" % spec.name)
    _REGISTRY[spec.name] = spec
    return spec


def opcode(name):
    """Look up an :class:`OpcodeSpec` by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise AsmError("unknown opcode %r" % name)


def all_opcodes():
    """Return the full opcode registry (name -> spec)."""
    return dict(_REGISTRY)


def _int2(fn):
    return lambda a, b: int(fn(int(a), int(b)))


def _idiv(a, b):
    # C-style truncating division; the simulator traps divide-by-zero.
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _imod(a, b):
    return a - b * _idiv(a, b)


def _bool(x):
    return 1 if x else 0


# --- integer unit -----------------------------------------------------------
_define(OpcodeSpec("iadd", UnitClass.IU, 2, True, _int2(lambda a, b: a + b),
                   commutative=True))
_define(OpcodeSpec("isub", UnitClass.IU, 2, True, _int2(lambda a, b: a - b)))
_define(OpcodeSpec("imul", UnitClass.IU, 2, True, _int2(lambda a, b: a * b),
                   commutative=True))
_define(OpcodeSpec("idiv", UnitClass.IU, 2, True, _idiv))
_define(OpcodeSpec("imod", UnitClass.IU, 2, True, _imod))
_define(OpcodeSpec("iand", UnitClass.IU, 2, True,
                   _int2(lambda a, b: a & b), commutative=True))
_define(OpcodeSpec("ior", UnitClass.IU, 2, True,
                   _int2(lambda a, b: a | b), commutative=True))
_define(OpcodeSpec("ixor", UnitClass.IU, 2, True,
                   _int2(lambda a, b: a ^ b), commutative=True))
_define(OpcodeSpec("ishl", UnitClass.IU, 2, True,
                   _int2(lambda a, b: a << b)))
_define(OpcodeSpec("ishr", UnitClass.IU, 2, True,
                   _int2(lambda a, b: a >> b)))
_define(OpcodeSpec("ineg", UnitClass.IU, 1, True, lambda a: -int(a)))
_define(OpcodeSpec("inot", UnitClass.IU, 1, True, lambda a: ~int(a)))
_define(OpcodeSpec("imin", UnitClass.IU, 2, True,
                   _int2(min), commutative=True))
_define(OpcodeSpec("imax", UnitClass.IU, 2, True,
                   _int2(max), commutative=True))
_define(OpcodeSpec("imov", UnitClass.IU, 1, True, lambda a: a, is_move=True))
# ``sink`` consumes one value and produces nothing.  Its sole purpose is
# synchronization: because operations issue in order, an instruction
# word containing a sink cannot be passed until the sunk value's
# presence bit is set, which is how a thread blocks on a join flag it
# loaded with a synchronizing load.
_define(OpcodeSpec("sink", UnitClass.IU, 1, False,
                   lambda a: None))
_define(OpcodeSpec("ieq", UnitClass.IU, 2, True,
                   lambda a, b: _bool(a == b), commutative=True))
_define(OpcodeSpec("ine", UnitClass.IU, 2, True,
                   lambda a, b: _bool(a != b), commutative=True))
_define(OpcodeSpec("ilt", UnitClass.IU, 2, True, lambda a, b: _bool(a < b)))
_define(OpcodeSpec("ile", UnitClass.IU, 2, True, lambda a, b: _bool(a <= b)))
_define(OpcodeSpec("igt", UnitClass.IU, 2, True, lambda a, b: _bool(a > b)))
_define(OpcodeSpec("ige", UnitClass.IU, 2, True, lambda a, b: _bool(a >= b)))

# --- floating point unit ----------------------------------------------------
_define(OpcodeSpec("fadd", UnitClass.FPU, 2, True,
                   lambda a, b: float(a) + float(b), commutative=True))
_define(OpcodeSpec("fsub", UnitClass.FPU, 2, True,
                   lambda a, b: float(a) - float(b)))
_define(OpcodeSpec("fmul", UnitClass.FPU, 2, True,
                   lambda a, b: float(a) * float(b), commutative=True))
_define(OpcodeSpec("fdiv", UnitClass.FPU, 2, True,
                   lambda a, b: float(a) / float(b)))
_define(OpcodeSpec("fneg", UnitClass.FPU, 1, True, lambda a: -float(a)))
_define(OpcodeSpec("fabs", UnitClass.FPU, 1, True, lambda a: abs(float(a))))
_define(OpcodeSpec("fsqrt", UnitClass.FPU, 1, True,
                   lambda a: math.sqrt(float(a))))
_define(OpcodeSpec("fmin", UnitClass.FPU, 2, True,
                   lambda a, b: min(float(a), float(b)), commutative=True))
_define(OpcodeSpec("fmax", UnitClass.FPU, 2, True,
                   lambda a, b: max(float(a), float(b)), commutative=True))
_define(OpcodeSpec("fmov", UnitClass.FPU, 1, True, lambda a: a,
                   is_move=True))
_define(OpcodeSpec("itof", UnitClass.FPU, 1, True, lambda a: float(a)))
_define(OpcodeSpec("ftoi", UnitClass.FPU, 1, True, lambda a: int(a)))
_define(OpcodeSpec("feq", UnitClass.FPU, 2, True,
                   lambda a, b: _bool(a == b), commutative=True))
_define(OpcodeSpec("fne", UnitClass.FPU, 2, True,
                   lambda a, b: _bool(a != b), commutative=True))
_define(OpcodeSpec("flt", UnitClass.FPU, 2, True, lambda a, b: _bool(a < b)))
_define(OpcodeSpec("fle", UnitClass.FPU, 2, True, lambda a, b: _bool(a <= b)))
_define(OpcodeSpec("fgt", UnitClass.FPU, 2, True, lambda a, b: _bool(a > b)))
_define(OpcodeSpec("fge", UnitClass.FPU, 2, True, lambda a, b: _bool(a >= b)))

# --- memory unit (Table 1) --------------------------------------------------
# Loads read (index, base) sources; the memory unit performs the address
# addition itself, exactly as the paper states.  Stores read
# (value, index, base).
_define(OpcodeSpec("ld", UnitClass.MEM, 2, True, is_memory=True,
                   is_load=True, precondition=PRE_ALWAYS,
                   postcondition=POST_KEEP))
_define(OpcodeSpec("ld_ff", UnitClass.MEM, 2, True, is_memory=True,
                   is_load=True, precondition=PRE_FULL,
                   postcondition=POST_KEEP))
_define(OpcodeSpec("ld_fe", UnitClass.MEM, 2, True, is_memory=True,
                   is_load=True, precondition=PRE_FULL,
                   postcondition=POST_EMPTY))
_define(OpcodeSpec("st", UnitClass.MEM, 3, False, is_memory=True,
                   is_store=True, precondition=PRE_ALWAYS,
                   postcondition=POST_FULL))
_define(OpcodeSpec("st_ff", UnitClass.MEM, 3, False, is_memory=True,
                   is_store=True, precondition=PRE_FULL,
                   postcondition=POST_KEEP))
_define(OpcodeSpec("st_ef", UnitClass.MEM, 3, False, is_memory=True,
                   is_store=True, precondition=PRE_EMPTY,
                   postcondition=POST_FULL))

# --- branch unit ------------------------------------------------------------
_define(OpcodeSpec("br", UnitClass.BRU, 0, False, is_branch=True))
_define(OpcodeSpec("brt", UnitClass.BRU, 1, False, is_branch=True))
_define(OpcodeSpec("brf", UnitClass.BRU, 1, False, is_branch=True))
_define(OpcodeSpec("halt", UnitClass.BRU, 0, False, is_halt=True))
_define(OpcodeSpec("fork", UnitClass.BRU, 0, False, is_fork=True))

#: Opcodes whose result copies a value unchanged, indexed by unit class.
MOVE_BY_UNIT = {UnitClass.IU: "imov", UnitClass.FPU: "fmov"}
