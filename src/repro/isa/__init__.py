"""Instruction-set layer: operands, opcodes, wide instruction words."""

from .operands import Imm, Label, Reg, parse_operand, parse_reg
from .operations import (MOVE_BY_UNIT, OpcodeSpec, UnitClass, all_opcodes,
                         opcode)
from .instruction import (DataSegment, InstructionWord, Operation, Program,
                          SymbolSpec, ThreadProgram, parse_unit_id, unit_id)
from . import asmtext

__all__ = [
    "Imm", "Label", "Reg", "parse_operand", "parse_reg",
    "MOVE_BY_UNIT", "OpcodeSpec", "UnitClass", "all_opcodes", "opcode",
    "DataSegment", "InstructionWord", "Operation", "Program", "SymbolSpec",
    "ThreadProgram", "parse_unit_id", "unit_id", "asmtext",
]
