"""Operand kinds used by machine operations.

A processor-coupled node distributes each thread's register set over the
clusters it uses, so a register operand names both a cluster and an index
within that cluster's (per-thread) register file.  Immediates may appear
in any source position; labels name instruction words within a thread.
"""

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Reg:
    """A register in a particular cluster's register file.

    The index is a *virtual* slot: the paper's compiler assumes an
    infinite register supply and reports peak usage instead of spilling.
    """

    cluster: int
    index: int

    def __str__(self):
        return "c%d.r%d" % (self.cluster, self.index)


@dataclass(frozen=True, order=True)
class Imm:
    """An immediate operand (int or float literal)."""

    value: object

    def __str__(self):
        return "#%r" % (self.value,)


@dataclass(frozen=True, order=True)
class Label:
    """A symbolic branch target within a thread program."""

    name: str

    def __str__(self):
        return self.name


def is_source(operand):
    """Return True for operands legal in a source position."""
    return isinstance(operand, (Reg, Imm))


def parse_reg(text):
    """Parse ``cN.rM`` into a :class:`Reg`; raise ValueError otherwise."""
    text = text.strip()
    if not text.startswith("c") or ".r" not in text:
        raise ValueError("not a register: %r" % text)
    cluster_part, __, index_part = text[1:].partition(".r")
    return Reg(int(cluster_part), int(index_part))


def parse_operand(text):
    """Parse a textual source operand (register or ``#imm``)."""
    text = text.strip()
    if text.startswith("#"):
        literal = text[1:]
        try:
            return Imm(int(literal))
        except ValueError:
            return Imm(float(literal))
    return parse_reg(text)
