"""Functional cycle simulator for processor-coupled nodes."""

from .arbitration import PriorityArbiter, RoundRobinArbiter, make_arbiter
from .batch import (BatchNode, BatchOutcome, LaneVec, batch_supported,
                    merge_overrides, run_batch)
from .event import EventNode
from .faults import FaultEvent, FaultInjector, FaultPlan
from .function_unit import FunctionUnitState, WritebackEntry
from .interconnect import WritebackNetwork
from .loader import load_memory, validate_program
from .memory import MemRequest, MemorySystem
from .node import (Node, SimResult, make_node, node_class_for_engine,
                   run_program)
from .predecode import DecodedThread, SlotPlan, WordPlan, decode_program
from .registers import RegisterFrame
from .sanitize import (InvariantAuditor, SanitizerPolicy, SanitizerReport,
                       SanitizerSummary, audit_node, replay_bundle,
                       run_sanitized)
from .stats import ENGINE_STAT_FIELDS, Stats
from .thread import ThreadContext

__all__ = [
    "PriorityArbiter", "RoundRobinArbiter", "make_arbiter",
    "BatchNode", "BatchOutcome", "LaneVec", "batch_supported",
    "merge_overrides", "run_batch",
    "EventNode", "FaultEvent", "FaultInjector", "FaultPlan",
    "FunctionUnitState", "WritebackEntry", "WritebackNetwork",
    "load_memory", "validate_program", "MemRequest", "MemorySystem",
    "Node", "SimResult", "make_node", "node_class_for_engine",
    "run_program", "DecodedThread", "SlotPlan", "WordPlan",
    "decode_program", "RegisterFrame", "ENGINE_STAT_FIELDS", "Stats",
    "ThreadContext", "InvariantAuditor", "SanitizerPolicy",
    "SanitizerReport", "SanitizerSummary", "audit_node", "replay_bundle",
    "run_sanitized",
]
