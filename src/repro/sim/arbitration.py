"""Thread arbitration policies for function-unit contention.

When several threads compete for a given function unit, one is granted
use and the others must wait (paper Section 1).  The simulator supports
two policies:

* ``priority`` — threads are served strictly by priority (lower number
  wins; by default a thread's priority is its spawn order).  This is
  the policy behind Table 3's per-thread interference measurements.
* ``round-robin`` — the scan order rotates every cycle, spreading
  grants evenly across threads.
"""

from ..errors import ConfigError


class PriorityArbiter:
    """Strict priority: the highest-priority ready thread wins."""

    name = "priority"

    def order(self, threads, cycle):
        return sorted(threads, key=lambda t: (t.priority, t.tid))


class RoundRobinArbiter:
    """Rotate the scan start point each cycle."""

    name = "round-robin"

    def order(self, threads, cycle):
        ordered = sorted(threads, key=lambda t: t.tid)
        if not ordered:
            return ordered
        start = cycle % len(ordered)
        return ordered[start:] + ordered[:start]


def make_arbiter(policy):
    if policy == "priority":
        return PriorityArbiter()
    if policy == "round-robin":
        return RoundRobinArbiter()
    raise ConfigError("unknown arbitration policy %r" % policy)
