"""Thread arbitration policies for function-unit contention.

When several threads compete for a given function unit, one is granted
use and the others must wait (paper Section 1).  The simulator supports
two policies:

* ``priority`` — threads are served strictly by priority (lower number
  wins; by default a thread's priority is its spawn order).  This is
  the policy behind Table 3's per-thread interference measurements.
* ``round-robin`` — the scan order rotates every cycle, spreading
  grants evenly across threads.

Arbiters may carry state across cycles (the round-robin rotation
counter), so a :class:`~repro.sim.node.Node` snapshot includes its
arbiter.  ``advance(n)`` lets the simulator's skip-ahead fast path
account for cycles it never simulates, keeping a fast-forwarded run
bit-identical to a cycle-by-cycle one.
"""

import bisect

from ..errors import ConfigError


class PriorityArbiter:
    """Strict priority: the highest-priority ready thread wins."""

    name = "priority"

    def order(self, threads, cycle):
        return sorted(threads, key=lambda t: (t.priority, t.tid))

    def advance(self, cycles, threads=()):
        """Stateless policy: skipped cycles change nothing."""


class RoundRobinArbiter:
    """Rotate the scan start point each cycle.

    The rotation resumes from the thread *identity* that led the
    previous scan — each cycle starts from the next-higher live tid,
    wrapping — rather than from ``cycle % len(threads)``.  Keying the
    phase to the cycle number makes the rotation jump whenever the
    number of live threads changes (a thread finishing or spawning
    mid-run), which can systematically starve a thread whose slot keeps
    landing on the same phase; resuming from the last-served tid keeps
    the scan walking evenly over whoever is live, no matter how the
    population churns.
    """

    name = "round-robin"

    def __init__(self):
        self._next = 0      # resume the scan at the first tid >= this

    def order(self, threads, cycle):
        ordered = sorted(threads, key=lambda t: t.tid)
        if not ordered:
            return ordered
        start = 0
        for index, thread in enumerate(ordered):
            if thread.tid >= self._next:
                start = index
                break
        self._next = ordered[start].tid + 1
        return ordered[start:] + ordered[:start]

    def rotate_sorted(self, ordered, tids):
        """Event-kernel fast path: rotate an already tid-sorted thread
        list exactly as :meth:`order` would (``tids`` is the parallel
        sorted tid list), updating the resume point."""
        if not ordered:
            return ordered
        start = bisect.bisect_left(tids, self._next)
        if start >= len(tids):
            start = 0
        self._next = tids[start] + 1
        if start:
            return ordered[start:] + ordered[:start]
        return ordered

    def advance(self, cycles, threads=()):
        """Account for ``cycles`` skipped quiet cycles, during which the
        scan head would have walked once per cycle over a stable
        ``threads`` population.

        ``threads`` is the population *during the window* — the caller
        (the fast-forward path) only jumps when no thread can act, so
        the set cannot change mid-window.  The resume point needs no
        stability before the window: the first scan position is found by
        searching for the next tid >= ``_next`` in the *current* list,
        the same self-healing lookup :meth:`order` does, so a population
        that shrank or grew between the last scan and the jump resumes
        exactly where repeated :meth:`order` calls would (regression:
        ``test_advance_after_population_churn``)."""
        tids = sorted(t.tid for t in threads)
        if cycles <= 0 or not tids:
            return
        start = 0
        for index, tid in enumerate(tids):
            if tid >= self._next:
                start = index
                break
        last = (start + cycles - 1) % len(tids)
        self._next = tids[last] + 1


def make_arbiter(policy):
    if policy == "priority":
        return PriorityArbiter()
    if policy == "round-robin":
        return RoundRobinArbiter()
    raise ConfigError("unknown arbitration policy %r" % policy)
