"""Runtime state of one function unit.

Each unit holds an operation buffer with a pending operation from every
active thread (modelled centrally by the thread contexts), a fully
pipelined execution path (one issue per cycle, results after
``latency`` cycles), and a writeback buffer for results that are waiting
for a register-file port or bus.
"""

import heapq
from dataclasses import dataclass, field


@dataclass(slots=True)
class InFlight:
    """An issued operation travelling down the unit's pipeline."""

    thread: object
    op: object
    payload: object     # ALU result / MemRequest ingredients / branch info


@dataclass(slots=True)
class WritebackEntry:
    """A computed result waiting to be written to register files."""

    thread: object
    op: object
    value: object
    dests: list


class FunctionUnitState:
    """Mutable per-run state attached to one configured unit slot."""

    def __init__(self, slot, opcache=None):
        self.slot = slot
        self._pipeline = []          # heap of (ready, seq, InFlight)
        self._seq = 0
        self.writebacks = []         # WritebackEntry FIFO
        self.issued_this_cycle = False
        self.opcache = opcache       # None = perfect operation cache
        self.index = None            # position in the node's unit table
        self.latency = slot.latency  # hoisted for the event kernel

    @property
    def uid(self):
        return self.slot.uid

    @property
    def cluster(self):
        return self.slot.cluster

    @property
    def kind(self):
        return self.slot.kind

    def push(self, cycle, thread, op, payload):
        """Accept one issued operation; result ready after latency."""
        self._seq += 1
        heapq.heappush(self._pipeline,
                       (cycle + self.slot.latency, self._seq,
                        InFlight(thread, op, payload)))

    def pop_ready(self, cycle):
        """Remove and return operations whose pipeline delay elapsed."""
        ready = []
        while self._pipeline and self._pipeline[0][0] <= cycle:
            __, __, entry = heapq.heappop(self._pipeline)
            ready.append(entry)
        return ready

    def busy(self):
        return bool(self._pipeline) or bool(self.writebacks)

    def next_ready(self):
        """Earliest cycle an in-flight operation completes, or None."""
        return self._pipeline[0][0] if self._pipeline else None
