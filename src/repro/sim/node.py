"""The processor-coupled node simulator.

Functional-level, cycle-accurate in the paper's sense: it counts cycles
and operations exactly under the stated rules —

* every function unit can issue one operation per cycle, chosen among
  the pending operations of all active threads (cycle-by-cycle
  arbitration);
* an operation issues only when its source presence bits are set and
  every operation of the thread's previous instruction word has issued
  (in-order issue, out-of-order completion);
* issuing clears the destination presence bit; writeback sets it, and
  must win a register-file port/bus under the configured interconnect
  scheme;
* memory references flow through the split-transaction memory system
  with Table 1 synchronization and statistical latency.
"""

import copy
import random
from collections import deque
from dataclasses import dataclass

from ..errors import (ConfigError, DeadlockError, SimulationError,
                      WatchdogError)
from ..isa.operations import UnitClass
from .arbitration import make_arbiter
from .faults import FaultInjector
from .function_unit import FunctionUnitState, WritebackEntry
from .interconnect import WritebackNetwork
from .loader import load_memory, validate_program
from .memory import MemRequest, MemorySystem
from .opcache import OperationCache
from .stats import Stats
from .thread import ACTIVE, DONE, ThreadContext


@dataclass
class SimResult:
    """Everything an experiment needs after a run.

    ``sanitizer`` is None for plain runs; a sanitized run
    (:func:`repro.sim.sanitize.run_sanitized`) attaches its
    :class:`~repro.sim.sanitize.SanitizerSummary` here.
    """

    stats: object
    memory: object
    program: object
    config: object
    threads: list
    sanitizer: object = None

    @property
    def cycles(self):
        return self.stats.cycles

    def read_symbol(self, name):
        sym = self.program.data[name]
        return self.memory.read_range(sym.base, sym.size)

    def symbol_presence(self, name):
        sym = self.program.data[name]
        return self.memory.presence_range(sym.base, sym.size)

    def thread_stats(self):
        """Per-thread (name, spawn, finish, issued ops) rows."""
        rows = []
        for thread in self.threads:
            rows.append({
                "tid": thread.tid,
                "name": thread.name,
                "spawn": thread.spawn_cycle,
                "finish": thread.finish_cycle,
                "operations": self.stats.issued_by_thread[thread.tid],
            })
        return rows


class Node:
    """One simulation of one program on one machine configuration.

    This class is the *scan* kernel: every cycle it rescans all active
    threads and units.  The event kernel
    (:class:`~repro.sim.event.EventNode`) subclasses it and overrides
    the hot loop; use :func:`make_node` (or :func:`run_program`) to get
    the kernel the configuration asks for.
    """

    MAX_THREADS = 4096
    engine = "scan"

    def __init__(self, config, observer=None, fast_forward=True):
        self.config = config
        self.observer = observer
        self.fast_forward = bool(fast_forward)
        self.stats = Stats(unit_counts={kind.value: config.count(kind)
                                        for kind in UnitClass})
        self.rng = random.Random(config.seed)
        fill_board = {} if config.op_cache is not None else None
        self.units = {
            slot.uid: FunctionUnitState(
                slot,
                opcache=OperationCache(config.op_cache, self.stats,
                                       fill_board=fill_board)
                if config.op_cache is not None else None)
            for slot in config.units}
        self.unit_order = [slot.uid for slot in config.units]
        self.network = WritebackNetwork(config.interconnect,
                                        config.n_clusters, self.stats)
        self.injector = None
        if getattr(config, "fault_plan", None) is not None:
            self.injector = FaultInjector(config.fault_plan, self.stats)
        self.memory = MemorySystem(config.memory, self.rng, self.stats,
                                   size=config.memory_size,
                                   injector=self.injector)
        self.arbiter = make_arbiter(config.arbitration)
        self.active = []
        self.finished = []
        self._spawn_queue = deque()
        self._next_tid = 0
        self.cycle = 0
        self._frozen = 0
        self._last_progress = 0
        self._fault_stalled = False
        self._program = None
        # Skip-ahead diagnostics (not part of Stats: the fast path must
        # leave every reported statistic bit-identical to a
        # cycle-by-cycle run, so its own accounting lives on the node).
        self.ffwd_jumps = 0
        self.ffwd_cycles = 0
        # Optional runtime invariant auditor (repro.sim.sanitize); not
        # snapshot state — the sanitize driver re-attaches it after a
        # restore.  The per-cycle cost when unset is one None test.
        self.sanitizer = None

    # -- thread management ----------------------------------------------

    def spawn(self, thread_program, bindings=(), priority=None):
        limit = self.config.max_active_threads
        if limit is not None and len(self.active) >= limit:
            # The active set is full: the new thread waits for a slot
            # (its argument values were captured at fork issue).
            self._spawn_queue.append((thread_program, bindings, priority))
            self.stats.spawn_queue_waits += 1
            return None
        if self._next_tid >= self.MAX_THREADS:
            raise SimulationError("thread limit (%d) exceeded; runaway "
                                  "fork?" % self.MAX_THREADS)
        thread = ThreadContext(self._next_tid, thread_program,
                               priority=priority, spawn_cycle=self.cycle)
        self._next_tid += 1
        for child_reg, value in bindings:
            thread.frame(child_reg.cluster).force(child_reg.index, value)
        self.active.append(thread)
        self.stats.threads_spawned += 1
        self.stats.thread_spawn_cycle[thread.tid] = self.cycle
        self.stats.peak_active_threads = max(self.stats.peak_active_threads,
                                             len(self.active))
        if self.observer is not None:
            self.observer("spawn", cycle=self.cycle, thread=thread)
        return thread

    # -- per-phase helpers ------------------------------------------------

    def _complete_units(self):
        """Phase 1: drain unit pipelines; route results onward."""
        count = 0
        for uid in self.unit_order:
            unit = self.units[uid]
            for entry in unit.pop_ready(self.cycle):
                count += 1
                spec = entry.op.spec
                if spec.is_memory:
                    self.memory.submit(entry.payload, self.cycle)
                elif spec.unit is UnitClass.BRU:
                    self._resolve_control(entry.thread, entry.op,
                                          entry.payload)
                else:
                    unit.writebacks.append(WritebackEntry(
                        entry.thread, entry.op, entry.payload,
                        list(entry.op.dests)))
        return count

    def _resolve_control(self, thread, op, payload):
        kind = payload[0]
        if kind == "jump":
            thread.next_ip = payload[1]
        elif kind == "fork":
            __, name, bindings = payload
            child_program = self._program.thread(name)
            self.spawn(child_program, bindings)
        elif kind == "halt":
            thread.halted = True
            if self.observer is not None:
                self.observer("halt", cycle=self.cycle, thread=thread)
        else:
            raise AssertionError("unknown control payload %r" % (kind,))
        thread.control_inflight = False

    def _complete_memory(self):
        """Phase 2: tick the memory system; loads join writeback."""
        completed = self.memory.tick(self.cycle)
        for request in completed:
            if request.is_load:
                unit = self.units[request.unit_slot.uid]
                unit.writebacks.append(WritebackEntry(
                    request.thread, request.op, request.value,
                    list(request.op.dests)))
        return len(completed)

    def _write_back(self):
        """Phase 3: arbitrate ports/buses and commit results."""
        self.network.new_cycle()
        wrote = 0
        for uid in self.unit_order:
            unit = self.units[uid]
            if self.injector is not None and unit.writebacks \
                    and self.injector.writeback_blocked(uid, self.cycle):
                # Fault: the unit's results cannot claim a port this
                # cycle; they stay buffered and retry the interconnect.
                self.stats.fault_writeback_stalls += len(unit.writebacks)
                continue
            remaining = []
            for entry in unit.writebacks:
                kept = []
                for dest in entry.dests:
                    if self.network.try_grant(unit.cluster, dest.cluster):
                        entry.thread.frame(dest.cluster).write(dest.index,
                                                               entry.value)
                        wrote += 1
                    else:
                        kept.append(dest)
                entry.dests = kept
                if kept:
                    remaining.append(entry)
            unit.writebacks = remaining
        return wrote

    def _advance_threads(self):
        """Phase 4: instruction-pointer management."""
        still_active = []
        for thread in self.active:
            if thread.word_done():
                if thread.advance():
                    still_active.append(thread)
                else:
                    thread.finish_cycle = self.cycle
                    self.stats.thread_finish_cycle[thread.tid] = self.cycle
                    self.stats.threads_finished += 1
                    self.finished.append(thread)
            else:
                still_active.append(thread)
        self.active = still_active
        limit = self.config.max_active_threads
        while self._spawn_queue and (limit is None
                                     or len(self.active) < limit):
            program, bindings, priority = self._spawn_queue.popleft()
            self.spawn(program, bindings, priority)

    def _issue(self):
        """Phase 5: per-unit arbitration and operation issue."""
        issued = 0
        claimed = set()
        self._fault_stalled = False
        for thread in self.arbiter.order(self.active, self.cycle):
            for uid, op in list(thread.pending.items()):
                if not thread.sources_ready(op):
                    continue
                unit = self.units[uid]
                if self.injector is not None \
                        and self.injector.unit_offline(uid, self.cycle):
                    unit = self._reroute_target(unit, claimed)
                    if unit is None:
                        # The op waits for the fault window to close (or
                        # for a surviving unit to free up) — that is
                        # pending work, not a deadlock; the watchdog
                        # covers a window that never closes.
                        self.stats.fault_issue_stalls += 1
                        self._fault_stalled = True
                        continue
                if unit.opcache is not None \
                        and not unit.opcache.ready(thread, self.cycle):
                    continue            # operation-cache fill in progress
                if unit.uid in claimed:
                    self.stats.arbitration_losses += 1
                    continue
                if unit.uid != uid:
                    self.stats.fault_reroutes += 1
                self._issue_one(unit, thread, op, home_uid=uid)
                claimed.add(unit.uid)
                issued += 1
        return issued

    def _reroute_target(self, unit, claimed):
        """Graceful degradation: pick a surviving unit of the same
        class for an operation whose scheduled unit is offline.  This
        is runtime rescheduling — the arbiter repairing a static
        schedule the compiler could not have known would break."""
        if not self.injector.reroute:
            return None
        for uid in self.unit_order:
            candidate = self.units[uid]
            if candidate.kind is not unit.kind or uid in claimed:
                continue
            if self.injector.unit_offline(uid, self.cycle):
                continue
            return candidate
        return None

    def _issue_one(self, unit, thread, op, home_uid=None):
        values = thread.capture_sources(op)
        spec = op.spec
        if spec.is_memory:
            if spec.is_load:
                addr = int(values[0]) + int(values[1])
                payload = MemRequest(thread, op, unit.slot, addr, spec=spec)
            else:
                addr = int(values[1]) + int(values[2])
                payload = MemRequest(thread, op, unit.slot, addr,
                                     store_value=values[0], spec=spec)
        elif spec.unit is UnitClass.BRU:
            payload = self._control_payload(thread, op, values)
            thread.control_inflight = True
        else:
            try:
                payload = spec.semantics(*values)
            except ArithmeticError as exc:
                raise SimulationError(
                    "thread %s: %s%r raised %s at cycle %d"
                    % (thread.name, op.name, tuple(values), exc, self.cycle))
        for dest in op.dests:
            thread.frame(dest.cluster).invalidate(dest.index)
        del thread.pending[home_uid if home_uid is not None else unit.uid]
        unit.push(self.cycle, thread, op, payload)
        self.stats.record_issue(unit.slot, thread.tid)
        if self.observer is not None:
            self.observer("issue", cycle=self.cycle, thread=thread,
                          unit=unit.uid, op=op)

    def _control_payload(self, thread, op, values):
        if op.spec.is_halt:
            return ("halt",)
        if op.spec.is_fork:
            return ("fork", op.target.name, thread.capture_bindings(op))
        if op.name == "br":
            return ("jump", thread.program.resolve(op.target))
        taken = bool(values[0]) if op.name == "brt" else not values[0]
        if taken:
            return ("jump", thread.program.resolve(op.target))
        return ("jump", None)

    # -- main loop ---------------------------------------------------------

    def run(self, program, overrides=None, max_cycles=5_000_000,
            watchdog_cycles=None, pause_at=None):
        """Simulate ``program`` to completion and return a SimResult.

        ``watchdog_cycles`` (optional) raises :class:`WatchdogError`
        when no operation issues, completes, or writes back for that
        many consecutive cycles while work is nominally in flight
        (livelock).  ``pause_at`` (optional) suspends the run once the
        cycle counter reaches it and returns None; the node can then be
        snapshot() and later resume()d.
        """
        validate_program(program, self.config)
        self._program = program
        self._prepare(program)
        load_memory(self.memory, program, overrides)
        self.spawn(program.thread(program.main))
        return self._loop(max_cycles, watchdog_cycles, pause_at)

    def _prepare(self, program):
        """Hook for per-program setup before the first spawn (the event
        kernel predecodes here)."""

    def resume(self, max_cycles=5_000_000, watchdog_cycles=None,
               pause_at=None):
        """Continue a paused or restored run; same contract as run()."""
        if self._program is None:
            raise SimulationError("resume() before run(): no program "
                                  "loaded")
        return self._loop(max_cycles, watchdog_cycles, pause_at)

    def _loop(self, max_cycles, watchdog_cycles=None, pause_at=None):
        while True:
            completed = self._complete_units()
            completed += self._complete_memory()
            wrote = self._write_back()
            self._advance_threads()
            issued = self._issue()
            self.cycle += 1
            self.stats.cycles = self.cycle
            san = self.sanitizer
            if san is not None and self.cycle >= san.next_cycle:
                san.check(self, self.cycle)
            if issued or completed or wrote:
                self._last_progress = self.cycle
            if not self.active and not self._spawn_queue \
                    and self.memory.idle() \
                    and not any(self.units[uid].busy()
                                for uid in self.unit_order):
                break
            if self.cycle >= max_cycles:
                raise self._watchdog_error(
                    "exceeded %d cycles (program %s on %s)"
                    % (max_cycles, self._program.main, self.config.name))
            in_flight = (self._fault_stalled
                         or self.memory.has_in_flight()
                         or any(self.units[uid].busy()
                                for uid in self.unit_order)
                         or any(self.units[uid].opcache is not None
                                and self.units[uid].opcache._fills
                                for uid in self.unit_order))
            if issued == 0 and completed == 0 and wrote == 0 \
                    and not in_flight:
                self._frozen += 1
                if self._frozen >= 2:
                    self._raise_deadlock()
            else:
                self._frozen = 0
            if watchdog_cycles is not None \
                    and self.cycle - self._last_progress >= watchdog_cycles:
                raise self._watchdog_error(
                    "livelock: no operation issued, completed, or wrote "
                    "back for %d cycles (program %s on %s)"
                    % (watchdog_cycles, self._program.main,
                       self.config.name))
            if pause_at is not None and self.cycle >= pause_at:
                return None
            if self.fast_forward and issued == 0 and completed == 0 \
                    and wrote == 0 and in_flight:
                target = self._skip_target(max_cycles, watchdog_cycles,
                                           pause_at)
                if target is not None:
                    # Every active thread is stalled until a timed event
                    # (pipeline completion, memory reply, deferred
                    # presence bit, or operation-cache fill): the
                    # intervening cycles are provably empty, so jump the
                    # clock instead of simulating them.  The arbiter is
                    # advanced as if each skipped cycle had rotated.
                    delta = target - self.cycle
                    self.arbiter.advance(delta, self.active)
                    self.cycle = target
                    self.stats.cycles = self.cycle
                    self.ffwd_jumps += 1
                    self.ffwd_cycles += delta
        return SimResult(self.stats, self.memory, self._program,
                         self.config, self.finished + self.active)

    def _skip_target(self, max_cycles, watchdog_cycles, pause_at):
        """The cycle to fast-forward to, or None when skipping is not
        provably safe.

        Safe means: no fault plan is attached (fault windows open and
        close on their own clock), no result is waiting for a
        register-file port (writebacks retry — and can succeed — every
        cycle), no thread can fetch a new instruction word, and every
        pending operation is either missing a source presence bit
        (which only a timed completion can set) or waiting out an
        operation-cache fill with a known ready cycle.  The returned
        target is clamped so the max-cycles, watchdog, and pause checks
        still fire at exactly the cycle they would have in a
        cycle-by-cycle run.
        """
        if self.injector is not None:
            return None
        for uid in self.unit_order:
            if self.units[uid].writebacks:
                return None
        for thread in self.active:
            if thread.word_done():
                return None
            for uid, op in thread.pending.items():
                if not thread.sources_ready(op):
                    continue
                cache = self.units[uid].opcache
                if cache is None or not cache.fill_pending(thread):
                    return None     # ready op: could issue next cycle
        wake = None
        for uid in self.unit_order:
            unit = self.units[uid]
            for event in (unit.next_ready(),
                          unit.opcache.next_fill_ready()
                          if unit.opcache is not None else None):
                if event is not None and (wake is None or event < wake):
                    wake = event
        event = self.memory.next_event_cycle()
        if event is not None and (wake is None or event < wake):
            wake = event
        if wake is None:
            return None             # nothing timed: let deadlock logic run
        target = min(wake, max_cycles - 1)
        if watchdog_cycles is not None:
            target = min(target,
                         self._last_progress + watchdog_cycles - 1)
        if pause_at is not None:
            target = min(target, pause_at - 1)
        return target if target > self.cycle else None

    # -- diagnostics -------------------------------------------------------

    def _blocked_report(self):
        """(tid, name, word, reason) for every thread that exists but
        cannot currently run to completion."""
        return [(thread.tid, thread.name, thread.ip,
                 thread.stall_reason()) for thread in self.active]

    def _fusion_context(self):
        """Superblock-fusion state for error reports; the scan kernel
        (and the unfused event kernel) has none."""
        return None

    def _fusion_report_lines(self, context):
        if context is None:
            return []
        lines = ["superblock fusion context:"]
        last = context.get("last_dispatch")
        if last is not None:
            spans = "+".join("%s@%d" % part for part in last[1])
            lines.append("  last fused dispatch: %s %s at cycle %d"
                         % (last[0], spans, last[2]))
        else:
            lines.append("  no superblock dispatched yet")
        reasons = context.get("defuse_reasons")
        if reasons:
            inner = ", ".join("%s=%d" % pair
                              for pair in sorted(reasons.items()))
            lines.append("  de-fusion reasons: " + inner)
        quarantined = context.get("quarantined")
        if quarantined:
            lines.append("  quarantined entries: %s"
                         % ", ".join("%s@%d" % entry
                                     for entry in quarantined))
        ladder = context.get("mt_ladder")
        if ladder:
            lines.append("  interleaved ladder: "
                         + ", ".join("%s=%s" % pair
                                     for pair in sorted(ladder.items())))
        return lines

    def _watchdog_error(self, headline):
        lines = [headline,
                 "cut at cycle %d; last forward progress at cycle %d"
                 % (self.cycle, self._last_progress)]
        blocked = self._blocked_report()
        for tid, name, word, reason in blocked:
            lines.append("thread %d (%s) at word %d: %s"
                         % (tid, name, word, reason))
        if self._spawn_queue:
            lines.append("%d forked threads waiting for an active-set "
                         "slot" % len(self._spawn_queue))
        parked = self.memory.parked_summary()
        if parked:
            lines.append("parked memory references:")
            lines.extend("  " + line for line in parked)
        fusion = self._fusion_context()
        lines.extend(self._fusion_report_lines(fusion))
        return WatchdogError("\n".join(lines), cycle=self.cycle,
                             last_progress_cycle=self._last_progress,
                             blocked=blocked, fusion=fusion)

    def _raise_deadlock(self):
        lines = ["deadlock at cycle %d" % self.cycle]
        if self._spawn_queue:
            lines.append("%d forked threads waiting for an active-set "
                         "slot" % len(self._spawn_queue))
        blocked = self._blocked_report()
        for tid, name, word, reason in blocked:
            lines.append("thread %d (%s) at word %d: %s"
                         % (tid, name, word, reason))
        lines.extend(self.memory.parked_summary())
        wait_for = self._wait_for_cycle()
        if wait_for:
            lines.append("wait-for cycle: " + " -> ".join(wait_for))
        fusion = self._fusion_context()
        lines.extend(self._fusion_report_lines(fusion))
        raise DeadlockError("\n".join(lines), blocked=blocked,
                            wait_for=wait_for, fusion=fusion)

    def _wait_for_cycle(self):
        """Detect a cycle in the wait-for graph built from parked
        memory references: thread -> address it waits on -> thread
        whose access left the address in its unsatisfying state.
        Returns the cycle as alternating thread/address labels, or []
        when the deadlock is a dangling wait with no cycle."""
        names = {thread.tid: thread.name
                 for thread in self.active + self.finished}
        edges = {}                    # waiter tid -> [(addr label, owner)]
        for tid, addr, state, wanted, owner in self.memory.wait_edges():
            if owner is None or owner == tid:
                continue
            label = "addr %d (%s, wants %s)" % (addr, state, wanted)
            edges.setdefault(tid, []).append((label, owner))
        for start in sorted(edges):
            path, hops = [start], []
            seen = {start}
            tid = start
            while tid in edges:
                label, owner = edges[tid][0]
                hops.append(label)
                if owner in seen:
                    # Close the loop at the repeated thread.
                    cut = path.index(owner)
                    ring = path[cut:] + [owner]
                    out = []
                    for i, node_tid in enumerate(ring[:-1]):
                        out.append("thread %d (%s)"
                                   % (node_tid,
                                      names.get(node_tid, "?")))
                        out.append(hops[cut + i])
                    out.append("thread %d (%s)"
                               % (ring[-1], names.get(ring[-1], "?")))
                    return out
                path.append(owner)
                seen.add(owner)
                tid = owner
        return []

    # -- checkpoint / restore ---------------------------------------------

    _SNAPSHOT_FIELDS = ("stats", "rng", "units", "network", "memory",
                        "arbiter", "active", "finished", "_spawn_queue",
                        "_next_tid", "cycle", "_frozen", "_last_progress",
                        "_program", "fast_forward", "ffwd_jumps",
                        "ffwd_cycles")

    def _snapshot_memo(self):
        """Deepcopy memo pinning immutable/shared objects so snapshots
        copy only the mutable simulation state."""
        memo = {id(self.config): self.config}
        for slot in self.config.units:
            memo[id(slot)] = slot
            memo[id(slot.spec)] = slot.spec
        if self.observer is not None:
            memo[id(self.observer)] = self.observer
        return memo

    def snapshot(self):
        """A deep-copied, resumable checkpoint of the run.

        Take it between run(pause_at=...) pauses (or before run); feed
        it to :meth:`restore` to continue on a fresh node.  The copy
        includes the RNG stream, so a restored run is bit-identical to
        the uninterrupted one.
        """
        state = copy.deepcopy(
            {name: getattr(self, name) for name in self._SNAPSHOT_FIELDS},
            self._snapshot_memo())
        state["config"] = self.config
        state["engine"] = self.engine
        return state

    @classmethod
    def restore(cls, snap, observer=None):
        """Rebuild a node from a :meth:`snapshot`; resume() continues
        the run.  The snapshot is copied, so it can be restored again.

        Called on :class:`Node` itself, this dispatches to the kernel
        class the snapshot was taken from (snapshots carry
        kernel-specific state, so the classes are not interchangeable).
        """
        if cls is Node and snap.get("engine", "scan") != "scan":
            return node_class_for_engine(snap["engine"]).restore(
                snap, observer=observer)
        node = cls(snap["config"], observer=observer)
        state = copy.deepcopy(
            {name: snap[name] for name in cls._SNAPSHOT_FIELDS},
            node._snapshot_memo())
        for name, value in state.items():
            setattr(node, name, value)
        # __init__ built fresh cross-linked helpers; re-link them to
        # the restored state (stats/rng identity is preserved inside
        # one deepcopy call, but the injector was built against the
        # fresh stats object).
        if node.injector is not None:
            node.injector = FaultInjector(node.config.fault_plan,
                                          node.stats)
        node.memory.injector = node.injector
        node._after_restore()
        return node

    def _after_restore(self):
        """Hook: re-derive state that restore() replaced wholesale (the
        event kernel rebuilds its unit table and arbiter order here)."""


def node_class_for_engine(engine):
    """The kernel class implementing ``engine`` ("event" or "scan")."""
    if engine == "scan":
        return Node
    if engine == "event":
        from .event import EventNode   # deferred: event.py subclasses Node
        return EventNode
    raise ConfigError("unknown simulator engine %r" % (engine,))


def make_node(config, observer=None, fast_forward=True):
    """Build a node running the kernel ``config.engine`` selects."""
    cls = node_class_for_engine(config.engine)
    return cls(config, observer=observer, fast_forward=fast_forward)


def run_program(program, config, overrides=None, max_cycles=5_000_000,
                observer=None, watchdog_cycles=None, fast_forward=True,
                sanitize=None):
    """Convenience wrapper: simulate ``program`` on ``config`` with the
    kernel ``config.engine`` selects.

    ``fast_forward=False`` disables the skip-ahead fast path and
    simulates every cycle (the results are identical either way; the
    flag exists for differential testing and perf comparison).

    ``sanitize`` (a level name or :class:`~repro.sim.sanitize.
    SanitizerPolicy`) routes the run through the online state sanitizer
    — invariant audits, shadow differential execution, and graceful
    de-optimization; see :mod:`repro.sim.sanitize`.  The results are
    identical to an unsanitized run unless the sanitizer trips.
    """
    if sanitize is not None and sanitize != "off":
        from .sanitize import run_sanitized
        return run_sanitized(program, config, overrides=overrides,
                             max_cycles=max_cycles,
                             watchdog_cycles=watchdog_cycles,
                             fast_forward=fast_forward, observer=observer,
                             policy=sanitize)
    node = make_node(config, observer=observer, fast_forward=fast_forward)
    return node.run(program, overrides=overrides, max_cycles=max_cycles,
                    watchdog_cycles=watchdog_cycles)
