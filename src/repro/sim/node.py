"""The processor-coupled node simulator.

Functional-level, cycle-accurate in the paper's sense: it counts cycles
and operations exactly under the stated rules —

* every function unit can issue one operation per cycle, chosen among
  the pending operations of all active threads (cycle-by-cycle
  arbitration);
* an operation issues only when its source presence bits are set and
  every operation of the thread's previous instruction word has issued
  (in-order issue, out-of-order completion);
* issuing clears the destination presence bit; writeback sets it, and
  must win a register-file port/bus under the configured interconnect
  scheme;
* memory references flow through the split-transaction memory system
  with Table 1 synchronization and statistical latency.
"""

import random
from collections import deque
from dataclasses import dataclass

from ..errors import DeadlockError, SimulationError
from ..isa.operations import UnitClass
from .arbitration import make_arbiter
from .function_unit import FunctionUnitState, WritebackEntry
from .interconnect import WritebackNetwork
from .loader import load_memory, validate_program
from .memory import MemRequest, MemorySystem
from .opcache import OperationCache
from .stats import Stats
from .thread import ACTIVE, DONE, ThreadContext


@dataclass
class SimResult:
    """Everything an experiment needs after a run."""

    stats: object
    memory: object
    program: object
    config: object
    threads: list

    @property
    def cycles(self):
        return self.stats.cycles

    def read_symbol(self, name):
        sym = self.program.data[name]
        return self.memory.read_range(sym.base, sym.size)

    def symbol_presence(self, name):
        sym = self.program.data[name]
        return self.memory.presence_range(sym.base, sym.size)

    def thread_stats(self):
        """Per-thread (name, spawn, finish, issued ops) rows."""
        rows = []
        for thread in self.threads:
            rows.append({
                "tid": thread.tid,
                "name": thread.name,
                "spawn": thread.spawn_cycle,
                "finish": thread.finish_cycle,
                "operations": self.stats.issued_by_thread[thread.tid],
            })
        return rows


class Node:
    """One simulation of one program on one machine configuration."""

    MAX_THREADS = 4096

    def __init__(self, config, observer=None):
        self.config = config
        self.observer = observer
        self.stats = Stats()
        self.rng = random.Random(config.seed)
        self.units = {
            slot.uid: FunctionUnitState(
                slot,
                opcache=OperationCache(config.op_cache, self.stats)
                if config.op_cache is not None else None)
            for slot in config.units}
        self.unit_order = [slot.uid for slot in config.units]
        self.network = WritebackNetwork(config.interconnect,
                                        config.n_clusters, self.stats)
        self.memory = MemorySystem(config.memory, self.rng, self.stats,
                                   size=config.memory_size)
        self.arbiter = make_arbiter(config.arbitration)
        self.active = []
        self.finished = []
        self._spawn_queue = deque()
        self._next_tid = 0
        self.cycle = 0

    # -- thread management ----------------------------------------------

    def spawn(self, thread_program, bindings=(), priority=None):
        limit = self.config.max_active_threads
        if limit is not None and len(self.active) >= limit:
            # The active set is full: the new thread waits for a slot
            # (its argument values were captured at fork issue).
            self._spawn_queue.append((thread_program, bindings, priority))
            self.stats.spawn_queue_waits += 1
            return None
        if self._next_tid >= self.MAX_THREADS:
            raise SimulationError("thread limit (%d) exceeded; runaway "
                                  "fork?" % self.MAX_THREADS)
        thread = ThreadContext(self._next_tid, thread_program,
                               priority=priority, spawn_cycle=self.cycle)
        self._next_tid += 1
        for child_reg, value in bindings:
            thread.frame(child_reg.cluster).force(child_reg.index, value)
        self.active.append(thread)
        self.stats.threads_spawned += 1
        self.stats.thread_spawn_cycle[thread.tid] = self.cycle
        self.stats.peak_active_threads = max(self.stats.peak_active_threads,
                                             len(self.active))
        if self.observer is not None:
            self.observer("spawn", cycle=self.cycle, thread=thread)
        return thread

    # -- per-phase helpers ------------------------------------------------

    def _complete_units(self):
        """Phase 1: drain unit pipelines; route results onward."""
        count = 0
        for uid in self.unit_order:
            unit = self.units[uid]
            for entry in unit.pop_ready(self.cycle):
                count += 1
                spec = entry.op.spec
                if spec.is_memory:
                    self.memory.submit(entry.payload, self.cycle)
                elif spec.unit is UnitClass.BRU:
                    self._resolve_control(entry.thread, entry.op,
                                          entry.payload)
                else:
                    unit.writebacks.append(WritebackEntry(
                        entry.thread, entry.op, entry.payload,
                        list(entry.op.dests)))
        return count

    def _resolve_control(self, thread, op, payload):
        kind = payload[0]
        if kind == "jump":
            thread.next_ip = payload[1]
        elif kind == "fork":
            __, name, bindings = payload
            child_program = self._program.thread(name)
            self.spawn(child_program, bindings)
        elif kind == "halt":
            thread.halted = True
            if self.observer is not None:
                self.observer("halt", cycle=self.cycle, thread=thread)
        else:
            raise AssertionError("unknown control payload %r" % (kind,))
        thread.control_inflight = False

    def _complete_memory(self):
        """Phase 2: tick the memory system; loads join writeback."""
        completed = self.memory.tick(self.cycle)
        for request in completed:
            if request.is_load:
                unit = self.units[request.unit_slot.uid]
                unit.writebacks.append(WritebackEntry(
                    request.thread, request.op, request.value,
                    list(request.op.dests)))
        return len(completed)

    def _write_back(self):
        """Phase 3: arbitrate ports/buses and commit results."""
        self.network.new_cycle()
        wrote = 0
        for uid in self.unit_order:
            unit = self.units[uid]
            remaining = []
            for entry in unit.writebacks:
                kept = []
                for dest in entry.dests:
                    if self.network.try_grant(unit.cluster, dest.cluster):
                        entry.thread.frame(dest.cluster).write(dest.index,
                                                               entry.value)
                        wrote += 1
                    else:
                        kept.append(dest)
                entry.dests = kept
                if kept:
                    remaining.append(entry)
            unit.writebacks = remaining
        return wrote

    def _advance_threads(self):
        """Phase 4: instruction-pointer management."""
        still_active = []
        for thread in self.active:
            if thread.word_done():
                if thread.advance():
                    still_active.append(thread)
                else:
                    thread.finish_cycle = self.cycle
                    self.stats.thread_finish_cycle[thread.tid] = self.cycle
                    self.stats.threads_finished += 1
                    self.finished.append(thread)
            else:
                still_active.append(thread)
        self.active = still_active
        limit = self.config.max_active_threads
        while self._spawn_queue and (limit is None
                                     or len(self.active) < limit):
            program, bindings, priority = self._spawn_queue.popleft()
            self.spawn(program, bindings, priority)

    def _issue(self):
        """Phase 5: per-unit arbitration and operation issue."""
        issued = 0
        claimed = set()
        for thread in self.arbiter.order(self.active, self.cycle):
            for uid, op in list(thread.pending.items()):
                if not thread.sources_ready(op):
                    continue
                unit = self.units[uid]
                if unit.opcache is not None \
                        and not unit.opcache.ready(thread, self.cycle):
                    continue            # operation-cache fill in progress
                if uid in claimed:
                    self.stats.arbitration_losses += 1
                    continue
                self._issue_one(unit, thread, op)
                claimed.add(uid)
                issued += 1
        return issued

    def _issue_one(self, unit, thread, op):
        values = thread.capture_sources(op)
        spec = op.spec
        if spec.is_memory:
            if spec.is_load:
                addr = int(values[0]) + int(values[1])
                payload = MemRequest(thread, op, unit.slot, addr)
            else:
                addr = int(values[1]) + int(values[2])
                payload = MemRequest(thread, op, unit.slot, addr,
                                     store_value=values[0])
        elif spec.unit is UnitClass.BRU:
            payload = self._control_payload(thread, op, values)
            thread.control_inflight = True
        else:
            try:
                payload = spec.semantics(*values)
            except ArithmeticError as exc:
                raise SimulationError(
                    "thread %s: %s%r raised %s at cycle %d"
                    % (thread.name, op.name, tuple(values), exc, self.cycle))
        for dest in op.dests:
            thread.frame(dest.cluster).invalidate(dest.index)
        del thread.pending[unit.uid]
        unit.push(self.cycle, thread, op, payload)
        self.stats.record_issue(unit.slot, thread.tid)
        if self.observer is not None:
            self.observer("issue", cycle=self.cycle, thread=thread,
                          unit=unit.uid, op=op)

    def _control_payload(self, thread, op, values):
        if op.spec.is_halt:
            return ("halt",)
        if op.spec.is_fork:
            return ("fork", op.target.name, thread.capture_bindings(op))
        if op.name == "br":
            return ("jump", thread.program.resolve(op.target))
        taken = bool(values[0]) if op.name == "brt" else not values[0]
        if taken:
            return ("jump", thread.program.resolve(op.target))
        return ("jump", None)

    # -- main loop ---------------------------------------------------------

    def run(self, program, overrides=None, max_cycles=5_000_000):
        validate_program(program, self.config)
        self._program = program
        load_memory(self.memory, program, overrides)
        self.spawn(program.thread(program.main))
        frozen = 0
        while True:
            completed = self._complete_units()
            completed += self._complete_memory()
            wrote = self._write_back()
            self._advance_threads()
            issued = self._issue()
            self.cycle += 1
            self.stats.cycles = self.cycle
            if not self.active and not self._spawn_queue \
                    and self.memory.idle() \
                    and not any(self.units[uid].busy()
                                for uid in self.unit_order):
                break
            if self.cycle >= max_cycles:
                raise SimulationError(
                    "exceeded %d cycles (program %s on %s)"
                    % (max_cycles, program.main, self.config.name))
            in_flight = (self.memory.has_in_flight()
                         or any(self.units[uid].busy()
                                for uid in self.unit_order)
                         or any(self.units[uid].opcache is not None
                                and self.units[uid].opcache._fills
                                for uid in self.unit_order))
            if issued == 0 and completed == 0 and wrote == 0 \
                    and not in_flight:
                frozen += 1
                if frozen >= 2:
                    self._raise_deadlock()
            else:
                frozen = 0
        return SimResult(self.stats, self.memory, program, self.config,
                         self.finished + self.active)

    def _raise_deadlock(self):
        lines = ["deadlock at cycle %d" % self.cycle]
        if self._spawn_queue:
            lines.append("%d forked threads waiting for an active-set "
                         "slot" % len(self._spawn_queue))
        for thread in self.active:
            lines.append("thread %d (%s) at word %d: %s"
                         % (thread.tid, thread.name, thread.ip,
                            thread.stall_reason()))
        lines.extend(self.memory.parked_summary())
        raise DeadlockError("\n".join(lines))


def run_program(program, config, overrides=None, max_cycles=5_000_000,
                observer=None):
    """Convenience wrapper: simulate ``program`` on ``config``."""
    node = Node(config, observer=observer)
    return node.run(program, overrides=overrides, max_cycles=max_cycles)
