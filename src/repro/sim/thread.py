"""Thread contexts.

Each thread has its own instruction pointer and logical set of registers
(distributed over clusters) but shares the function units, interconnect
bandwidth, and memory with the other active threads (paper Section 2).
"""

from ..errors import SimulationError
from .registers import RegisterFrame

ACTIVE = "active"
DONE = "done"


class ThreadContext:
    """Runtime state of one thread on the node."""

    def __init__(self, tid, program, priority=None, spawn_cycle=0):
        self.tid = tid
        self.program = program
        self.name = program.name
        self.priority = tid if priority is None else priority
        self.frames = {}
        self.state = ACTIVE
        self.spawn_cycle = spawn_cycle
        self.finish_cycle = None
        # Instruction sequencing: the thread sits "before" instruction 0
        # until its first advance.
        self.ip = -1
        self.next_ip = 0
        self.pending = {}            # unit id -> Operation, not yet issued
        self.control_inflight = False
        self.halted = False
        # Event-kernel state (unused by the scan kernel): the thread's
        # predecoded program, its un-issued slot plans for the current
        # word, whether it is parked waiting for a wake condition, and
        # whether its word completed and the ip should advance.
        self.decoded = None
        self.pending_plans = []
        self.parked = False
        self.advance_ready = True

    def frame(self, cluster):
        frame = self.frames.get(cluster)
        if frame is None:
            frame = self.frames[cluster] = RegisterFrame(cluster)
        return frame

    # -- instruction sequencing ----------------------------------------

    def word_done(self):
        """True when every operation of the current instruction word has
        issued and any control operation has resolved (in-order issue,
        paper Section 2)."""
        return not self.pending and not self.control_inflight

    def advance(self):
        """Move to the next instruction word; returns False when the
        thread has halted."""
        if self.halted:
            self.state = DONE
            return False
        target = self.next_ip if self.next_ip is not None else self.ip + 1
        self.next_ip = None
        if target >= len(self.program.instructions):
            raise SimulationError(
                "thread %r fell off the end of its code (missing halt)"
                % self.name)
        self.ip = target
        word = self.program.instructions[target]
        self.pending = dict(word.slots)
        if not self.pending:
            raise SimulationError("empty instruction word in thread %r"
                                  % self.name)
        return True

    def sources_ready(self, op):
        """Check the presence bits of every register the op reads, and
        of every register it writes: an invalid destination means an
        older operation's writeback is still outstanding, and issuing
        over it would let the stale result land last (the classic
        scoreboard WAW interlock)."""
        for reg in op.source_regs():
            if not self.frame(reg.cluster).is_valid(reg.index):
                return False
        for reg in op.dests:
            if not self.frame(reg.cluster).is_valid(reg.index):
                return False
        return True

    def capture_sources(self, op):
        """Read source operand values at issue time."""
        values = []
        for src in op.srcs:
            if hasattr(src, "cluster"):
                values.append(self.frame(src.cluster).read(src.index))
            else:
                values.append(src.value)
        return values

    def capture_bindings(self, op):
        """Evaluate fork bindings at issue time."""
        captured = []
        for child_reg, value in op.bindings:
            if hasattr(value, "cluster"):
                captured.append((child_reg,
                                 self.frame(value.cluster).read(value.index)))
            else:
                captured.append((child_reg, value.value))
        return captured

    def pending_ops(self):
        """(unit id, Operation) pairs not yet issued, whichever kernel
        is running the thread (diagnostics only)."""
        if self.pending_plans:
            return [(plan.uid, plan.op) for plan in self.pending_plans]
        return list(self.pending.items())

    def stall_reason(self):
        """Describe why the thread cannot issue (deadlock diagnostics)."""
        reasons = []
        for uid, op in sorted(self.pending_ops()):
            waiting = [str(reg)
                       for reg in list(op.source_regs()) + list(op.dests)
                       if not self.frame(reg.cluster).is_valid(reg.index)]
            if waiting:
                reasons.append("%s at %s waits on %s"
                               % (op.name, uid, ", ".join(waiting)))
        if self.control_inflight:
            reasons.append("control operation in flight")
        return "; ".join(reasons) or "ready but never granted a unit"
