"""Deterministic fault injection for the node simulator.

The paper's thesis is that cycle-by-cycle runtime arbitration absorbs
dynamic disturbances that a static schedule cannot.  This module makes
those disturbances first class: a :class:`FaultPlan` is a seeded,
fully explicit list of :class:`FaultEvent` windows, and a
:class:`FaultInjector` answers the simulator's per-cycle questions
about it.  Because the plan is data (not random draws made during the
run), replaying the same plan on the same program and machine yields
bit-identical cycle counts and statistics.

Event kinds:

* ``unit_offline``    — a function unit cannot issue during the window;
  with rerouting enabled (the default) the arbiter sends its pending
  operations to surviving units of the same class instead (graceful
  degradation — runtime rescheduling under faults).
* ``writeback_block`` — a unit's computed results cannot claim a
  register-file port during the window and must retry the interconnect.
* ``mem_delay``       — references to an address window pay extra
  latency (a localized memory-latency spike).
* ``bank_blackout``   — references to an address window cannot start
  service until the window closes (a bank outage).
* ``presence_stall``  — a synchronizing reference's presence-bit
  update is deferred by ``extra`` cycles, delaying the wakeup of any
  parked consumers.
"""

import bisect
import json
import random
from dataclasses import dataclass

from ..errors import FaultConfigError

#: Recognized fault-event kinds.
FAULT_KINDS = ("unit_offline", "writeback_block", "mem_delay",
               "bank_blackout", "presence_stall")

_UNIT_KINDS = ("unit_offline", "writeback_block")
_MEMORY_KINDS = ("mem_delay", "bank_blackout", "presence_stall")


@dataclass(frozen=True)
class FaultEvent:
    """One fault window.

    ``unit`` names the affected function unit (unit kinds only);
    ``lo``/``hi`` bound the affected address range (memory kinds only,
    ``hi=None`` meaning the whole memory); ``extra`` is the added
    latency (``mem_delay``) or presence-bit deferral (``presence_stall``).
    """

    kind: str
    start: int
    duration: int
    unit: str = None
    lo: int = 0
    hi: int = None
    extra: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultConfigError("unknown fault kind %r (have: %s)"
                                   % (self.kind, ", ".join(FAULT_KINDS)))
        if self.start < 0 or self.duration < 1:
            raise FaultConfigError(
                "%s: start must be >= 0 and duration >= 1 (got %r, %r)"
                % (self.kind, self.start, self.duration))
        if self.kind in _UNIT_KINDS and not self.unit:
            raise FaultConfigError("%s event needs a 'unit' id"
                                   % self.kind)
        if self.kind in ("mem_delay", "presence_stall") and self.extra < 1:
            raise FaultConfigError("%s event needs 'extra' >= 1 cycles"
                                   % self.kind)
        if self.hi is not None and self.hi <= self.lo:
            raise FaultConfigError(
                "%s: empty address window [%d, %r)"
                % (self.kind, self.lo, self.hi))

    @property
    def end(self):
        return self.start + self.duration

    def active(self, cycle):
        return self.start <= cycle < self.end

    def covers(self, addr):
        return self.lo <= addr and (self.hi is None or addr < self.hi)

    def to_dict(self):
        entry = {"kind": self.kind, "start": self.start,
                 "duration": self.duration}
        if self.unit is not None:
            entry["unit"] = self.unit
        if self.lo:
            entry["lo"] = self.lo
        if self.hi is not None:
            entry["hi"] = self.hi
        if self.extra:
            entry["extra"] = self.extra
        return entry

    @classmethod
    def from_dict(cls, entry):
        if not isinstance(entry, dict):
            raise FaultConfigError("fault event must be an object, got %r"
                                   % (entry,))
        known = {"kind", "start", "duration", "unit", "lo", "hi", "extra"}
        unknown = set(entry) - known
        if unknown:
            raise FaultConfigError("unknown fault event fields: %s"
                                   % ", ".join(sorted(unknown)))
        try:
            return cls(**entry)
        except TypeError as exc:
            raise FaultConfigError("bad fault event %r: %s" % (entry, exc))


class FaultPlan:
    """An immutable, replayable schedule of fault events.

    ``reroute`` enables graceful degradation: pending operations of an
    offline unit are re-issued on surviving units of the same class.
    """

    def __init__(self, events=(), reroute=True, label="faults"):
        self.events = tuple(events)
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise FaultConfigError("plan events must be FaultEvent, "
                                       "got %r" % (event,))
        self.reroute = bool(reroute)
        self.label = label

    def __bool__(self):
        return bool(self.events)

    def __len__(self):
        return len(self.events)

    # -- serialization --------------------------------------------------

    def to_dict(self):
        return {"label": self.label, "reroute": self.reroute,
                "events": [event.to_dict() for event in self.events]}

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data):
        if not isinstance(data, dict):
            raise FaultConfigError("fault plan must be an object with an "
                                   "'events' list, got %r" % (data,))
        unknown = set(data) - {"label", "reroute", "events"}
        if unknown:
            raise FaultConfigError("unknown fault plan fields: %s"
                                   % ", ".join(sorted(unknown)))
        events = data.get("events", ())
        if not isinstance(events, (list, tuple)):
            raise FaultConfigError("'events' must be a list")
        return cls(events=[FaultEvent.from_dict(e) for e in events],
                   reroute=data.get("reroute", True),
                   label=data.get("label", "faults"))

    @classmethod
    def from_json(cls, text):
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultConfigError("fault plan is not valid JSON: %s" % exc)
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path):
        with open(path) as handle:
            return cls.from_json(handle.read())

    # -- validation -----------------------------------------------------

    def validate_against(self, config):
        """Check every event against a machine configuration."""
        for event in self.events:
            if event.unit is not None \
                    and event.unit not in config.unit_by_id:
                raise FaultConfigError(
                    "fault event names unit %s absent from machine %s "
                    "(have: %s)"
                    % (event.unit, config.name,
                       ", ".join(sorted(config.unit_by_id))))
            if event.kind in _MEMORY_KINDS:
                hi = event.hi if event.hi is not None else config.memory_size
                if not (0 <= event.lo < hi <= config.memory_size):
                    raise FaultConfigError(
                        "fault window [%d, %d) outside memory [0, %d)"
                        % (event.lo, hi, config.memory_size))

    # -- generation -----------------------------------------------------

    @classmethod
    def random(cls, seed, config, rate=1.0, horizon=10_000,
               duration_range=(50, 400), reroute=True):
        """A seeded random plan of ``unit_offline`` windows.

        ``rate`` is the expected number of fault windows per 1000
        cycles of ``horizon``; targets are drawn among units with at
        least one surviving sibling of the same class, so rerouting is
        always possible.  The same (seed, config, rate, horizon) always
        yields the same plan.
        """
        rng = random.Random(seed)
        by_kind = {}
        for slot in config.units:
            by_kind.setdefault(slot.kind, []).append(slot.uid)
        candidates = sorted(uid for uids in by_kind.values()
                            if len(uids) > 1 for uid in uids)
        events = []
        if candidates:
            count = int(round(rate * horizon / 1000.0))
            for __ in range(count):
                events.append(FaultEvent(
                    kind="unit_offline",
                    unit=rng.choice(candidates),
                    start=rng.randrange(horizon),
                    duration=rng.randint(*duration_range)))
        events.sort(key=lambda e: (e.start, e.unit))
        return cls(events=events, reroute=reroute,
                   label="random(seed=%s, rate=%s)" % (seed, rate))


class FaultInjector:
    """Per-run oracle the simulator consults each cycle.

    Pure function of (plan, cycle, unit/address): it draws no random
    numbers at run time, so injection never perturbs the memory
    system's latency stream beyond the faults themselves.
    """

    def __init__(self, plan, stats):
        self.plan = plan
        self.stats = stats
        offline = {}
        blocked = {}
        self._mem_delays = []
        self._blackouts = []
        self._presence = []
        for event in plan.events:
            if event.kind == "unit_offline":
                offline.setdefault(event.unit, []).append(event)
            elif event.kind == "writeback_block":
                blocked.setdefault(event.unit, []).append(event)
            elif event.kind == "mem_delay":
                self._mem_delays.append(event)
            elif event.kind == "bank_blackout":
                self._blackouts.append(event)
            elif event.kind == "presence_stall":
                self._presence.append(event)
        # Unit queries run once per pending operation per cycle, so the
        # per-unit windows are merged into sorted disjoint intervals and
        # answered by binary search.
        self._offline = {uid: _merge_windows(events)
                         for uid, events in offline.items()}
        self._blocked = {uid: _merge_windows(events)
                         for uid, events in blocked.items()}

    @property
    def reroute(self):
        return self.plan.reroute

    def unit_offline(self, uid, cycle):
        return _in_windows(self._offline.get(uid), cycle)

    def writeback_blocked(self, uid, cycle):
        return _in_windows(self._blocked.get(uid), cycle)

    def memory_stall(self, addr, cycle):
        """Extra service latency for a reference starting now: latency
        spikes plus time until every covering blackout window closes."""
        stall = 0
        for event in self._mem_delays:
            if event.active(cycle) and event.covers(addr):
                stall += event.extra
        for event in self._blackouts:
            if event.active(cycle) and event.covers(addr):
                stall = max(stall, event.end - cycle)
                self.stats.fault_blackout_stalls += 1
        if stall:
            self.stats.fault_mem_stall_cycles += stall
        return stall

    def presence_delay(self, addr, cycle):
        """Cycles by which a presence-bit update at ``addr`` is deferred."""
        delay = 0
        for event in self._presence:
            if event.active(cycle) and event.covers(addr):
                delay = max(delay, event.extra)
        if delay:
            self.stats.fault_presence_stalls += 1
        return delay


def _merge_windows(events):
    """Merge event windows into parallel sorted (starts, ends) lists of
    disjoint half-open intervals."""
    starts, ends = [], []
    for span in sorted((event.start, event.end) for event in events):
        if ends and span[0] <= ends[-1]:
            ends[-1] = max(ends[-1], span[1])
        else:
            starts.append(span[0])
            ends.append(span[1])
    return starts, ends


def _in_windows(windows, cycle):
    if not windows:
        return False
    starts, ends = windows
    index = bisect.bisect_right(starts, cycle) - 1
    return index >= 0 and cycle < ends[index]
