"""Lane-parallel batch kernel: N sweep variants of one compiled
program simulated in lockstep by a single event-kernel timing spine.

The paper's evaluation grid re-interprets the *same compiled program*
once per input-seed cell; a process pool only scales that with core
count.  This module amortizes the expensive part — predecode-driven
scheduling, arbitration, the completion heap, memory timing — across
every cell at once:

* **One shared timing spine.**  :class:`BatchNode` is an
  :class:`~repro.sim.event.EventNode` (superblock fusion disabled)
  whose *control plane* — cycle counter, issue/arbitration decisions,
  completion heap, presence bitmasks, memory latency RNG — is
  simulated exactly once.  This is sound because the kernel's timing
  depends on register/memory *values* through exactly three channels:
  resolved branch directions, memory reference addresses, and
  arithmetic faults.  While all live lanes agree on those, the shared
  simulation *is* each lane's own scalar run, bit for bit.

* **Per-lane value vectors.**  Registers and memory locations whose
  contents differ across lanes hold a :class:`LaneVec` — a numpy
  vector with one slot per lane — instead of a scalar.  Hot opcode
  classes (int/fp ALU, moves, compares) execute as single numpy
  kernels over the lane axis; everything else falls back to a
  per-lane loop over the opcode's scalar semantics.  Dtype discipline
  keeps results bit-identical to the scalar kernel: float64 is used
  only for genuine Python floats (IEEE-identical), int64 only for
  bounded ints (|v| < 2**31, rechecked after every kernel), and
  anything else rides in an object vector of plain Python values.

* **Peeling.**  The moment a lane *disagrees* with the lockstep
  majority on one of the three timing channels — a non-unanimous
  branch direction, a divergent memory address, or a lane-local
  arithmetic fault — it is *peeled*: dropped from the live mask and
  re-run from scratch on the scalar event kernel (the same de-fuse
  discipline superblock span boundaries use, one level up).  Peeled
  lanes keep their slots in every vector as inert garbage — they are
  excluded from votes and extraction, never compacted.  Divergence is
  always detected during payload computation in ``_issue_plan``,
  which mutates no machine state until the payload is complete, so
  the surviving majority continues undisturbed.

At the end of the run each surviving lane's architectural state —
final memory image, presence bits, cycle count, the full statistics
record — is extracted into its own :class:`~repro.sim.node.SimResult`
and is bit-identical to a serial run of the same ``run_signature``
with that lane's inputs (``tests/property`` enforces a four-way
scan/event/fused/batch equivalence).  Lanes must share everything the
run signature covers — machine config, fault plan, latency seed,
cycle budget — and differ **only** in input data; anything else
changes timing undetectably and must not share a bundle
(:meth:`Harness.run_many` groups accordingly).
"""

import copy
from heapq import heappush

try:
    import numpy as np
except ImportError:              # pragma: no cover - numpy is baked in
    np = None

from ..errors import SimulationError
from .event import EventNode
from .memory import MemRequest
from .node import SimResult

#: int64 lane vectors only ever hold values with |v| < 2**31, so any
#: two-operand kernel result fits in int64 exactly (sums < 2**32,
#: products < 2**62); results that leave the bound are demoted to an
#: object vector of arbitrary-precision Python ints.
_INT_BOUND = 1 << 31


class AllLanesPeeled(Exception):
    """Internal control signal: every lane diverged; the shared run is
    meaningless and the caller re-runs all lanes on the scalar kernel."""


def batch_supported():
    """Whether the batch backend can run at all (numpy present)."""
    return np is not None


class LaneVec:
    """A per-lane value vector flowing through the shared machine.

    ``kind`` is ``"f"`` (float64; every lane is a Python float),
    ``"i"`` (int64; every lane a Python int with |v| < 2**31) or
    ``"o"`` (object; arbitrary per-lane Python values).  Vectors are
    immutable once built; kernels always produce fresh ones.
    Dead-lane slots hold inert copies of live values so the dtype
    classification and the int64 bound hold over *all* slots.
    """

    __slots__ = ("kind", "a")

    def __init__(self, kind, a):
        self.kind = kind
        self.a = a

    @classmethod
    def of(cls, values):
        """Build from per-lane Python scalars, picking the strictest
        dtype that is provably bit-faithful to the scalar kernel."""
        if all(type(v) is float for v in values):
            return cls("f", np.array(values, dtype=np.float64))
        if all(type(v) is int and -_INT_BOUND < v < _INT_BOUND
               for v in values):
            return cls("i", np.array(values, dtype=np.int64))
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        return cls("o", arr)

    @classmethod
    def full(cls, value, lanes):
        return cls.of([value] * lanes)

    def get(self, lane):
        """The lane's value as the plain Python scalar the scalar
        kernel would hold (canonical digests depend on this)."""
        if self.kind == "f":
            return float(self.a[lane])
        if self.kind == "i":
            return int(self.a[lane])
        return self.a[lane]

    def __len__(self):
        return len(self.a)

    def __repr__(self):
        return "LaneVec(%s, %r)" % (self.kind, self.a.tolist())


def _ivec(arr):
    """Wrap an exact int64 kernel result, demoting to the object path
    when any slot leaves the creation bound."""
    if int(np.abs(arr).max()) < _INT_BOUND:
        return LaneVec("i", arr)
    out = np.empty(len(arr), dtype=object)
    out[:] = [int(v) for v in arr.tolist()]
    return LaneVec("o", out)


# -- vectorized opcode kernels ------------------------------------------
#
# Each kernel takes (node, args) where args are LaneVecs (scalars
# already broadcast) and returns a LaneVec, or None to decline (the
# per-lane scalar fallback then runs).  Kernels may peel lanes (fdiv by
# zero, fsqrt of a negative) so the scalar re-run reproduces the
# lane's exception exactly.

def _k_f2(ufunc):
    def kernel(node, args):
        a, b = args
        if a.kind == "f" and b.kind == "f":
            return LaneVec("f", ufunc(a.a, b.a))
        return None
    return kernel


def _k_f1(ufunc):
    def kernel(node, args):
        (a,) = args
        if a.kind == "f":
            return LaneVec("f", ufunc(a.a))
        return None
    return kernel


def _k_i2(ufunc):
    def kernel(node, args):
        a, b = args
        if a.kind == "i" and b.kind == "i":
            return _ivec(ufunc(a.a, b.a))
        return None
    return kernel


def _k_i1(ufunc):
    def kernel(node, args):
        (a,) = args
        if a.kind == "i":
            return _ivec(ufunc(a.a))
        return None
    return kernel


def _k_cmp(op):
    def kernel(node, args):
        a, b = args
        if a.kind == b.kind and a.kind in ("f", "i"):
            return LaneVec("i", op(a.a, b.a).astype(np.int64))
        return None
    return kernel


def _k_fmin(node, args):
    # Python min(a, b) is ``b if b < a else a`` — including its NaN
    # behavior — which np.where reproduces exactly (np.minimum would
    # propagate NaN where Python does not).
    a, b = args
    if a.kind == "f" and b.kind == "f":
        return LaneVec("f", np.where(b.a < a.a, b.a, a.a))
    return None


def _k_fmax(node, args):
    a, b = args
    if a.kind == "f" and b.kind == "f":
        return LaneVec("f", np.where(b.a > a.a, b.a, a.a))
    return None


def _k_fdiv(node, args):
    a, b = args
    if a.kind != "f" or b.kind != "f":
        return None
    bad = [lane for lane in node._live_list if b.a[lane] == 0.0]
    if bad:
        # The scalar kernel raises ZeroDivisionError here; peel so the
        # re-run reproduces it (numpy would silently yield inf/nan).
        node._peel(bad, "fdiv-by-zero")
    with np.errstate(divide="ignore", invalid="ignore"):
        return LaneVec("f", a.a / np.where(b.a == 0.0, 1.0, b.a))


def _k_fsqrt(node, args):
    (a,) = args
    if a.kind != "f":
        return None
    bad = [lane for lane in node._live_list if a.a[lane] < 0.0]
    if bad:
        # math.sqrt raises ValueError on negatives; numpy gives nan.
        node._peel(bad, "fsqrt-negative")
    with np.errstate(invalid="ignore"):
        return LaneVec("f", np.sqrt(np.where(a.a < 0.0, 0.0, a.a)))


def _k_itof(node, args):
    (a,) = args
    if a.kind == "i":
        # |v| < 2**31 converts to float64 exactly.
        return LaneVec("f", a.a.astype(np.float64))
    return None


def _k_mov(node, args):
    return args[0]                 # identity; vectors are immutable


def _build_kernels():
    return {
        "fadd": _k_f2(np.add), "fsub": _k_f2(np.subtract),
        "fmul": _k_f2(np.multiply),
        "fneg": _k_f1(np.negative), "fabs": _k_f1(np.absolute),
        "fdiv": _k_fdiv, "fsqrt": _k_fsqrt,
        "fmin": _k_fmin, "fmax": _k_fmax,
        "iadd": _k_i2(np.add), "isub": _k_i2(np.subtract),
        "imul": _k_i2(np.multiply),
        "iand": _k_i2(np.bitwise_and), "ior": _k_i2(np.bitwise_or),
        "ixor": _k_i2(np.bitwise_xor),
        "imin": _k_i2(np.minimum), "imax": _k_i2(np.maximum),
        "ineg": _k_i1(np.negative), "inot": _k_i1(np.invert),
        "itof": _k_itof,
        "imov": _k_mov, "fmov": _k_mov,
        "ieq": _k_cmp(np.equal), "ine": _k_cmp(np.not_equal),
        "ilt": _k_cmp(np.less), "ile": _k_cmp(np.less_equal),
        "igt": _k_cmp(np.greater), "ige": _k_cmp(np.greater_equal),
        "feq": _k_cmp(np.equal), "fne": _k_cmp(np.not_equal),
        "flt": _k_cmp(np.less), "fle": _k_cmp(np.less_equal),
        "fgt": _k_cmp(np.greater), "fge": _k_cmp(np.greater_equal),
        # idiv / imod / ishl / ishr / ftoi take the per-lane fallback:
        # trap semantics, unbounded shifts, and float->int truncation
        # are cheaper to keep exact than to vectorize.
    }


_KERNELS = None


class _LaneMemory:
    """A per-lane view of the shared final memory image — just enough
    surface for SimResult readout and the equivalence suite
    (``_values``/``_empty``/``read_range``/``presence_range``)."""

    __slots__ = ("size", "_values", "_empty")

    def __init__(self, size, values, empty):
        self.size = size
        self._values = values
        self._empty = empty

    def peek(self, addr):
        return self._values.get(addr, 0)

    def is_full(self, addr):
        return addr not in self._empty

    def read_range(self, base, size):
        return [self._values.get(addr, 0)
                for addr in range(base, base + size)]

    def presence_range(self, base, size):
        return [self.is_full(addr) for addr in range(base, base + size)]


class BatchOutcome:
    """What :func:`run_batch` hands back: one SimResult per lane that
    survived lockstep (None for peeled lanes, which the caller re-runs
    on the scalar kernel) plus the peel ledger."""

    __slots__ = ("lanes", "results", "peeled")

    def __init__(self, lanes, results, peeled):
        self.lanes = lanes
        self.results = results       # list: SimResult | None per lane
        self.peeled = peeled         # lane -> (reason, cycle)

    @property
    def lockstep_lanes(self):
        return [lane for lane, sim in enumerate(self.results)
                if sim is not None]


class BatchNode(EventNode):
    """The event kernel with per-lane value vectors and peeling.

    Fusion is forced off: superblock closures bake scalar value flow
    into generated code, while the batch value plane must stay
    LaneVec-transparent.  The unfused event kernel is the timing spine
    the equivalence suite already pins to the scan kernel.
    """

    engine = "batch"

    def __init__(self, config, lanes, observer=None, fast_forward=True):
        global _KERNELS
        if np is None:
            raise SimulationError(
                "batch backend requires numpy, which is unavailable")
        if _KERNELS is None:
            _KERNELS = _build_kernels()
        super().__init__(config, observer=observer,
                         fast_forward=fast_forward)
        self._fusion = False
        self.lanes = int(lanes)
        self._live = set(range(self.lanes))
        self._live_list = sorted(self._live)
        self.peeled = {}             # lane -> (reason, cycle)
        self.stats.batch_lanes = self.lanes

    # -- peel bookkeeping ------------------------------------------------

    def _peel(self, lanes, reason):
        """Drop lanes from lockstep.  Only ever called during payload
        computation in ``_issue_plan`` — before any machine state is
        mutated for the op — so the surviving majority's timing is
        untouched.  Peeled lanes keep their vector slots as garbage."""
        cycle = self.cycle
        for lane in lanes:
            if lane in self._live:
                self._live.discard(lane)
                self.peeled[lane] = (reason, cycle)
        self._live_list = sorted(self._live)
        self.stats.batch_peeled_lanes = len(self.peeled)
        if not self._live_list:
            raise AllLanesPeeled()

    def _peel_rest(self, reason):
        """Mark every still-live lane peeled (shared-timing error paths:
        the whole bundle falls back to scalar re-runs)."""
        cycle = self.cycle
        for lane in self._live_list:
            self.peeled[lane] = (reason, cycle)
        self._live = set()
        self._live_list = []
        self.stats.batch_peeled_lanes = len(self.peeled)

    def _vote(self, per_lane, reason):
        """Unanimity-or-peel over the live lanes: returns the majority
        value, peeling every lane that disagrees.  Ties keep the side
        containing the lowest live lane."""
        tally = {}
        for lane in self._live_list:
            tally.setdefault(per_lane(lane), []).append(lane)
        if len(tally) == 1:
            return next(iter(tally))
        winner, __ = max(tally.items(),
                         key=lambda kv: (len(kv[1]), -min(kv[1])))
        losers = [lane for key, lanes in tally.items()
                  if key != winner for lane in lanes]
        self._peel(losers, reason)
        return winner

    # -- value plane -----------------------------------------------------

    def _broadcast(self, value):
        if isinstance(value, LaneVec):
            return value
        return LaneVec.full(value, self.lanes)

    def _fallback(self, plan, values):
        """Per-lane scalar semantics: exact by construction.  A lane
        whose semantics raise is peeled (the scalar re-run reproduces
        the exception); dead slots are filled with a copy of the first
        live result so dtype classification stays live-driven."""
        sem = plan.semantics
        results = {}
        bad = []
        for lane in self._live_list:
            args = [v.get(lane) if isinstance(v, LaneVec) else v
                    for v in values]
            try:
                results[lane] = sem(*args)
            except Exception:
                bad.append(lane)
        if bad:
            self._peel(bad, "arith:%s" % plan.name)
        fill = results[self._live_list[0]]
        return LaneVec.of([results.get(lane, fill)
                           for lane in range(self.lanes)])

    def _batch_payload(self, plan, values):
        """Compute one op's result across the lane axis."""
        if not any(isinstance(v, LaneVec) for v in values):
            return plan.semantics(*values)     # lanes agree: stay scalar
        kernel = _KERNELS.get(plan.name)
        if kernel is not None:
            out = kernel(self, [self._broadcast(v) for v in values])
            if out is not None:
                return out
        return self._fallback(plan, values)

    def _lane_int(self, value, lane):
        if isinstance(value, LaneVec):
            return int(value.get(lane))
        return int(value)

    def _addr_vote(self, base, index):
        """The memory unit's address addition, with unanimity-or-peel
        over the lane axis (addresses drive service order, latency
        draws, and presence-bit synchronization — all shared state)."""
        if not isinstance(base, LaneVec) and not isinstance(index, LaneVec):
            return int(base) + int(index)
        return self._vote(
            lambda lane: self._lane_int(base, lane)
            + self._lane_int(index, lane), "mem-address")

    def _branch_vote(self, cond):
        """Resolved conditional-branch direction, unanimity-or-peel."""
        if not isinstance(cond, LaneVec):
            return bool(cond)
        return self._vote(lambda lane: bool(cond.get(lane)), "branch")

    # -- issue (the only kernel phase that reads values) -----------------

    def _issue_plan(self, unit, thread, plan, cycle):
        # Mirrors EventNode._issue_plan with the value plane routed
        # through the lane kernels.  plan.exec_fn is deliberately
        # bypassed: its specialized closures call scalar semantics on
        # raw frame slots.  Payload computation (where peels can fire)
        # strictly precedes every state mutation, exactly like the
        # parent.
        frames = thread.frames
        if not plan.is_memory and not plan.is_bru:
            values = self._gather_values(plan, frames)
            try:
                payload = self._batch_payload(plan, values)
            except ArithmeticError as exc:
                raise SimulationError(
                    "thread %s: %s%r raised %s at cycle %d"
                    % (thread.name, plan.name, tuple(values), exc, cycle))
        elif plan.is_memory:
            values = self._gather_values(plan, frames)
            if plan.is_load:
                addr = self._addr_vote(values[0], values[1])
                payload = MemRequest(thread, plan.op, unit.slot, addr,
                                     spec=plan.spec)
            else:
                addr = self._addr_vote(values[1], values[2])
                payload = MemRequest(thread, plan.op, unit.slot, addr,
                                     store_value=values[0], spec=plan.spec)
        else:
            control = plan.control
            if control == "brt" or control == "brf":
                values = self._gather_values(plan, frames)
            if control == "fork":
                bindings = []
                for child_reg, is_reg, a, b in plan.bindings_plan:
                    if is_reg:
                        frame = frames.get(a)
                        if frame is None:
                            bindings.append((child_reg, 0))
                        else:
                            stored = frame._values
                            bindings.append((child_reg, stored[b]
                                             if b < len(stored) else 0))
                    else:
                        bindings.append((child_reg, a))
                payload = ("fork", plan.fork_name, bindings)
            elif control == "brt":
                payload = plan.taken_payload \
                    if self._branch_vote(values[0]) \
                    else plan.untaken_payload
            elif control == "brf":
                payload = plan.untaken_payload \
                    if self._branch_vote(values[0]) \
                    else plan.taken_payload
            else:                    # br / halt
                payload = plan.taken_payload
            thread.control_inflight = True
        for cluster, index, bit in plan.dest_triples:
            frame = frames.get(cluster)
            if frame is None:
                frame = thread.frame(cluster)
            stored = frame._values
            if index >= len(stored):
                stored.extend([0] * (index + 1 - len(stored)))
            frame._invalid |= bit
        pending = thread.pending_plans
        pending.remove(plan)
        if not pending and not thread.control_inflight:
            thread.advance_ready = True
            self._adv_any = True
        self._pipe_seq += 1
        heappush(self._pipe, (cycle + unit.latency, unit.index,
                              self._pipe_seq, thread, plan, payload))
        self._issued_tids[thread.tid] += 1
        observer = self.observer
        if observer is not None:
            observer("issue", cycle=cycle, thread=thread,
                     unit=unit.slot.uid, op=plan.op)

    # -- per-lane extraction ---------------------------------------------

    def lane_result(self, lane):
        """Materialize one surviving lane's architectural state as its
        own SimResult, with plain Python scalars everywhere a scalar
        run would have them."""
        if lane not in self._live:
            raise SimulationError("lane %d was peeled (%s)"
                                  % (lane, self.peeled.get(lane)))
        shared = self.memory
        values = {}
        for addr, value in shared._values.items():
            values[addr] = value.get(lane) \
                if isinstance(value, LaneVec) else value
        memory = _LaneMemory(shared.size, values, set(shared._empty))
        stats = copy.deepcopy(self.stats)
        return SimResult(stats, memory, self._program, self.config,
                         self.finished + self.active)


def merge_overrides(lane_overrides):
    """Fold per-lane input dicts into one override dict whose values
    are scalars where every lane agrees and LaneVecs where they
    differ.  repr-equality is deliberate: it distinguishes 0.0 from
    -0.0 and 1 from 1.0, so a collapsed scalar is bit-faithful to
    every lane."""
    merged = {}
    first = lane_overrides[0]
    for name in first:
        length = len(first[name])
        columns = []
        for offset in range(length):
            cell = [inputs[name][offset] for inputs in lane_overrides]
            if len({repr(v) for v in cell}) == 1:
                columns.append(cell[0])
            else:
                columns.append(LaneVec.of(cell))
        merged[name] = columns
    return merged


def run_batch(program, config, lane_overrides, max_cycles=5_000_000,
              fast_forward=True, watchdog_cycles=None):
    """Simulate ``len(lane_overrides)`` input variants of ``program``
    in lockstep; returns a :class:`BatchOutcome`.

    Peeled lanes come back with ``results[lane] is None`` and must be
    re-run on the scalar kernel by the caller (the harness does this,
    reproducing even per-lane errors faithfully).  A shared-timing
    error (watchdog, deadlock, an all-lanes arithmetic trap) peels
    every remaining lane rather than guessing which lanes it belongs
    to."""
    lanes = len(lane_overrides)
    if lanes < 1:
        raise SimulationError("run_batch needs at least one lane")
    merged = merge_overrides(lane_overrides)
    node = BatchNode(config, lanes, fast_forward=fast_forward)
    try:
        node.run(program, overrides=merged, max_cycles=max_cycles,
                 watchdog_cycles=watchdog_cycles)
    except AllLanesPeeled:
        pass
    except Exception as exc:
        node._peel_rest("error:%s" % type(exc).__name__)
    results = [None] * lanes
    for lane in node._live_list:
        results[lane] = node.lane_result(lane)
    return BatchOutcome(lanes, results, dict(node.peeled))
