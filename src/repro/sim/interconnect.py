"""Runtime arbitration for the unit interconnection network.

Writebacks from function units to register files consume register-file
write ports and (for remote writes) buses.  The simulator charges each
granted write against the per-cycle capacities implied by the configured
:class:`~repro.machine.interconnect.InterconnectSpec`; writes that find
no free port or bus retry on a later cycle (the paper: "The simulator
manages arbitration for buses between function units if conflicts
arise").
"""

from ..machine.interconnect import UNLIMITED


class WritebackNetwork:
    """Per-cycle port/bus accounting for one simulation."""

    def __init__(self, spec, n_clusters, stats):
        self.spec = spec
        self.n_clusters = n_clusters
        self.stats = stats
        self._local_used = [0] * n_clusters
        self._global_used = [0] * n_clusters
        self._bus_used = 0
        # Fully connected (every capacity unlimited): every grant
        # trivially succeeds, which the event kernel exploits to bypass
        # per-write arbitration entirely.
        self.unrestricted = (spec.local_ports is UNLIMITED
                             and spec.global_ports is UNLIMITED
                             and spec.machine_bus is UNLIMITED
                             and not spec.combined_port)

    def new_cycle(self):
        """Reset the per-cycle capacity counters."""
        for i in range(self.n_clusters):
            self._local_used[i] = 0
            self._global_used[i] = 0
        self._bus_used = 0

    def _within(self, used, capacity):
        return capacity is UNLIMITED or used < capacity

    def try_grant(self, src_cluster, dest_cluster):
        """Attempt one register write this cycle; True on success."""
        spec = self.spec
        local = src_cluster == dest_cluster
        if spec.combined_port:
            # A single port per register file shared by everyone.
            used = self._local_used[dest_cluster]
            if not self._within(used, spec.local_ports):
                self.stats.writeback_conflicts += 1
                return False
            self._local_used[dest_cluster] += 1
            self.stats.writeback_grants += 1
            return True
        if local:
            if not self._within(self._local_used[dest_cluster],
                                spec.local_ports):
                self.stats.writeback_conflicts += 1
                return False
            self._local_used[dest_cluster] += 1
            self.stats.writeback_grants += 1
            return True
        # Remote write: needs a global port on the destination file and,
        # under Shared-bus, the machine-wide bus.
        if not self._within(self._global_used[dest_cluster],
                            spec.global_ports):
            self.stats.writeback_conflicts += 1
            return False
        if not self._within(self._bus_used, spec.machine_bus):
            self.stats.writeback_conflicts += 1
            return False
        self._global_used[dest_cluster] += 1
        self._bus_used += 1
        self.stats.writeback_grants += 1
        return True
