"""Operation caches (paper Section 2/5, relaxed assumption).

Each function unit contains an *operation cache*; summed over all
units, the operation caches form the node's instruction cache.  The
paper's evaluation assumes no operation-cache misses ("no instruction
cache misses or operation prefetch delays are included"); this module
makes that assumption optional so its cost can be measured.

Model: each function unit caches the operations it recently issued,
keyed by (thread program, word index), with LRU replacement.  An
operation whose word is absent pays a fixed fill penalty before it can
issue (the unit stays available to other threads whose operations are
resident — a coupling-friendly miss model).

A node-wide *fill board* (shared by every unit's cache) dedupes
in-progress fills: while one unit is fetching a word, any other unit
that wants the same word joins the in-flight fill instead of starting
(and paying for, and counting) an independent one.  Without it, a
fault-rerouted thread bouncing between surviving units would start a
fresh fill — and increment ``opcache_misses`` — on every unit it
visited for the same word.
"""

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class OpCacheSpec:
    """Parameters of the per-unit operation cache.

    ``capacity`` counts cached words per function unit; ``fill_penalty``
    is the extra delay (cycles) before a missing operation can issue.
    ``None`` capacity means the paper's perfect-cache assumption.
    """

    capacity: int = 64
    fill_penalty: int = 4

    def __post_init__(self):
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError("operation cache capacity must be >= 1")
        if self.fill_penalty < 1:
            raise ConfigError("fill penalty must be >= 1")


class OperationCache:
    """Runtime state of one unit's operation cache.

    ``fill_board`` is an optional dict shared between the caches of one
    node, mapping in-flight fill keys to their ready cycles.
    """

    def __init__(self, spec, stats, fill_board=None):
        self.spec = spec
        self.stats = stats
        self._lines = OrderedDict()     # (program name, word) -> True
        self._fills = {}                # key -> ready cycle
        self._board = fill_board        # shared key -> ready cycle

    def ready(self, thread, cycle):
        """Can the thread's current word issue from this unit now?
        A miss starts (or joins) a fill and returns False."""
        key = (thread.program.name, thread.ip)
        if key in self._lines:
            self._lines.move_to_end(key)
            return True
        fill_ready = self._fills.get(key)
        if fill_ready is None:
            shared = self._board.get(key) if self._board is not None \
                else None
            if shared is not None and cycle < shared:
                # Another unit is already fetching this word: join its
                # in-flight fill (one fetch, one penalty, one miss).
                self._fills[key] = shared
            else:
                self._fills[key] = cycle + self.spec.fill_penalty
                self.stats.opcache_misses += 1
                if self._board is not None:
                    self._board[key] = self._fills[key]
            return False
        if cycle >= fill_ready:
            del self._fills[key]
            if self._board is not None \
                    and self._board.get(key) == fill_ready:
                del self._board[key]
            self._insert(key)
            return True
        return False

    def _insert(self, key):
        self._lines[key] = True
        while len(self._lines) > self.spec.capacity:
            self._lines.popitem(last=False)

    def resident_words(self):
        return len(self._lines)

    # -- skip-ahead support ---------------------------------------------

    def fill_pending(self, thread):
        """True when the thread's current word has a fill in progress."""
        return (thread.program.name, thread.ip) in self._fills

    def fill_ready_cycle(self, thread):
        """The cycle the thread's in-progress fill completes, or None
        when no fill for its current word is in flight (event-kernel
        wake scheduling)."""
        return self._fills.get((thread.program.name, thread.ip))

    def has_fills(self):
        return bool(self._fills)

    def next_fill_ready(self):
        """Earliest ready cycle among in-progress fills, or None."""
        return min(self._fills.values()) if self._fills else None
