"""Operation caches (paper Section 2/5, relaxed assumption).

Each function unit contains an *operation cache*; summed over all
units, the operation caches form the node's instruction cache.  The
paper's evaluation assumes no operation-cache misses ("no instruction
cache misses or operation prefetch delays are included"); this module
makes that assumption optional so its cost can be measured.

Model: each function unit caches the operations it recently issued,
keyed by (thread program, word index), with LRU replacement.  An
operation whose word is absent pays a fixed fill penalty before it can
issue (the unit stays available to other threads whose operations are
resident — a coupling-friendly miss model).
"""

from collections import OrderedDict
from dataclasses import dataclass

from ..errors import ConfigError


@dataclass(frozen=True)
class OpCacheSpec:
    """Parameters of the per-unit operation cache.

    ``capacity`` counts cached words per function unit; ``fill_penalty``
    is the extra delay (cycles) before a missing operation can issue.
    ``None`` capacity means the paper's perfect-cache assumption.
    """

    capacity: int = 64
    fill_penalty: int = 4

    def __post_init__(self):
        if self.capacity is not None and self.capacity < 1:
            raise ConfigError("operation cache capacity must be >= 1")
        if self.fill_penalty < 1:
            raise ConfigError("fill penalty must be >= 1")


class OperationCache:
    """Runtime state of one unit's operation cache."""

    def __init__(self, spec, stats):
        self.spec = spec
        self.stats = stats
        self._lines = OrderedDict()     # (program name, word) -> True
        self._fills = {}                # key -> ready cycle

    def ready(self, thread, cycle):
        """Can the thread's current word issue from this unit now?
        A miss starts (or continues) a fill and returns False."""
        key = (thread.program.name, thread.ip)
        if key in self._lines:
            self._lines.move_to_end(key)
            return True
        fill_ready = self._fills.get(key)
        if fill_ready is None:
            self._fills[key] = cycle + self.spec.fill_penalty
            self.stats.opcache_misses += 1
            return False
        if cycle >= fill_ready:
            del self._fills[key]
            self._insert(key)
            return True
        return False

    def _insert(self, key):
        self._lines[key] = True
        while len(self._lines) > self.spec.capacity:
            self._lines.popitem(last=False)

    def resident_words(self):
        return len(self._lines)
