"""The event-driven simulator kernel.

:class:`EventNode` runs the same five-phase cycle model as the scan
kernel (:class:`~repro.sim.node.Node`) but organizes the work around
*events* instead of rescans, with three structural changes:

* **Predecode** — at load time every instruction word is compiled into
  :class:`~repro.sim.predecode.SlotPlan` objects (resolved opcode spec,
  flat operand offsets, prebuilt control payloads, home-unit index), so
  the per-cycle path does no dict lookups or spec resolution.
* **A single completion heap** — issued operations go into one global
  heap keyed ``(ready_cycle, unit_index, seq)``, which reproduces the
  scan kernel's drain order (units in table order, FIFO within a unit)
  while making "anything due this cycle?" a single peek.  The memory
  system is only ticked on cycles it has an event due.
* **Thread parking / wake queues** — a thread whose pending operations
  are all waiting on presence bits is *parked* and not rescanned;
  registers are thread-private, so only the thread's own writebacks can
  set its presence bits, and the writeback path unparks it.  Threads
  blocked on an operation-cache fill park with a timed wake.  Quiet
  stretches where every thread is parked are then jumped over wholesale
  — the generalization of the scan kernel's ``_skip_target`` fast path,
  with the same clamps so watchdog/pause/max-cycle checks fire on
  exactly the same cycle.

Issue-side statistics are batched into flat counters and folded into
:class:`~repro.sim.stats.Stats` when the loop exits (including via
pause or error), so the hot loop never touches a ``Counter``.

Every architecturally visible quantity — cycle counts, statistics,
memory contents and presence bits, RNG draw order, fault interactions —
is bit-identical to the scan kernel; ``tests/property`` enforces this.
"""

import copy
from bisect import bisect_left
from collections import defaultdict
from heapq import heappop, heappush

from ..errors import SimulationError
from .function_unit import WritebackEntry
from .memory import MemRequest
from .node import Node, SimResult
from .predecode import _WARMUP_DISPATCHES, compile_mt_run, decode_program
from .thread import DONE

#: Interleaved fusion caps the alignment width: the compile cost and
#: closure size grow with the thread count, while the probability of
#: the same alignment recurring falls off sharply past a handful of
#: threads.
_MT_MAX_SLOTS = 8
# Interleaved spans are compiled against a cycle horizon: long spans
# amortize dispatch overhead but fail their run-time guards more often
# (branch assumptions, memory hazards), so each alignment starts at
# _MT_HORIZON and halves on repeated failures down to _MT_MIN_HORIZON.
_MT_HORIZON = 64
_MT_MIN_HORIZON = 4
_MT_FAIL_LIMIT = 4
# Interleaved blocks are built by the cheap table-driven backend
# (~0.2ms), so they warm up fast and earn upgrades by dispatch count:
# a successful alignment is re-scheduled once its branch profile has
# matured (longer spans), retried once after a failed compile, and
# promoted to a generated closure when hot enough to amortize real
# codegen (see MTBlockPlan.promote).
_MT_WARMUP = 4
_MT_RETRY_BACKOFF = 64       # sightings before retrying a failed compile
# Schedule-building spend is bounded by what fusion has earned back: a
# node may build at most 8 + 4*successes interleaved schedules, so a
# workload whose alignments never recur stops paying compile cost
# almost immediately while a fusion-friendly one is unconstrained.
_MT_BUILD_BASE = 64
_MT_BUILD_PER_HIT = 4
_MT_EXTEND_AFTER = 24        # successes before one bias-matured rebuild
_MT_PROMOTE = 64             # successes before codegen promotion


class EventNode(Node):
    """Event-driven kernel; bit-identical to the scan kernel."""

    engine = "event"

    def __init__(self, config, observer=None, fast_forward=True):
        super().__init__(config, observer, fast_forward)
        self._build_unit_table()
        self._decoded = None
        # Completion heap: (ready, unit_index, seq, thread, plan, payload).
        self._pipe = []
        self._pipe_seq = 0
        # Timed thread wakes (operation-cache fills): (cycle, tid, thread).
        self._wake_heap = []
        self._wb_count = 0           # writeback entries across all units
        self._wb_pending = set()     # unit indexes with queued writebacks
        # With an unrestricted network every entry drains the cycle it
        # is visited and its dest list is never trimmed, so entries can
        # share the operation's own dest sequence instead of copying.
        self._wb_share = self.network.unrestricted
        # Stronger still: with no fault plan attached, a result that
        # completes in phase 1/2 of cycle C is *always* granted in
        # phase 3 of the same cycle (nothing reads presence bits in
        # between), so completions can commit registers directly and
        # skip the writeback buffers entirely.  (Two same-cycle writes
        # to one register would land in unit-table order under the scan
        # kernel and in phase order here, but that WAW race is a
        # scheduling bug the compiler's presence-bit discipline never
        # emits.)
        self._direct_wb = (self.network.unrestricted
                           and self.injector is None)
        self._use_opcache = config.op_cache is not None
        # Superblock fusion (see repro.sim.predecode): compiled
        # straight-line runs may only be dispatched under conditions
        # where their static schedule is provably exact — fully
        # connected network, no fault plan (both implied by direct
        # writeback), and no observer expecting per-issue callbacks.
        self._fusion = (getattr(config, "fusion", True)
                        and self._direct_wb and observer is None)
        # Interleaved superblocks, keyed by runnable-set alignment (see
        # _try_fuse_mt).  Not snapshot state: compilation is
        # deterministic, so a restored node just re-warms its table.
        self._mt_table = {}
        self._mt_heat = {}
        self._mt_retried = set()
        self._mt_builds = 0
        self._mt_hits = 0
        # Per-plan conditional-branch direction profile: [taken,
        # untaken] resolution counts.  compile_mt_run follows a branch
        # only while the observed direction — and the cumulative
        # probability across every branch followed so far — stays
        # decisive.
        self._br_bias = {}
        # Sanitizer hooks.  _quarantined holds (program, entry_ip)
        # pairs barred from fused dispatch (see quarantine_block); the
        # sanitize driver re-applies it after a rollback restore.
        # _dispatch_log, when set to a list, records the (program,
        # entry_ip) of every span dispatched — the shadow tier's
        # suspect list for divergence triage.  _last_fused remembers
        # the most recent dispatch for watchdog/deadlock reports.
        self._quarantined = set()
        self._dispatch_log = None
        self._last_fused = None
        self._adv_any = False        # some thread may advance this cycle
        # Arbiter scan order, rebuilt only when membership changes.
        self._order = []
        self._order_tids = None
        self._order_dirty = True
        self._reset_issue_counters()

    def _build_unit_table(self):
        self._units_list = []
        self._unit_index = {}
        for index, uid in enumerate(self.unit_order):
            unit = self.units[uid]
            unit.index = index
            self._unit_index[uid] = index
            self._units_list.append(unit)

    def _reset_issue_counters(self):
        self._issued_counts = [0] * len(self._units_list)
        self._issued_tids = defaultdict(int)
        self._arb_losses = 0
        self._wb_grants_batch = 0

    # -- program load ----------------------------------------------------

    def _prepare(self, program):
        self._decoded = decode_program(program, self._unit_index,
                                       self.config)

    def spawn(self, thread_program, bindings=(), priority=None):
        thread = super().spawn(thread_program, bindings, priority)
        if thread is not None:
            if self._decoded is not None:
                thread.decoded = self._decoded[thread_program.name]
            self._adv_any = True         # fresh thread fetches its word
            self._order_dirty = True
        return thread

    # -- phases ----------------------------------------------------------

    def _complete_due(self, cycle):
        """Phase 1: drain due completions from the global heap."""
        pipe = self._pipe
        memory = self.memory
        units = self._units_list
        wb_pending = self._wb_pending
        share = self._wb_share
        direct = self._direct_wb
        count = 0
        wrote = 0
        while pipe and pipe[0][0] <= cycle:
            __, index, __, thread, plan, payload = heappop(pipe)
            count += 1
            if plan.is_memory:
                memory.submit(payload, cycle)
            elif plan.is_bru:
                if plan.untaken_payload is not None:
                    # Conditional branch: feed the direction profile the
                    # interleaved-superblock compiler schedules from.
                    counts = self._br_bias.get(plan)
                    if counts is None:
                        counts = self._br_bias[plan] = [0, 0]
                    if payload is plan.taken_payload:
                        counts[0] += 1
                    else:
                        counts[1] += 1
                self._resolve_plan_control(thread, payload)
            elif direct:
                triples = plan.dest_triples
                if triples:
                    frames = thread.frames
                    for cluster, reg, bit in triples:
                        frame = frames.get(cluster)
                        if frame is None:
                            frame = thread.frame(cluster)
                        frame._values[reg] = payload
                        frame._invalid &= ~bit
                        frame._used |= bit
                    wrote += len(triples)
                    thread.parked = False
            else:
                op = plan.op
                units[index].writebacks.append(WritebackEntry(
                    thread, op, payload,
                    op.dests if share else list(op.dests)))
                self._wb_count += 1
                wb_pending.add(index)
        if wrote:
            self._wb_grants_batch += wrote
        return count

    def _resolve_plan_control(self, thread, payload):
        kind = payload[0]
        if kind == "jump":
            thread.next_ip = payload[1]
        elif kind == "fork":
            self.spawn(self._program.thread(payload[1]), payload[2])
        else:                            # halt
            thread.halted = True
            if self.observer is not None:
                self.observer("halt", cycle=self.cycle, thread=thread)
        thread.control_inflight = False
        if not thread.pending_plans:
            thread.advance_ready = True
            self._adv_any = True

    def _complete_memory(self):
        """Phase 2: tick the memory system; loads join writeback."""
        completed = self.memory.tick(self.cycle)
        direct = self._direct_wb
        wrote = 0
        for request in completed:
            if request.spec.is_load:
                if direct:
                    thread = request.thread
                    frames = thread.frames
                    value = request.value
                    dests = request.op.dests
                    for dest in dests:
                        frame = frames.get(dest.cluster)
                        if frame is None:
                            frame = thread.frame(dest.cluster)
                        frame._values[dest.index] = value
                        bit = 1 << dest.index
                        frame._invalid &= ~bit
                        frame._used |= bit
                    if dests:
                        wrote += len(dests)
                        thread.parked = False
                else:
                    unit = self.units[request.unit_slot.uid]
                    op = request.op
                    unit.writebacks.append(WritebackEntry(
                        request.thread, op, request.value,
                        op.dests if self._wb_share else list(op.dests)))
                    self._wb_count += 1
                    self._wb_pending.add(unit.index)
        if wrote:
            self._wb_grants_batch += wrote
        return len(completed)

    def _write_back(self):
        """Phase 3: like the scan kernel's, plus writeback counting and
        unparking — a register write is the only thing that can make a
        presence-parked thread issuable (registers are thread-private),
        so the granting path is the wake hook.  Only units with queued
        entries are visited, and a fully connected network (every grant
        trivially succeeds) bypasses per-write arbitration, writing the
        register directly and batching the grant count."""
        wrote = 0
        cycle = self.cycle
        injector = self.injector
        network = self.network
        unrestricted = network.unrestricted
        if not unrestricted:
            network.new_cycle()
        units = self._units_list
        pending = self._wb_pending
        for index in sorted(pending):
            unit = units[index]
            entries = unit.writebacks
            if injector is not None \
                    and injector.writeback_blocked(unit.slot.uid, cycle):
                self.stats.fault_writeback_stalls += len(entries)
                continue
            if unrestricted:
                for entry in entries:
                    thread = entry.thread
                    frames = thread.frames
                    value = entry.value
                    for dest in entry.dests:
                        frame = frames.get(dest.cluster)
                        if frame is None:
                            frame = thread.frame(dest.cluster)
                        reg = dest.index
                        frame._values[reg] = value
                        bit = 1 << reg
                        frame._invalid &= ~bit
                        frame._used |= bit
                    wrote += len(entry.dests)
                    thread.parked = False
                self._wb_count -= len(entries)
                unit.writebacks = []
                pending.discard(index)
                continue
            cluster = unit.slot.cluster
            remaining = []
            for entry in entries:
                kept = []
                thread = entry.thread
                for dest in entry.dests:
                    if network.try_grant(cluster, dest.cluster):
                        thread.frame(dest.cluster).write(dest.index,
                                                         entry.value)
                        wrote += 1
                        thread.parked = False
                    else:
                        kept.append(dest)
                entry.dests = kept
                if kept:
                    remaining.append(entry)
                else:
                    self._wb_count -= 1
            unit.writebacks = remaining
            if not remaining:
                pending.discard(index)
        if unrestricted and wrote:
            self.stats.writeback_grants += wrote
        return wrote

    def _advance_threads(self):
        """Phase 4: advance only threads flagged by issue/control
        resolution; drain the spawn queue exactly like the scan kernel."""
        if self._adv_any:
            self._adv_any = False
            cycle = self.cycle
            stats = self.stats
            still_active = []
            for thread in self.active:
                if not thread.advance_ready:
                    still_active.append(thread)
                    continue
                thread.advance_ready = False
                if self._advance_plan(thread):
                    still_active.append(thread)
                else:
                    thread.finish_cycle = cycle
                    stats.thread_finish_cycle[thread.tid] = cycle
                    stats.threads_finished += 1
                    self.finished.append(thread)
                    self._order_dirty = True
            self.active = still_active
        limit = self.config.max_active_threads
        while self._spawn_queue and (limit is None
                                     or len(self.active) < limit):
            program, bindings, priority = self._spawn_queue.popleft()
            self.spawn(program, bindings, priority)

    def _advance_plan(self, thread):
        """Plan-based ThreadContext.advance()."""
        if thread.halted:
            thread.state = DONE
            return False
        target = thread.next_ip if thread.next_ip is not None \
            else thread.ip + 1
        thread.next_ip = None
        words = thread.decoded.words
        if target >= len(words):
            raise SimulationError(
                "thread %r fell off the end of its code (missing halt)"
                % thread.name)
        thread.ip = target
        thread.pending_plans = list(words[target].plans)
        return True

    def _issue(self):
        """Phase 5: the scan kernel's arbitration and issue rules over
        predecoded plans, skipping parked threads and parking any
        thread that provably cannot act until a wake condition fires."""
        if self._order_dirty:
            self._rebuild_order()
        active = self.active
        if not active:
            return 0
        order = self._order
        tids = self._order_tids
        if tids is not None:             # round-robin rotates every cycle
            order = self.arbiter.rotate_sorted(order, tids)
        issued = 0
        claimed = set()              # claimed unit table indexes
        self._fault_stalled = False
        injector = self.injector
        use_cache = self._use_opcache
        plain = injector is None and not use_cache
        cycle = self.cycle
        units = self._units_list
        counts = self._issued_counts
        for thread in order:
            if thread.parked:
                continue
            pending = thread.pending_plans
            if not pending:
                continue                 # control operation in flight
            frames = thread.frames
            # A thread may park only when nothing it can do this cycle
            # has side effects: no issue, no arbitration loss, and (with
            # a fault plan) no per-cycle injector consultation at all.
            can_park = injector is None
            wake = None
            # Iterating a one-element list that at most loses that one
            # element is safe without a copy (the common case).
            plans = pending if len(pending) == 1 else list(pending)
            for plan in plans:
                single = plan.single_wait
                if single is not None:
                    frame = frames.get(single[0])
                    if frame is not None and frame._invalid & single[1]:
                        continue
                else:
                    ready = True
                    for cluster, mask in plan.wait_groups:
                        frame = frames.get(cluster)
                        if frame is not None and frame._invalid & mask:
                            ready = False
                            break
                    if not ready:
                        continue
                if plain:
                    # No fault plan and no operation cache: the home
                    # unit is the only candidate, so the claim check
                    # needs no unit lookup at all.
                    index = plan.unit_index
                    if index in claimed:
                        self._arb_losses += 1
                        can_park = False
                        continue
                    unit = units[index]
                else:
                    unit = units[plan.unit_index]
                    if injector is not None \
                            and injector.unit_offline(plan.uid, cycle):
                        unit = self._reroute_target(unit, claimed)
                        if unit is None:
                            self.stats.fault_issue_stalls += 1
                            self._fault_stalled = True
                            continue
                    if use_cache:
                        cache = unit.opcache
                        if cache is not None \
                                and not cache.ready(thread, cycle):
                            # Operation-cache fill in progress: a timed
                            # wake.
                            if can_park:
                                fill = cache.fill_ready_cycle(thread)
                                if fill is None:
                                    can_park = False
                                elif wake is None or fill < wake:
                                    wake = fill
                            continue
                    index = unit.index
                    if index in claimed:
                        self._arb_losses += 1
                        can_park = False
                        continue
                    if index != plan.unit_index:
                        self.stats.fault_reroutes += 1
                self._issue_plan(unit, thread, plan, cycle)
                counts[index] += 1
                claimed.add(index)
                issued += 1
                can_park = False
            if can_park and thread.pending_plans:
                thread.parked = True
                if wake is not None:
                    heappush(self._wake_heap, (wake, thread.tid, thread))
        return issued

    def _reroute_target(self, unit, claimed):
        """The scan kernel's reroute, keyed by unit table index (the
        event kernel's per-cycle claim set holds indexes, not uids)."""
        if not self.injector.reroute:
            return None
        cycle = self.cycle
        kind = unit.slot.kind
        for candidate in self._units_list:
            if candidate.slot.kind is not kind \
                    or candidate.index in claimed:
                continue
            if self.injector.unit_offline(candidate.slot.uid, cycle):
                continue
            return candidate
        return None

    def _gather_values(self, plan, frames):
        template = plan.values_template
        if template is None:
            return []
        values = template[:]
        for pos, cluster, index in plan.src_fields:
            frame = frames.get(cluster)
            if frame is None:
                values[pos] = 0
            else:
                stored = frame._values
                values[pos] = stored[index] \
                    if index < len(stored) else 0
        return values

    def _issue_plan(self, unit, thread, plan, cycle):
        frames = thread.frames
        ex = plan.exec_fn
        if ex is not None:            # compute op, specialized gather
            try:
                payload = ex(frames)
            except ArithmeticError as exc:
                values = self._gather_values(plan, frames)
                raise SimulationError(
                    "thread %s: %s%r raised %s at cycle %d"
                    % (thread.name, plan.name, tuple(values), exc, cycle))
        elif not plan.is_memory and not plan.is_bru:
            values = self._gather_values(plan, frames)
            try:
                payload = plan.semantics(*values)
            except ArithmeticError as exc:
                raise SimulationError(
                    "thread %s: %s%r raised %s at cycle %d"
                    % (thread.name, plan.name, tuple(values), exc, cycle))
        elif plan.is_memory:
            values = self._gather_values(plan, frames)
            if plan.is_load:
                addr = int(values[0]) + int(values[1])
                payload = MemRequest(thread, plan.op, unit.slot, addr,
                                     spec=plan.spec)
            else:
                addr = int(values[1]) + int(values[2])
                payload = MemRequest(thread, plan.op, unit.slot, addr,
                                     store_value=values[0], spec=plan.spec)
        else:
            control = plan.control
            if control == "brt" or control == "brf":
                values = self._gather_values(plan, frames)
            if control == "fork":
                bindings = []
                for child_reg, is_reg, a, b in plan.bindings_plan:
                    if is_reg:
                        frame = frames.get(a)
                        if frame is None:
                            bindings.append((child_reg, 0))
                        else:
                            stored = frame._values
                            bindings.append((child_reg, stored[b]
                                             if b < len(stored) else 0))
                    else:
                        bindings.append((child_reg, a))
                payload = ("fork", plan.fork_name, bindings)
            elif control == "brt":
                payload = plan.taken_payload if values[0] \
                    else plan.untaken_payload
            elif control == "brf":
                payload = plan.untaken_payload if values[0] \
                    else plan.taken_payload
            else:                        # br / halt
                payload = plan.taken_payload
            thread.control_inflight = True
        for cluster, index, bit in plan.dest_triples:
            frame = frames.get(cluster)
            if frame is None:
                frame = thread.frame(cluster)
            stored = frame._values
            if index >= len(stored):
                stored.extend([0] * (index + 1 - len(stored)))
            frame._invalid |= bit
        pending = thread.pending_plans
        pending.remove(plan)
        if not pending and not thread.control_inflight:
            thread.advance_ready = True
            self._adv_any = True
        self._pipe_seq += 1
        heappush(self._pipe, (cycle + unit.latency, unit.index,
                              self._pipe_seq, thread, plan, payload))
        tids = self._issued_tids
        tids[thread.tid] += 1
        observer = self.observer
        if observer is not None:
            observer("issue", cycle=cycle, thread=thread,
                     unit=unit.slot.uid, op=plan.op)

    def _rebuild_order(self):
        if self.arbiter.name == "round-robin":
            order = sorted(self.active, key=_by_tid)
            self._order_tids = [t.tid for t in order]
        else:
            order = sorted(self.active, key=_by_priority)
            self._order_tids = None
        self._order = order
        self._order_dirty = False

    # -- main loop --------------------------------------------------------

    def _loop(self, max_cycles, watchdog_cycles=None, pause_at=None):
        try:
            return self._event_loop(max_cycles, watchdog_cycles, pause_at)
        finally:
            # Fold the batched issue counters into Stats no matter how
            # the loop exits (completion, pause, watchdog, deadlock), so
            # Stats is always coherent for reporting and snapshots.
            self._flush_issue_counters()

    def _event_loop(self, max_cycles, watchdog_cycles, pause_at):
        memory = self.memory
        # The memory system's heaps are mutated strictly in place, so
        # these bindings stay valid for the life of the loop and make
        # the per-cycle "anything due?" gates plain list peeks.
        mem_if = memory._in_flight
        mem_def = memory._deferred_bits
        pipe = self._pipe
        wake_heap = self._wake_heap
        stats = self.stats
        fusion = self._fusion
        while True:
            cycle = self.cycle
            while wake_heap and wake_heap[0][0] <= cycle:
                heappop(wake_heap)[2].parked = False
            completed = self._complete_due(cycle) \
                if pipe and pipe[0][0] <= cycle else 0
            if (mem_if and mem_if[0][0] <= cycle) \
                    or (mem_def and mem_def[0][0] <= cycle):
                completed += self._complete_memory()
            wrote = self._write_back() if self._wb_count else 0
            if self._adv_any or self._spawn_queue:
                self._advance_threads()
            issued = 0
            if fusion and not pipe and not wake_heap \
                    and not self._wb_count and not self._spawn_queue \
                    and self.active:
                if len(self.active) == 1:
                    end = self._try_fuse(cycle, max_cycles,
                                         watchdog_cycles, pause_at)
                else:
                    end = self._try_fuse_mt(cycle, max_cycles,
                                            watchdog_cycles, pause_at)
                if end is not None:
                    cycle = end
                    issued = 1
            if not issued:
                issued = self._issue()
            cycle += 1
            self.cycle = cycle
            stats.cycles = cycle
            san = self.sanitizer
            if san is not None and cycle >= san.next_cycle:
                san.check(self, cycle)
            if issued or completed or wrote:
                self._last_progress = cycle
            if not self.active and not self._spawn_queue \
                    and not pipe and self._wb_count == 0 \
                    and memory.idle():
                break
            if cycle >= max_cycles:
                raise self._watchdog_error(
                    "exceeded %d cycles (program %s on %s)"
                    % (max_cycles, self._program.main, self.config.name))
            quiet = issued == 0 and completed == 0 and wrote == 0
            in_flight = False
            if quiet:
                in_flight = (self._fault_stalled or bool(pipe)
                             or self._wb_count > 0
                             or bool(mem_if) or bool(mem_def)
                             or self._any_fills())
                if not in_flight:
                    self._frozen += 1
                    if self._frozen >= 2:
                        self._raise_deadlock()
                else:
                    self._frozen = 0
            else:
                self._frozen = 0
            if watchdog_cycles is not None \
                    and cycle - self._last_progress >= watchdog_cycles:
                raise self._watchdog_error(
                    "livelock: no operation issued, completed, or wrote "
                    "back for %d cycles (program %s on %s)"
                    % (watchdog_cycles, self._program.main,
                       self.config.name))
            if pause_at is not None and cycle >= pause_at:
                return None
            if self.fast_forward and quiet and in_flight \
                    and self._wb_count == 0 \
                    and not self._fault_stalled \
                    and (self.injector is None
                         or all(t.parked for t in self.active)):
                # Every unparked thread was scanned and could not act;
                # parked threads wait on their own timed or writeback
                # events.  Jump to the next event, with the scan
                # kernel's clamps so watchdog/pause/max-cycles fire on
                # exactly the same cycle.
                wake = pipe[0][0] if pipe else None
                event = memory.next_event_cycle()
                if event is not None and (wake is None or event < wake):
                    wake = event
                if wake_heap and (wake is None or wake_heap[0][0] < wake):
                    wake = wake_heap[0][0]
                if self._use_opcache:
                    # In-flight operation-cache fills count as
                    # in_flight above but live in no heap: a thread can
                    # be pinned awake on a fill (its park was vetoed by
                    # an arbitration loss or a shared fill it did not
                    # start), leaving the fill's completion cycle as
                    # the only upcoming event.  Without this candidate
                    # the jump would overshoot it — or never happen.
                    fill = self._next_fill_ready()
                    if fill is not None and (wake is None or fill < wake):
                        wake = fill
                if wake is not None:
                    target = min(wake, max_cycles - 1)
                    if watchdog_cycles is not None:
                        target = min(target, self._last_progress
                                     + watchdog_cycles - 1)
                    if pause_at is not None:
                        target = min(target, pause_at - 1)
                    if target > cycle:
                        delta = target - cycle
                        self.arbiter.advance(delta, self.active)
                        self.cycle = target
                        stats.cycles = target
                        self.ffwd_jumps += 1
                        self.ffwd_cycles += delta
        return SimResult(self.stats, self.memory, self._program,
                         self.config, self.finished + self.active)

    def _try_fuse(self, cycle, max_cycles, watchdog_cycles, pause_at):
        """Dispatch a compiled superblock if every guard holds.

        Called with the pipeline, wake queue, writeback buffers, and
        spawn queue empty and exactly one active thread, so the machine
        state a block's static schedule assumes is fully determined by
        the remaining guards: the thread is at a block entry with its
        word un-issued, no timed memory event is due inside the span
        (busy addresses are guarded per access inside the closure),
        every register presence bit is valid, and (with an operation
        cache) every line the block touches is resident.  Returns the
        new current cycle, or None to fall back to the interpreted
        path.
        """
        thread = self.active[0]
        if thread.parked or thread.control_inflight:
            return None
        decoded = thread.decoded
        if decoded is None or decoded.blocks is None:
            return None
        ip = thread.ip
        reasons = self.stats.defuse_reasons
        if self._quarantined and (decoded.name, ip) in self._quarantined:
            reasons["quarantined"] += 1
            return None
        block = decoded.blocks.get(ip)
        if block is None:
            return None
        if len(thread.pending_plans) != block.n_plans:
            reasons["st_partial_word"] += 1
            return None
        # Memory-tolerant span: an in-service or deferred access whose
        # completion falls past the block's last cycle cannot interact
        # with it (per-address collisions are guarded in the closure),
        # so clamp against the next timed event instead of demanding
        # full quiescence.  Parked sync waiters have no timed event at
        # all — they only move when a presence bit changes, which the
        # closure's per-store guard rejects — so they impose no clamp.
        event = self.memory.next_event_cycle()
        if event is not None and event <= cycle + block.last_rel:
            reasons["st_mem_event"] += 1
            return None
        span = block.last_rel + 1
        if cycle + span >= max_cycles \
                or (watchdog_cycles is not None
                    and watchdog_cycles <= span) \
                or (pause_at is not None
                    and pause_at <= cycle + block.last_rel):
            reasons["st_clamp"] += 1
            return None
        for frame in thread.frames.values():
            if frame._invalid:
                reasons["st_presence"] += 1
                return None
        if self._use_opcache:
            units = self._units_list
            for index, key in block.cache_checks:
                cache = units[index].opcache
                if cache is not None and key not in cache._lines:
                    reasons["st_opcache_cold"] += 1
                    return None
        end = block.fn(self, thread, cycle)
        if end is None:
            reasons["st_guard_bail"] += 1
        else:
            self.stats.fused_dispatches += 1
            self._last_fused = ("st", ((decoded.name, ip),), cycle)
            log = self._dispatch_log
            if log is not None:
                log.append((decoded.name, ip))
        return end

    def _try_fuse_mt(self, cycle, max_cycles, watchdog_cycles, pause_at):
        """Dispatch a compiled interleaved superblock over the current
        runnable set (see :func:`repro.sim.predecode.compile_mt_run`).

        Called under the same emptiness preconditions as
        :meth:`_try_fuse` but with N > 1 active threads.  The runnable
        set is keyed by its *alignment* — per arbiter scan position,
        the (program, ip) of a runnable thread at a fully un-issued
        word, or None for a parked one.  For round-robin the key is
        rotated to the scan head first, so one compiled schedule serves
        every entry state with the same rotated alignment.  The span is
        clamped exactly like the single-thread path; parked threads
        cannot wake inside it (every in-span landing belongs to a
        scheduled thread, and presence-changing stores to addresses
        with parked waiters are guarded in the closure).
        """
        if self._use_opcache:
            return None
        if self._order_dirty:
            self._rebuild_order()
        order = self._order
        if len(order) > _MT_MAX_SLOTS:
            self.stats.defuse_reasons["mt_width"] += 1
            return None
        tids = self._order_tids
        if tids is not None:
            # Peek at the rotation without consuming it: the closure
            # commits the arbiter's resume point itself, and a guard
            # failure must leave the interpreted scan untouched.
            start = bisect_left(tids, self.arbiter._next)
            if start >= len(tids):
                start = 0
            if start:
                order = order[start:] + order[:start]
        # Only the hashable alignment key is built here, every call;
        # the decoded-object slot tuple the compiler needs is
        # reconstructed from ``order`` at the (rare) compile site —
        # alignments that never warm up, the common case on irregular
        # cells, then cost one tuple per thread instead of two.
        key_parts = []
        nsched = 0
        for thread in order:
            if thread.parked:
                key_parts.append(None)
                continue
            if thread.control_inflight:
                return None
            decoded = thread.decoded
            if decoded is None:
                return None
            ip = thread.ip
            words = decoded.words
            if ip >= len(words):
                return None
            word_plans = words[ip].plans
            pending = thread.pending_plans
            if len(pending) == len(word_plans):
                key_parts.append((decoded.name, ip))
            elif not pending:
                return None
            else:
                # Partially issued word: the un-issued remainder is an
                # ordered subsequence of the word's slots (issue
                # removes plans in place), so a single two-pointer walk
                # pins it as a position bitmask and the alignment stays
                # compilable mid-word.
                mask = 0
                take = 0
                npend = len(pending)
                for pos, plan in enumerate(word_plans):
                    if take < npend and plan is pending[take]:
                        mask |= 1 << pos
                        take += 1
                if take != npend:
                    self.stats.defuse_reasons["mt_partial"] += 1
                    return None
                key_parts.append((decoded.name, ip, mask))
            nsched += 1
        if not nsched:
            return None
        if self._quarantined:
            for part in key_parts:
                if part is not None \
                        and (part[0], part[1]) in self._quarantined:
                    self.stats.defuse_reasons["quarantined"] += 1
                    return None
        key = tuple(key_parts)
        entry = self._mt_table.get(key, False)
        if entry is False:
            heat = self._mt_heat.get(key, 0) + 1
            if heat < _MT_WARMUP:
                self._mt_heat[key] = heat
                self.stats.defuse_reasons["mt_warmup"] += 1
                return None
            if self._mt_builds >= _MT_BUILD_BASE \
                    + _MT_BUILD_PER_HIT * self._mt_hits:
                self.stats.defuse_reasons["mt_build_budget"] += 1
                return None
            self._mt_heat.pop(key, None)
            self._mt_builds += 1
            slots = tuple(
                None if part is None
                else (thread.decoded, part[1]) if len(part) == 2
                else (thread.decoded, part[1], part[2])
                for thread, part in zip(order, key_parts))
            block = compile_mt_run(slots, self.config,
                                   self.config.arbitration, _MT_HORIZON,
                                   self._br_bias)
            if block is None:
                # Often a cold branch profile: give the alignment one
                # more shot after its profile has had time to mature,
                # then go inert for good.
                if key in self._mt_retried:
                    self._mt_table[key] = None
                else:
                    self._mt_retried.add(key)
                    self._mt_heat[key] = -_MT_RETRY_BACKOFF
                self.stats.defuse_reasons["mt_compile_fail"] += 1
                return None
            entry = [block, _MT_HORIZON, 0, 0, slots]
            self._mt_table[key] = entry
        if entry is None:
            self.stats.defuse_reasons["mt_inert"] += 1
            return None
        block = entry[0]
        last_rel = block.last_rel
        if cycle + last_rel + 1 >= max_cycles \
                or (watchdog_cycles is not None
                    and watchdog_cycles <= last_rel + 1) \
                or (pause_at is not None
                    and pause_at <= cycle + last_rel):
            self.stats.defuse_reasons["mt_clamp"] += 1
            return None
        event = self.memory.next_event_cycle()
        if event is not None and event <= cycle + last_rel:
            self.stats.defuse_reasons["mt_mem_event"] += 1
            return None
        for thread in order:
            if not thread.parked:
                for frame in thread.frames.values():
                    if frame._invalid:
                        self.stats.defuse_reasons["mt_presence"] += 1
                        return None
        end = block.fn(self, order, cycle)
        if end is None:
            self.stats.defuse_reasons["mt_guard_bail"] += 1
            # A run-time guard bailed (branch assumption missed, or a
            # memory hazard mid-span).  Long schedules make both more
            # likely, so keep a failure score per alignment and halve
            # the span horizon when it keeps missing; alignments that
            # cannot fuse even at the minimum horizon go inert.
            entry[2] += 1
            if entry[2] >= _MT_FAIL_LIMIT:
                horizon = entry[1] // 2
                block = None
                if horizon >= _MT_MIN_HORIZON:
                    self._mt_builds += 1
                    block = compile_mt_run(entry[4], self.config,
                                           self.config.arbitration,
                                           horizon, self._br_bias)
                if block is None:
                    self._mt_table[key] = None
                else:
                    entry[0] = block
                    entry[1] = horizon
                    entry[2] = 0
            return None
        if entry[2]:
            entry[2] -= 1
        self._mt_hits += 1
        entry[3] += 1
        if entry[3] == _MT_EXTEND_AFTER \
                and block.last_rel + 1 < entry[1]:
            # The span ended well short of the horizon, usually because
            # the branch profile was still cold at compile time; one
            # rebuild against the matured profile can only lengthen it.
            # The threads have already advanced past the span, so the
            # rebuild must use the entry slots saved at compile time.
            self._mt_builds += 1
            rebuilt = compile_mt_run(entry[4], self.config,
                                     self.config.arbitration, entry[1],
                                     self._br_bias)
            if rebuilt is not None \
                    and rebuilt.last_rel > block.last_rel:
                entry[0] = rebuilt
        elif entry[3] == _MT_PROMOTE:
            block.promote()
        self.stats.fused_dispatches += 1
        parts = tuple((part[0], part[1]) for part in key
                      if part is not None)
        self._last_fused = ("mt", parts, cycle)
        log = self._dispatch_log
        if log is not None:
            log.extend(parts)
        return end

    # -- sanitizer hooks --------------------------------------------------

    def quarantine_block(self, name, entry_ip):
        """Bar the superblock entered at (program ``name``, word
        ``entry_ip``) from fused dispatch, permanently: the single-
        thread entry is tombstoned in its BlockTable and every compiled
        interleaved alignment scheduling that entry goes inert.  The
        simulation continues un-fused over that span instead of dying —
        the sanitizer's graceful de-optimization.  Idempotent; returns
        True when the entry was newly quarantined.
        """
        key = (name, entry_ip)
        if key in self._quarantined:
            return False
        self._quarantined.add(key)
        if self._decoded is not None:
            decoded = self._decoded.get(name)
            if decoded is not None and decoded.blocks is not None:
                decoded.blocks.quarantine(entry_ip)
        for mkey in list(self._mt_table):
            for part in mkey:
                if part is not None and part[0] == name \
                        and part[1] == entry_ip:
                    self._mt_table[mkey] = None
                    break
        self.stats.quarantined_blocks = len(self._quarantined)
        return True

    def _fusion_context(self):
        if not self._fusion:
            return None
        table = self._mt_table
        ladder = {
            "alignments": len(table),
            "inert": sum(1 for entry in table.values() if entry is None),
            "warming": len(self._mt_heat),
            "builds": self._mt_builds,
            "hits": self._mt_hits,
            "promoted": sum(1 for entry in table.values()
                            if entry is not None
                            and entry[3] >= _MT_PROMOTE),
        }
        return {
            "last_dispatch": self._last_fused,
            "defuse_reasons": dict(self.stats.defuse_reasons),
            "quarantined": sorted(self._quarantined),
            "mt_ladder": ladder,
        }

    def _next_fill_ready(self):
        """The earliest completion cycle among in-flight operation-
        cache fills, or None when no fill is pending."""
        wake = None
        for unit in self._units_list:
            cache = unit.opcache
            if cache is not None and cache._fills:
                ready = cache.next_fill_ready()
                if wake is None or ready < wake:
                    wake = ready
        return wake

    def _any_fills(self):
        if self.config.op_cache is None:
            return False
        for unit in self._units_list:
            cache = unit.opcache
            if cache is not None and cache._fills:
                return True
        return False

    def _flush_issue_counters(self):
        stats = self.stats
        total = 0
        for unit, count in zip(self._units_list, self._issued_counts):
            if count:
                stats.issued_by_kind[unit.slot.kind] += count
                stats.issued_by_unit[unit.slot.uid] += count
                total += count
        stats.total_operations += total
        for tid, count in self._issued_tids.items():
            stats.issued_by_thread[tid] += count
        stats.arbitration_losses += self._arb_losses
        stats.writeback_grants += self._wb_grants_batch
        self._reset_issue_counters()

    # -- checkpoint / restore ---------------------------------------------

    _SNAPSHOT_FIELDS = Node._SNAPSHOT_FIELDS + (
        "_pipe", "_pipe_seq", "_wake_heap", "_wb_count", "_adv_any",
        "_decoded")

    def _snapshot_memo(self):
        """Pin the predecoded plans too: they are immutable and shared
        between the node, its snapshots, and restored copies — and
        pinning keeps thread.pending_plans entries identical to the
        plans inside ``_decoded``."""
        memo = super()._snapshot_memo()
        if self._decoded is not None:
            for decoded in self._decoded.values():
                memo[id(decoded)] = decoded
                for word in decoded.words:
                    memo[id(word)] = word
                    for plan in word.plans:
                        memo[id(plan)] = plan
        return memo

    def _after_restore(self):
        # restore() replaced self.units wholesale; re-derive the unit
        # table (and per-unit index attributes) and force an arbiter
        # order rebuild on the next issue.
        self._build_unit_table()
        self._wb_pending = {unit.index for unit in self._units_list
                            if unit.writebacks}
        self._wb_share = self.network.unrestricted
        self._order = []
        self._order_tids = None
        self._order_dirty = True
        self._reset_issue_counters()


def _by_tid(thread):
    return thread.tid


def _by_priority(thread):
    return (thread.priority, thread.tid)
