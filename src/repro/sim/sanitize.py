"""Online state sanitizer: runtime audits, shadow differential
execution, and graceful de-optimization.

The reproduction's whole premise is that compile-time schedules and
runtime scheduling agree cycle-for-cycle, yet that agreement is
normally checked only offline, by property tests over small programs.
This module makes it checkable *during* any run, in three tiers:

1. **Invariant audits** (:class:`InvariantAuditor`) — cheap strided
   checks of the architectural protocol itself: every register
   presence bit cleared for writeback has exactly one in-flight
   producer (and vice versa), the completion/wake/memory heaps are
   monotone and hold no overdue events, no parked thread or memory
   reference has lost its wake condition, the opcache fill board is
   consistent with per-unit fills, and no ready thread starves past a
   bound under round-robin arbitration.

2. **Shadow differential execution** (:func:`run_sanitized` at level
   ``shadow``/``deep``) — the fused event kernel runs in strided
   lockstep against an unfused reference kernel; both pause at the
   same cycle boundaries and their canonical state digests are
   compared.  The first mismatched component pins the divergence to a
   stride window and to the superblocks dispatched inside it.

3. **Triage and graceful de-optimization** — on any trip the suspect
   superblock entries are quarantined (:meth:`EventNode.
   quarantine_block` tombstones them in the BlockTable), the run rolls
   back to the last verified snapshot and continues *un-fused over
   those spans* instead of dying.  A structured :class:`SanitizerReport`
   and a replayable reproducer bundle (``Node.snapshot`` + config +
   seed; see :func:`write_bundle`) are extracted on the first trip;
   ``repro replay <bundle>`` re-executes it deterministically.

The sanitizer is opt-in and engine-neutral: an unsanitized run pays
one ``is None`` test per cycle, and a sanitized run that never trips
returns results bit-identical to a plain one.
"""

import json
import os
import pickle
from dataclasses import dataclass, field
from hashlib import sha256

from ..errors import (DivergenceError, InvariantViolation, SanitizerError,
                      SimulationError)
from .node import Node, SimResult, make_node
from .stats import ENGINE_STAT_FIELDS

#: Recognized sanitizer levels, weakest to strongest.
LEVELS = ("off", "audit", "shadow", "deep")

#: Default directory for reproducer bundles (overridable per policy or
#: via the REPRO_SANITIZE_DIR environment variable).
DEFAULT_REPORT_DIR = "sanitizer-reports"

_BUNDLE_FORMAT = 1


@dataclass
class SanitizerPolicy:
    """Knobs for one sanitized run.

    ``audit_stride`` is the cycle stride between invariant audits (1 =
    every cycle); ``shadow_stride`` the lockstep window between shadow
    digest comparisons.  ``max_requarantines`` bounds the
    quarantine-and-retry rounds before the run de-optimizes outright
    (fusion disabled wholesale).  ``starvation_cycles`` is the
    round-robin fairness bound: a thread observed continuously ready
    for that many cycles while others issue trips the audit.
    """

    level: str = "audit"
    audit_stride: int = 64
    shadow_stride: int = 4096
    max_requarantines: int = 4
    starvation_cycles: int = 100_000
    report_dir: str = None

    def __post_init__(self):
        if self.level not in LEVELS:
            raise ValueError("unknown sanitizer level %r (expected one "
                             "of %s)" % (self.level, ", ".join(LEVELS)))
        if self.report_dir is None:
            self.report_dir = os.environ.get("REPRO_SANITIZE_DIR",
                                             DEFAULT_REPORT_DIR)

    @classmethod
    def from_level(cls, level):
        if level == "deep":
            # Per-cycle audits and tight shadow windows: the debugging
            # configuration, not the always-on one.
            return cls(level=level, audit_stride=1, shadow_stride=256)
        return cls(level=level)

    @property
    def wants_audit(self):
        return self.level in ("audit", "shadow", "deep")

    @property
    def wants_shadow(self):
        return self.level in ("shadow", "deep")


def coerce_policy(policy):
    """None for "off", a :class:`SanitizerPolicy` otherwise."""
    if policy is None or policy == "off":
        return None
    if isinstance(policy, SanitizerPolicy):
        return policy
    if isinstance(policy, str):
        return SanitizerPolicy.from_level(policy)
    raise TypeError("sanitize policy must be a level name or "
                    "SanitizerPolicy, not %r" % (policy,))


@dataclass
class SanitizerSummary:
    """What the sanitizer did during one run (``SimResult.sanitizer``)."""

    level: str
    audits: int = 0
    shadow_checks: int = 0
    trips: int = 0
    requarantines: int = 0
    quarantined: list = field(default_factory=list)
    reports: list = field(default_factory=list)   # bundle paths
    de_optimized: bool = False

    def as_dict(self):
        return {"level": self.level, "audits": self.audits,
                "shadow_checks": self.shadow_checks, "trips": self.trips,
                "requarantines": self.requarantines,
                "quarantined": [list(entry) for entry in self.quarantined],
                "reports": list(self.reports),
                "de_optimized": self.de_optimized}


@dataclass
class SanitizerReport:
    """Structured record of one sanitizer trip.

    ``kind`` is "invariant" or "divergence"; ``window`` the cycle span
    the trip was localized to; ``suspects`` the (program, entry_ip)
    superblock entries dispatched inside it; ``components`` the
    canonical-state components whose digests differed; ``delta`` a
    bounded, human-readable state diff; ``violations`` the failed
    invariant checks (invariant kind only).
    """

    kind: str
    cycle: int
    window: tuple
    engine: str
    program: str
    config: str
    seed: object
    threads: list
    suspects: list
    quarantined: list
    defuse_reasons: dict
    components: list
    delta: list
    violations: list

    def as_dict(self):
        return {"kind": self.kind, "cycle": self.cycle,
                "window": list(self.window), "engine": self.engine,
                "program": self.program, "config": self.config,
                "seed": self.seed, "threads": list(self.threads),
                "suspects": [list(s) for s in self.suspects],
                "quarantined": [list(q) for q in self.quarantined],
                "defuse_reasons": dict(self.defuse_reasons),
                "components": list(self.components),
                "delta": list(self.delta),
                "violations": list(self.violations)}

    def render(self):
        lines = ["sanitizer trip: %s at cycle %d (window %d..%d)"
                 % (self.kind, self.cycle, self.window[0], self.window[1]),
                 "program %s on %s (engine=%s seed=%s)"
                 % (self.program, self.config, self.engine, self.seed)]
        if self.threads:
            lines.append("threads: %s"
                         % ", ".join("%d (%s)" % (tid, name)
                                     for tid, name in self.threads))
        if self.suspects:
            lines.append("suspect spans: %s"
                         % ", ".join("%s@%d" % tuple(s)
                                     for s in self.suspects))
        if self.components:
            lines.append("mismatched components: "
                         + ", ".join(self.components))
        for line in self.delta:
            lines.append("  " + line)
        for line in self.violations:
            lines.append("violation: " + line)
        if self.defuse_reasons:
            lines.append("de-fusion counters: "
                         + ", ".join("%s=%d" % pair for pair
                                     in sorted(self.defuse_reasons.items())))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Tier 1: invariant audits
# ---------------------------------------------------------------------------


class InvariantAuditor:
    """Strided architectural-invariant checker, attached as
    ``node.sanitizer``.  The kernels call :meth:`check` at the end of
    any cycle >= ``next_cycle``; a failed audit raises
    :class:`InvariantViolation` out of the simulation loop.
    """

    def __init__(self, policy, summary=None):
        self.policy = policy
        self.summary = summary
        self.next_cycle = 0
        self._starve = {}        # tid -> (own issued, total issued, since)

    def rewind(self, cycle=0):
        """Forget audit state after a rollback restore (issue counters
        rolled back with the snapshot, so stale marks would lie)."""
        self.next_cycle = cycle
        self._starve.clear()

    def check(self, node, cycle):
        self.next_cycle = cycle + self.policy.audit_stride
        if self.summary is not None:
            self.summary.audits += 1
        violations = audit_node(node, cycle=cycle, auditor=self)
        if violations:
            shown = "; ".join(violations[:3])
            if len(violations) > 3:
                shown += " (+%d more)" % (len(violations) - 3)
            raise InvariantViolation(
                "state sanitizer: %d invariant violation(s) at cycle %d: "
                "%s" % (len(violations), cycle, shown),
                cycle=cycle, violations=violations)


def audit_node(node, cycle=None, auditor=None):
    """Run every tier-1 invariant audit against ``node``; return the
    list of violation descriptions (empty = clean).

    Must be called at a cycle boundary — after the kernel finished a
    full five-phase iteration and incremented the cycle counter — where
    the protocol guarantees every due event has drained.
    """
    if cycle is None:
        cycle = node.cycle
    violations = []
    _audit_presence(node, violations)
    _audit_heaps(node, cycle, violations)
    _audit_writebacks(node, violations)
    _audit_wakeups(node, violations)
    _audit_memory(node, violations)
    _audit_fill_board(node, violations)
    if auditor is not None:
        _audit_starvation(node, cycle, auditor, violations)
    return violations


def _producer_bits(node):
    """(tid, cluster) -> bitmask of register slots with an in-flight
    producer: a pipelined result, a buffered writeback, or a load
    anywhere in the memory system."""
    producers = {}

    def add(tid, cluster, bit):
        key = (tid, cluster)
        producers[key] = producers.get(key, 0) | bit

    pipe = getattr(node, "_pipe", None)
    if pipe is not None:                       # event kernel
        for entry in pipe:
            thread, plan = entry[3], entry[4]
            for cluster, index, bit in plan.dest_triples:
                add(thread.tid, cluster, bit)
        units = node._units_list
    else:                                      # scan kernel
        units = [node.units[uid] for uid in node.unit_order]
        for unit in units:
            for __, __, inflight in unit._pipeline:
                for dest in inflight.op.dests:
                    add(inflight.thread.tid, dest.cluster,
                        1 << dest.index)
    for unit in units:
        for entry in unit.writebacks:
            for dest in entry.dests:
                add(entry.thread.tid, dest.cluster, 1 << dest.index)
    memory = node.memory
    pending = [request for __, __, request in memory._in_flight]
    for queue in memory._queues.values():
        pending.extend(queue)
    for waiters in memory._parked.values():
        pending.extend(waiters)
    for request in pending:
        if request.spec.is_load:
            for dest in request.op.dests:
                add(request.thread.tid, dest.cluster, 1 << dest.index)
    return producers


def _audit_presence(node, violations):
    """Two-sided presence audit: every invalid (awaiting-writeback)
    register bit has an in-flight producer, and every in-flight
    producer targets an invalid bit (the WAW interlock means a valid
    destination can have nothing in flight toward it)."""
    producers = _producer_bits(node)
    seen = set()
    for thread in node.active + node.finished:
        for cluster, frame in thread.frames.items():
            key = (thread.tid, cluster)
            seen.add(key)
            inflight = producers.get(key, 0)
            orphans = frame._invalid & ~inflight
            if orphans:
                violations.append(
                    "thread %d (%s) cluster %d: presence bits %s await "
                    "writeback with no in-flight producer (lost result)"
                    % (thread.tid, thread.name, cluster,
                       _bits(orphans)))
            ghosts = inflight & ~frame._invalid
            if ghosts:
                violations.append(
                    "thread %d (%s) cluster %d: in-flight producer "
                    "targets valid registers %s (presence bit set early "
                    "or duplicated producer)"
                    % (thread.tid, thread.name, cluster, _bits(ghosts)))
    for (tid, cluster), mask in producers.items():
        if (tid, cluster) not in seen and mask:
            violations.append(
                "in-flight producer for unknown frame (thread %d, "
                "cluster %d)" % (tid, cluster))


def _audit_heaps(node, cycle, violations):
    """Heap order and monotonicity: every timed queue is a valid heap
    and holds no event already overdue (the loop gates guarantee due
    events drain before the cycle counter advances)."""
    pipe = getattr(node, "_pipe", None)
    if pipe is not None:
        _check_heap(pipe, "completion heap", cycle, violations)
        _check_heap(node._wake_heap, "wake heap", cycle, violations)
    else:
        for uid in node.unit_order:
            _check_heap(node.units[uid]._pipeline,
                        "unit %s pipeline" % uid, cycle, violations)
    memory = node.memory
    _check_heap(memory._in_flight, "memory in-flight heap", cycle,
                violations)
    _check_heap(memory._deferred_bits, "deferred presence heap", cycle,
                violations)


def _check_heap(heap, label, cycle, violations):
    for index, entry in enumerate(heap):
        if entry[0] < cycle:
            violations.append(
                "%s: overdue event (ready %d < cycle %d) never drained"
                % (label, entry[0], cycle))
            break
    n = len(heap)
    for index in range(n):
        for child in (2 * index + 1, 2 * index + 2):
            if child < n and heap[child][:2] < heap[index][:2]:
                violations.append(
                    "%s: heap order broken at index %d" % (label, index))
                return


def _audit_writebacks(node, violations):
    """Event kernel: the cached writeback count and pending-unit set
    must mirror the per-unit buffers exactly (a skew silently drops or
    double-grants results)."""
    if not hasattr(node, "_wb_count"):
        return
    actual = sum(len(unit.writebacks) for unit in node._units_list)
    if node._wb_count != actual:
        violations.append(
            "writeback count skew: cached %d, buffered %d"
            % (node._wb_count, actual))
    with_entries = {unit.index for unit in node._units_list
                    if unit.writebacks}
    if with_entries != node._wb_pending:
        violations.append(
            "writeback pending-set skew: buffers on %s, pending %s"
            % (sorted(with_entries), sorted(node._wb_pending)))


def _plan_ready(thread, plan):
    frames = thread.frames
    single = plan.single_wait
    if single is not None:
        frame = frames.get(single[0])
        return frame is None or not (frame._invalid & single[1])
    for cluster, mask in plan.wait_groups:
        frame = frames.get(cluster)
        if frame is not None and frame._invalid & mask:
            return False
    return True


def _audit_wakeups(node, violations):
    """No lost wakeups: every parked thread must have a wake source —
    a timed wake-heap entry or a pending plan blocked on a presence
    bit (whose producer the presence audit has already vouched for)."""
    wake_heap = getattr(node, "_wake_heap", None)
    if wake_heap is None:
        return                               # scan kernel never parks
    waking = {entry[1] for entry in wake_heap}
    for thread in node.active:
        if not thread.parked or thread.tid in waking:
            continue
        plans = thread.pending_plans
        if not plans:
            violations.append(
                "thread %d (%s) parked with no pending plans and no "
                "timed wake (lost wakeup)" % (thread.tid, thread.name))
            continue
        if all(_plan_ready(thread, plan) for plan in plans):
            violations.append(
                "thread %d (%s) parked while every pending plan is "
                "ready and no timed wake exists (lost wakeup)"
                % (thread.tid, thread.name))


def _audit_memory(node, violations):
    """Memory protocol: busy set mirrors the in-flight heap, non-empty
    queues always shadow a busy address, and parked references
    genuinely have unmet preconditions (a satisfied waiter that was
    never reactivated is a lost memory wakeup)."""
    memory = node.memory
    in_service = {request.addr for __, __, request in memory._in_flight}
    if in_service != memory._busy:
        violations.append(
            "memory busy-set skew: in service %s, busy %s"
            % (sorted(in_service), sorted(memory._busy)))
    for addr, queue in memory._queues.items():
        if queue and addr not in memory._busy:
            violations.append(
                "memory queue on idle address %d never restarted "
                "(lost service)" % addr)
    for addr, waiters in memory._parked.items():
        for request in waiters:
            if memory._precondition_met(request):
                violations.append(
                    "parked %s(thread %d) at addr %d has its "
                    "precondition met but was never reactivated "
                    "(lost memory wakeup)"
                    % (request.op.name, request.thread.tid, addr))
                break


def _audit_fill_board(node, violations):
    """Opcache fill board: every shared in-flight fill must be owned
    by at least one unit whose private fill table agrees on the ready
    cycle (a stale board entry makes joiners wait on a fill that will
    never land)."""
    if node.config.op_cache is None:
        return
    units = [node.units[uid] for uid in node.unit_order]
    board = None
    for unit in units:
        if unit.opcache is not None:
            board = unit.opcache._board
            break
    if not board:
        return
    for key, ready in board.items():
        owned = any(unit.opcache is not None
                    and unit.opcache._fills.get(key) == ready
                    for unit in units)
        if not owned:
            violations.append(
                "fill board entry %r (ready %d) has no owning unit "
                "fill (stale board entry)" % (key, ready))


def _issued_by_tid(node):
    counts = dict(node.stats.issued_by_thread)
    batch = getattr(node, "_issued_tids", None)
    if batch:
        for tid, count in batch.items():
            counts[tid] = counts.get(tid, 0) + count
    return counts


def _thread_ready_now(node, thread):
    if thread.parked or thread.halted or thread.control_inflight:
        return False
    if thread.pending_plans:
        return any(_plan_ready(thread, plan)
                   for plan in thread.pending_plans)
    if thread.pending:
        return any(thread.sources_ready(op)
                   for op in thread.pending.values())
    return False


def _audit_starvation(node, cycle, auditor, violations):
    """Round-robin starvation bound: a thread observed ready-to-issue
    at every audit across ``starvation_cycles`` cycles, issuing
    nothing while other threads issue, violates round-robin's fairness
    guarantee.  (Priority arbitration starves by design; not audited.)
    """
    if node.arbiter.name != "round-robin":
        return
    marks = auditor._starve
    counts = _issued_by_tid(node)
    total = sum(counts.values())
    bound = auditor.policy.starvation_cycles
    live = set()
    for thread in node.active:
        tid = thread.tid
        live.add(tid)
        own = counts.get(tid, 0)
        if not _thread_ready_now(node, thread):
            marks.pop(tid, None)
            continue
        mark = marks.get(tid)
        if mark is None or own != mark[0]:
            marks[tid] = (own, total, cycle)
            continue
        mark_own, mark_total, since = mark
        if total > mark_total and cycle - since >= bound:
            violations.append(
                "thread %d (%s) ready for %d cycles under round-robin "
                "while %d other issues went through (starvation)"
                % (tid, thread.name, cycle - since, total - mark_total))
            marks[tid] = (own, total, cycle)
    for tid in list(marks):
        if tid not in live:
            del marks[tid]


def _bits(mask):
    out = []
    index = 0
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return out


# ---------------------------------------------------------------------------
# Tier 2: canonical state, digests, deltas
# ---------------------------------------------------------------------------


def canonical_state(node):
    """The node's architecturally visible state as plain comparable
    structures, keyed by component.

    Engine bookkeeping that legitimately differs between the fused and
    unfused kernels (heap sequence counters, park hints, fast-forward
    diagnostics, ENGINE_STAT_FIELDS) is deliberately excluded: two
    bit-identical runs must produce equal components even across the
    fused/unfused divide.
    """
    return {
        "cycle": node.cycle,
        "stats": _stats_state(node.stats),
        "threads": tuple(_thread_state(thread) for thread in
                         sorted(node.active + node.finished,
                                key=lambda t: t.tid)),
        "memory": _memory_state(node.memory),
        "inflight": _inflight_state(node),
        "rng": repr(node.rng.getstate()),
    }


def state_digest(node):
    """component -> short sha256 digest of :func:`canonical_state`."""
    return {name: sha256(repr(value).encode()).hexdigest()[:16]
            for name, value in canonical_state(node).items()}


def diff_components(a, b):
    """The canonical-state components on which nodes ``a`` and ``b``
    disagree (empty list = architecturally identical)."""
    sa, sb = canonical_state(a), canonical_state(b)
    return [name for name in sa if sa[name] != sb[name]]


def state_delta(a, b, limit=16):
    """A bounded list of human-readable leaf differences between two
    nodes' canonical states — the report's "minimal state delta"."""
    lines = []

    def walk(path, x, y):
        if len(lines) >= limit:
            return
        if type(x) is not type(y):
            lines.append("%s: %r != %r" % (path, x, y))
        elif isinstance(x, dict):
            for key in sorted(set(x) | set(y), key=repr):
                if len(lines) >= limit:
                    return
                if key not in x:
                    lines.append("%s[%r]: missing != %r" % (path, key,
                                                            y[key]))
                elif key not in y:
                    lines.append("%s[%r]: %r != missing" % (path, key,
                                                            x[key]))
                elif x[key] != y[key]:
                    walk("%s[%r]" % (path, key), x[key], y[key])
        elif isinstance(x, (tuple, list)):
            if len(x) != len(y):
                lines.append("%s: length %d != %d" % (path, len(x),
                                                      len(y)))
            for index, (xi, yi) in enumerate(zip(x, y)):
                if len(lines) >= limit:
                    return
                if xi != yi:
                    walk("%s[%d]" % (path, index), xi, yi)
        elif x != y:
            lines.append("%s: %r != %r" % (path, x, y))

    for name, x in canonical_state(a).items():
        walk(name, x, canonical_state(b)[name])
        if len(lines) >= limit:
            break
    return lines


def _stats_state(stats):
    out = []
    for key, value in sorted(vars(stats).items()):
        if key in ENGINE_STAT_FIELDS or key == "unit_counts":
            continue
        if isinstance(value, dict):
            value = tuple(sorted(value.items(),
                                 key=lambda item: repr(item[0])))
        out.append((key, value))
    return tuple(out)


def _thread_state(thread):
    frames = []
    for cluster in sorted(thread.frames):
        frame = thread.frames[cluster]
        values = tuple((index, frame._values[index]
                        if index < len(frame._values) else 0)
                       for index in _bits(frame._used))
        frames.append((cluster, frame._invalid, frame._used, values))
    if thread.pending_plans:
        pending = tuple(plan.uid for plan in thread.pending_plans)
    else:
        pending = tuple(sorted(thread.pending))
    return (thread.tid, thread.name, thread.ip, thread.next_ip,
            thread.state, thread.halted, bool(thread.control_inflight),
            pending, tuple(frames))


def _memory_state(memory):
    in_flight = tuple(
        (ready, seq, request.addr, request.op.name, request.thread.tid,
         request.arrival)
        for ready, seq, request in sorted(memory._in_flight,
                                          key=lambda e: e[:2]))
    queues = tuple(
        (addr, tuple((r.op.name, r.thread.tid, r.arrival)
                     for r in memory._queues[addr]))
        for addr in sorted(memory._queues) if memory._queues[addr])
    parked = tuple(
        (addr, tuple(sorted((r.op.name, r.thread.tid, r.arrival)
                            for r in memory._parked[addr])))
        for addr in sorted(memory._parked) if memory._parked[addr])
    deferred = tuple(sorted((ready, seq, addr, post) for
                            ready, seq, addr, post
                            in memory._deferred_bits))
    return (tuple(sorted(memory._values.items())),
            tuple(sorted(memory._empty)),
            tuple(sorted(memory._busy)),
            in_flight, queues, parked, deferred,
            tuple(sorted(memory._last_touch.items())),
            memory._seq, memory._arrivals)


def _payload_sig(plan, payload):
    if plan.is_memory:
        return ("mem", payload.addr, payload.store_value)
    return repr(payload)


def _inflight_state(node):
    pipe = getattr(node, "_pipe", None)
    if pipe is not None:
        # Heap sequence numbers are engine bookkeeping (fused spans
        # bypass the pipe, skewing them between kernels); (ready,
        # unit) is already unique — one issue per unit per cycle at a
        # fixed per-unit latency.
        pipe_sig = tuple(
            (entry[0], entry[1], entry[3].tid, entry[4].uid,
             _payload_sig(entry[4], entry[5]))
            for entry in sorted(pipe, key=lambda e: e[:2]))
        wake = tuple(sorted((entry[0], entry[1])
                            for entry in node._wake_heap))
        units = node._units_list
    else:
        rows = []
        for uid in node.unit_order:
            for ready, __, inflight in sorted(
                    node.units[uid]._pipeline, key=lambda e: e[:2]):
                rows.append((ready, uid, inflight.thread.tid,
                             inflight.op.name))
        pipe_sig = tuple(rows)
        wake = ()
        units = [node.units[uid] for uid in node.unit_order]
    writebacks = tuple(
        (unit.slot.uid, tuple((entry.thread.tid, entry.op.name,
                               entry.value,
                               tuple((d.cluster, d.index)
                                     for d in entry.dests))
                              for entry in unit.writebacks))
        for unit in units if unit.writebacks)
    fills = ()
    if node.config.op_cache is not None:
        fills = tuple(
            (unit.slot.uid, tuple(sorted(unit.opcache._fills.items())),
             tuple(sorted(unit.opcache._lines)))
            for unit in units if unit.opcache is not None)
    spawns = tuple((program.name,
                    tuple((repr(reg), value) for reg, value in bindings),
                    priority)
                   for program, bindings, priority in node._spawn_queue)
    return (pipe_sig, wake, writebacks, fills, spawns, node._next_tid,
            getattr(node.arbiter, "_next", None))


# ---------------------------------------------------------------------------
# Reproducer bundles
# ---------------------------------------------------------------------------


def write_bundle(report, snapshot, policy, max_cycles, watchdog_cycles):
    """Extract a replayable reproducer: ``meta.json`` (report, seed,
    cycle budgets, level) plus the pickled ``Node.snapshot``.  Returns
    the bundle directory path.  Snapshots pickle cleanly because
    ``BlockTable.__reduce__`` drops compiled closures and recompiles
    lazily on the replaying side."""
    base = os.path.join(policy.report_dir,
                        "%s-%s-cycle%d" % (report.program, report.kind,
                                           report.cycle))
    path = base
    attempt = 1
    while os.path.exists(path):
        attempt += 1
        path = "%s-%d" % (base, attempt)
    os.makedirs(path)
    meta = {"format": _BUNDLE_FORMAT, "kind": report.kind,
            "level": policy.level, "engine": report.engine,
            "seed": report.seed, "max_cycles": max_cycles,
            "watchdog_cycles": watchdog_cycles,
            "report": report.as_dict()}
    with open(os.path.join(path, "meta.json"), "w") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
    with open(os.path.join(path, "snapshot.pkl"), "wb") as handle:
        pickle.dump(snapshot, handle)
    return path


def load_bundle(path):
    """(meta dict, snapshot) from a bundle directory."""
    with open(os.path.join(path, "meta.json")) as handle:
        meta = json.load(handle)
    if meta.get("format") != _BUNDLE_FORMAT:
        raise SanitizerError("bundle %s has format %r; this build reads "
                             "format %d" % (path, meta.get("format"),
                                            _BUNDLE_FORMAT))
    with open(os.path.join(path, "snapshot.pkl"), "rb") as handle:
        snapshot = pickle.load(handle)
    return meta, snapshot


def replay_bundle(path, out=None, max_cycles=None, trace=False):
    """Deterministically re-execute a reproducer bundle.

    Divergence bundles restore the snapshot twice — fused and unfused
    — run both to completion, and report whether the divergence
    reproduces (it does for deterministic miscompiles; a trip caused
    by transient in-memory corruption recompiles clean and is reported
    as such).  Invariant bundles resume the corrupt state under a
    per-cycle auditor and report the re-trip.  Returns a verdict dict.
    """
    emit = out if out is not None else print
    meta, snapshot = load_bundle(path)
    report = meta["report"]
    emit("replaying %s bundle from %s (engine=%s seed=%s)"
         % (meta["kind"], path, meta["engine"], meta["seed"]))
    emit("original trip: cycle %d, window %d..%d"
         % (report["cycle"], report["window"][0], report["window"][1]))
    budget = max_cycles if max_cycles is not None else meta["max_cycles"]
    watchdog = meta.get("watchdog_cycles")
    if meta["kind"] == "invariant":
        node = Node.restore(snapshot)
        policy = SanitizerPolicy.from_level("deep")
        node.sanitizer = InvariantAuditor(policy)
        node.sanitizer.next_cycle = node.cycle
        try:
            node.resume(max_cycles=budget, watchdog_cycles=watchdog)
        except InvariantViolation as exc:
            emit("reproduced: %s" % exc)
            return {"reproduced": True, "kind": "invariant",
                    "error": str(exc)}
        except SimulationError as exc:
            emit("reproduced (as %s): %s" % (type(exc).__name__, exc))
            return {"reproduced": True, "kind": "invariant",
                    "error": str(exc)}
        emit("not reproduced: the resumed run completed clean")
        return {"reproduced": False, "kind": "invariant"}
    recorder = None
    observer = None
    if trace:
        from .trace import TraceRecorder
        recorder = observer = TraceRecorder()
    fused = Node.restore(snapshot)
    unfused_snap = dict(snapshot)
    unfused_snap["config"] = snapshot["config"].with_fusion(False)
    unfused = Node.restore(unfused_snap, observer=observer)
    outcomes = {}
    for label, node in (("fused", fused), ("unfused", unfused)):
        try:
            node.resume(max_cycles=budget, watchdog_cycles=watchdog)
            outcomes[label] = None
        except SimulationError as exc:
            outcomes[label] = "%s: %s" % (type(exc).__name__, exc)
    if outcomes["fused"] or outcomes["unfused"]:
        emit("fused: %s" % (outcomes["fused"] or "completed"))
        emit("unfused: %s" % (outcomes["unfused"] or "completed"))
        reproduced = outcomes["fused"] != outcomes["unfused"]
    else:
        mismatch = diff_components(fused, unfused)
        reproduced = bool(mismatch)
        if mismatch:
            emit("reproduced: fused and unfused runs diverge on %s"
                 % ", ".join(mismatch))
            for line in state_delta(fused, unfused):
                emit("  " + line)
        else:
            emit("not reproduced: recompiled superblocks match the "
                 "reference (the original trip captured transient "
                 "in-memory corruption, not a deterministic miscompile)")
    if recorder is not None and recorder.issues:
        from .trace import render_timeline
        emit("reference (unfused) schedule entering the divergence "
             "window:")
        emit(render_timeline(recorder, snapshot["config"], last=48))
    return {"reproduced": reproduced, "kind": "divergence",
            "outcomes": outcomes}


# ---------------------------------------------------------------------------
# Tier 2+3 driver
# ---------------------------------------------------------------------------


def run_sanitized(program, config, overrides=None, max_cycles=5_000_000,
                  watchdog_cycles=None, fast_forward=True, observer=None,
                  policy="audit", tamper=None):
    """Run ``program`` under the sanitizer; same contract and results
    as :func:`~repro.sim.node.run_program` unless a tier trips.

    ``tamper`` is a test hook: called with the primary node after its
    first cycle, before shadow stepping begins — tests use it to plant
    a deliberately miscompiled superblock and prove the shadow tier
    catches, quarantines, and reports it.
    """
    policy = coerce_policy(policy)
    if policy is None:
        node = make_node(config, observer=observer,
                         fast_forward=fast_forward)
        return node.run(program, overrides=overrides,
                        max_cycles=max_cycles,
                        watchdog_cycles=watchdog_cycles)
    summary = SanitizerSummary(level=policy.level)
    primary = make_node(config, observer=observer,
                        fast_forward=fast_forward)
    auditor = None
    if policy.wants_audit:
        auditor = InvariantAuditor(policy, summary)
        primary.sanitizer = auditor
    shadowing = (policy.wants_shadow and primary.engine == "event"
                 and getattr(primary, "_fusion", False))
    if not shadowing:
        try:
            result = primary.run(program, overrides=overrides,
                                 max_cycles=max_cycles,
                                 watchdog_cycles=watchdog_cycles)
        except InvariantViolation as exc:
            _attach_invariant_bundle(exc, primary, policy, summary,
                                     max_cycles, watchdog_cycles)
            raise
        result.sanitizer = summary
        return result
    return _run_shadowed(program, config, overrides, max_cycles,
                         watchdog_cycles, fast_forward, observer,
                         policy, summary, primary, auditor, tamper)


def _attach_invariant_bundle(exc, node, policy, summary, max_cycles,
                             watchdog_cycles):
    """Bundle the corrupt state an invariant audit caught and attach
    the report + path to the in-flight exception."""
    summary.trips += 1
    report = _build_report(
        kind="invariant", node=node,
        window=(max(0, node.cycle - policy.audit_stride), node.cycle),
        suspects=_recent_suspects(node), quarantined=(),
        components=(), delta=(),
        violations=getattr(exc, "violations", ()))
    path = write_bundle(report, node.snapshot(), policy, max_cycles,
                        watchdog_cycles)
    summary.reports.append(path)
    exc.report = report.as_dict()
    exc.bundle_path = path


def _recent_suspects(node):
    last = getattr(node, "_last_fused", None)
    return tuple(last[1]) if last is not None else ()


def _build_report(kind, node, window, suspects, quarantined, components,
                  delta, violations):
    stats = node.stats
    return SanitizerReport(
        kind=kind, cycle=node.cycle, window=tuple(window),
        engine=node.engine, program=node._program.main,
        config=node.config.name, seed=node.config.seed,
        threads=[(thread.tid, thread.name) for thread in node.active],
        suspects=[tuple(s) for s in suspects],
        quarantined=[tuple(q) for q in quarantined],
        defuse_reasons=dict(getattr(stats, "defuse_reasons", {})),
        components=list(components), delta=list(delta),
        violations=list(violations))


def _restore_node(snap, config, observer=None):
    if config is not snap["config"]:
        snap = dict(snap)
        snap["config"] = config
    return Node.restore(snap, observer=observer)


def _run_shadowed(program, config, overrides, max_cycles,
                  watchdog_cycles, fast_forward, observer, policy,
                  summary, primary, auditor, tamper):
    shadow_config = config.with_fusion(False)
    shadow = make_node(shadow_config, fast_forward=fast_forward)
    stride = policy.shadow_stride
    dispatch_log = []
    primary._dispatch_log = dispatch_log
    quarantined = set()
    defused = False
    p_started = s_started = False

    def step(node, bound, started):
        if started:
            return node.resume(max_cycles=max_cycles,
                               watchdog_cycles=watchdog_cycles,
                               pause_at=bound)
        return node.run(program, overrides=overrides,
                        max_cycles=max_cycles,
                        watchdog_cycles=watchdog_cycles, pause_at=bound)

    if tamper is not None:
        rp = step(primary, 1, False)
        rs = step(shadow, 1, False)
        p_started = s_started = True
        tamper(primary)
        if rp is not None and rs is not None:
            rp.sanitizer = summary
            return rp

    while True:
        last_good = primary.snapshot()
        start_cycle = primary.cycle
        boundary = start_cycle + stride
        del dispatch_log[:]
        rp = rs = None
        p_exc = s_exc = None
        try:
            rp = step(primary, boundary, p_started)
        except SimulationError as exc:
            p_exc = exc
        p_started = True
        try:
            rs = step(shadow, boundary, s_started)
        except SimulationError as exc:
            s_exc = exc
        s_started = True
        summary.shadow_checks += 1
        if p_exc is None and s_exc is None:
            mismatch = diff_components(primary, shadow)
            if not mismatch and (rp is None) == (rs is None):
                if rp is not None:
                    rp.sanitizer = summary
                    return rp
                continue
        elif p_exc is not None and s_exc is not None \
                and type(p_exc) is type(s_exc) \
                and primary.cycle == shadow.cycle:
            # Both kernels fail the same way at the same cycle: the
            # program itself is at fault, not the fused path.  The
            # primary's exception carries the fusion context.
            raise p_exc
        else:
            mismatch = ["outcome"]

        # ---- trip: triage, quarantine, roll back, retry -------------
        summary.trips += 1
        kind = "invariant" if isinstance(p_exc, InvariantViolation) \
            else "divergence"
        violations = getattr(p_exc, "violations", ()) \
            if p_exc is not None else ()
        if p_exc is not None and not isinstance(p_exc, SanitizerError):
            mismatch = ["outcome"]
            violations = ["primary raised %s where the shadow %s: %s"
                          % (type(p_exc).__name__,
                             "paused" if s_exc is None else "raised %s"
                             % type(s_exc).__name__, p_exc)]
        delta = state_delta(primary, shadow) \
            if p_exc is None and s_exc is None else []
        suspects = sorted(set(dispatch_log))
        if not summary.reports:
            report = _build_report(
                kind=kind, node=primary,
                window=(start_cycle, primary.cycle),
                suspects=suspects, quarantined=sorted(quarantined),
                components=mismatch, delta=delta,
                violations=violations)
            path = write_bundle(report, last_good, policy, max_cycles,
                                watchdog_cycles)
            summary.reports.append(path)
        if defused:
            # Fusion is already fully off and the divergence persists:
            # it cannot be the fused path's fault.  Surface it.
            message = ("state sanitizer: divergence persists with "
                       "fusion disabled (components: %s) — corrupt "
                       "state, not a miscompiled superblock"
                       % ", ".join(mismatch))
            if p_exc is not None:
                raise p_exc
            raise DivergenceError(message,
                                  bundle_path=summary.reports[0])
        fresh = [entry for entry in suspects if entry not in quarantined]
        if fresh and summary.requarantines < policy.max_requarantines:
            quarantined.update(fresh)
            summary.requarantines += 1
        else:
            defused = True
            summary.de_optimized = True
        primary = _restore_node(last_good, config, observer)
        primary._dispatch_log = dispatch_log
        if auditor is not None:
            auditor.rewind(primary.cycle)
            primary.sanitizer = auditor
        for name, entry_ip in sorted(quarantined):
            primary.quarantine_block(name, entry_ip)
        if defused:
            primary._fusion = False
        summary.quarantined = sorted(quarantined)
        shadow = _restore_node(last_good, shadow_config)
