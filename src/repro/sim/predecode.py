"""Load-time predecoding of wide instruction words into slot plans.

The scan kernel re-derives everything about an operation every cycle it
is pending: opcode spec lookups (a registry dict hit per call of
``Operation.spec``), source-register list construction, branch label
resolution, and unit table lookups.  None of that can change once a
program is loaded on a machine, so the event kernel hoists it all to
load time: each :class:`~repro.isa.instruction.Operation` becomes a
:class:`SlotPlan` carrying the resolved spec, flat operand fetch
offsets, prebuilt control payloads, and the home unit's index into the
node's unit table.  The per-cycle path then touches only plain
attributes, ints, and tuples.

Plans are immutable after decoding and are shared freely between a
node, its snapshots, and restored copies.  They deliberately reference
the original ``Operation`` objects (``plan.op``) so observers, memory
requests, and diagnostics show the exact objects the scan kernel would.
"""

import math
from heapq import heappush

from ..errors import SimulationError
from ..isa.operations import UnitClass
from .memory import MemRequest

#: Intern table for the small tuples predecoding mints over and over —
#: operand field triples, destination pairs, wait-group entries.  A big
#: program reuses the same few hundred shapes thousands of times;
#: interning keeps one object per shape (less memory, better cache
#: locality in the issue loop).
_INTERN = {}


def _intern(value):
    return _INTERN.setdefault(value, value)


class SlotPlan:
    """Everything the issue path needs about one operation, resolved."""

    __slots__ = ("uid", "unit_index", "op", "spec", "name",
                 "wait_groups", "single_wait", "src_fields",
                 "values_template", "dest_pairs", "dest_triples",
                 "semantics", "exec_fn", "is_memory", "is_load", "is_bru",
                 "control", "taken_payload", "untaken_payload",
                 "fork_name", "bindings_plan")

    def __init__(self, uid, unit_index, op, thread_program):
        spec = op.spec
        self.uid = uid
        self.unit_index = unit_index
        self.op = op
        self.spec = spec
        self.name = op.name
        self.is_memory = spec.is_memory
        self.is_load = spec.is_load
        self.is_bru = spec.unit is UnitClass.BRU
        # Presence-bit wait set: every register the op reads plus every
        # register it writes (WAW interlock), grouped by cluster as an
        # integer bitmask so the hot loop's readiness test is one frame
        # lookup and one AND per cluster.
        groups = {}
        for reg in list(op.source_regs()) + list(op.dests):
            groups[reg.cluster] = groups.get(reg.cluster, 0) | (1 << reg.index)
        self.wait_groups = _intern(tuple(sorted(groups.items())))
        # The overwhelmingly common single-cluster case, unpacked so the
        # issue loop's readiness test needs no iteration at all.
        self.single_wait = self.wait_groups[0] \
            if len(self.wait_groups) == 1 else None
        self.semantics = spec.semantics
        # Operand fetch: immediates are baked into the template, register
        # reads recorded as (position, cluster, index) patches.
        if op.srcs:
            template = []
            fields = []
            for pos, src in enumerate(op.srcs):
                if hasattr(src, "cluster"):
                    template.append(None)
                    fields.append(_intern((pos, src.cluster, src.index)))
                else:
                    template.append(src.value)
            self.values_template = template
            self.src_fields = _intern(tuple(fields))
        else:
            self.values_template = None
            self.src_fields = ()
        self.dest_pairs = _intern(tuple(
            _intern((d.cluster, d.index)) for d in op.dests))
        self.dest_triples = _intern(tuple(
            _intern((d.cluster, d.index, 1 << d.index))
            for d in op.dests))
        # Control: resolve branch targets and fork wiring now, so issue
        # builds payloads from plain tuples.
        self.control = None
        self.taken_payload = None
        self.untaken_payload = None
        self.fork_name = None
        self.bindings_plan = None
        if self.is_bru:
            if spec.is_halt:
                self.control = "halt"
                self.taken_payload = ("halt",)
            elif spec.is_fork:
                self.control = "fork"
                self.fork_name = op.target.name
                plan = []
                for child_reg, value in op.bindings:
                    if hasattr(value, "cluster"):
                        plan.append((child_reg, True,
                                     value.cluster, value.index))
                    else:
                        plan.append((child_reg, False, value.value, None))
                self.bindings_plan = tuple(plan)
            else:
                target = thread_program.resolve(op.target)
                self.control = op.name
                self.taken_payload = ("jump", target)
                self.untaken_payload = ("jump", None)
        # Compute slots (ALU/FPU) get a gather-and-evaluate closure
        # specialized on operand shape; the kernel's issue path calls
        # it instead of the generic template-patching loop.
        self.exec_fn = None
        if not self.is_memory and not self.is_bru:
            self.exec_fn = _make_exec_fn(self)

    def __reduce__(self):
        # semantics and exec_fn are (closures over) lambdas and cannot
        # cross process boundaries; both are pure functions of the
        # remaining state, so rebuild them on unpickle.
        state = {name: getattr(self, name) for name in self.__slots__
                 if name not in ("semantics", "exec_fn")}
        return (_rebuild_slot_plan, (state,))

    def wait_registers(self):
        """The (cluster, index) pairs this op waits on (decoded from the
        per-cluster masks; tests and diagnostics)."""
        pairs = []
        for cluster, mask in self.wait_groups:
            index = 0
            while mask:
                if mask & 1:
                    pairs.append((cluster, index))
                mask >>= 1
                index += 1
        return pairs


def _rebuild_slot_plan(state):
    plan = SlotPlan.__new__(SlotPlan)
    for name, value in state.items():
        setattr(plan, name, value)
    plan.semantics = plan.spec.semantics
    plan.exec_fn = None
    if not plan.is_memory and not plan.is_bru:
        plan.exec_fn = _make_exec_fn(plan)
    return plan


def _make_exec_fn(plan):
    """A specialized closure for a compute plan: read the (hardcoded)
    operands out of the thread's register frames and apply the opcode
    semantics in one call.  Covers the operand shapes the compiler
    actually emits (arity <= 2); returns None for anything else, which
    falls back to the kernel's generic template-patching path.

    The closures read exactly the registers the generic path reads, in
    the same order, and perform no writes — on an ArithmeticError the
    kernel regathers the operands generically for the error report and
    gets identical values.
    """
    sem = plan.semantics
    template = plan.values_template
    if template is None:
        return lambda frames: sem()
    fields = plan.src_fields
    arity = len(template)
    if not fields:
        if arity == 1:
            k0 = template[0]
            return lambda frames: sem(k0)
        if arity == 2:
            k0, k1 = template
            return lambda frames: sem(k0, k1)
        return None
    if arity == 1:
        __, c0, i0 = fields[0]

        def unary(frames):
            frame = frames.get(c0)
            if frame is None:
                return sem(0)
            stored = frame._values
            return sem(stored[i0] if i0 < len(stored) else 0)
        return unary
    if arity != 2:
        return None
    if len(fields) == 2:
        (__, c0, i0), (__, c1, i1) = fields
        if c0 == c1:
            def reg_reg_same(frames):
                frame = frames.get(c0)
                if frame is None:
                    return sem(0, 0)
                stored = frame._values
                n = len(stored)
                return sem(stored[i0] if i0 < n else 0,
                           stored[i1] if i1 < n else 0)
            return reg_reg_same

        def reg_reg(frames):
            frame = frames.get(c0)
            if frame is None:
                a = 0
            else:
                stored = frame._values
                a = stored[i0] if i0 < len(stored) else 0
            frame = frames.get(c1)
            if frame is None:
                b = 0
            else:
                stored = frame._values
                b = stored[i1] if i1 < len(stored) else 0
            return sem(a, b)
        return reg_reg
    pos, c0, i0 = fields[0]
    if pos == 0:
        k1 = template[1]

        def reg_imm(frames):
            frame = frames.get(c0)
            if frame is None:
                return sem(0, k1)
            stored = frame._values
            return sem(stored[i0] if i0 < len(stored) else 0, k1)
        return reg_imm
    k0 = template[0]

    def imm_reg(frames):
        frame = frames.get(c0)
        if frame is None:
            return sem(k0, 0)
        stored = frame._values
        return sem(k0, stored[i0] if i0 < len(stored) else 0)
    return imm_reg


class WordPlan:
    """One predecoded instruction word (plans in slot insertion order,
    exactly the order the scan kernel's ``dict(word.slots)`` yields)."""

    __slots__ = ("plans",)

    def __init__(self, plans):
        self.plans = tuple(plans)


class DecodedThread:
    """The predecoded form of one thread program.

    ``blocks`` maps superblock entry word indexes to compiled
    :class:`BlockPlan` closures (None when fusion was not requested at
    decode time).
    """

    __slots__ = ("name", "words", "blocks")

    def __init__(self, name, words, blocks=None):
        self.name = name
        self.words = tuple(words)
        self.blocks = blocks


def decode_program(program, unit_index, config=None):
    """Predecode every thread of ``program``.

    ``unit_index`` maps unit ids to their position in the node's unit
    table.  Returns a dict of thread name -> :class:`DecodedThread`.
    Assumes the program already passed
    :func:`~repro.sim.loader.validate_program` against the same
    machine (every uid present, no empty words).

    When ``config`` is given and its ``fusion`` toggle is on, each
    thread's straight-line runs are additionally compiled into
    :class:`BlockPlan` superblocks (see :func:`compile_blocks`).
    """
    fuse = config is not None and getattr(config, "fusion", True)
    decoded = {}
    for name, thread_program in program.threads.items():
        words = []
        for index, word in enumerate(thread_program.instructions):
            plans = [SlotPlan(uid, unit_index[uid], op, thread_program)
                     for uid, op in word.slots.items()]
            if not plans:
                raise SimulationError("thread %r word %d is empty"
                                      % (name, index))
            words.append(WordPlan(plans))
        thread = DecodedThread(name, words)
        if fuse:
            thread.blocks = compile_blocks(thread, config)
        decoded[name] = thread
    return decoded


# ---------------------------------------------------------------------------
# Superblock fusion
# ---------------------------------------------------------------------------
#
# A *superblock* is a maximal straight-line run of instruction words —
# no branch-unit slots except an optional terminal one, no
# synchronizing or miss-capable memory operations — whose intra-run
# dependences the static scheduler below can resolve exactly.  Each run
# is compiled, at decode time, into one specialized Python closure (a
# :class:`BlockPlan`) that replays the event kernel's entire
# cycle-by-cycle execution of the run in a single call: operand flow
# through flat SSA locals, per-run cycle cost precomputed, statistics
# and memory effects committed in bulk.
#
# The closure is only entered when the kernel's guards hold (single
# runnable thread, fully connected interconnect, no fault plan, every
# entry presence bit valid, the memory system idle, operation-cache
# lines resident); under those guards the event kernel's behaviour over
# the run is a pure function of the entry register/memory state, which
# is what the static schedule exploits.  Anything the schedule cannot
# prove (same-address memory collisions, out-of-range addresses,
# arithmetic faults) is checked at run time *before any state is
# mutated*; the closure then returns None and the kernel falls back to
# the interpreted word-by-word path, which reproduces the exact
# cycle-level behaviour — including the exact error, if any.

_MAX_BLOCK_OPS = 512          # codegen size cap per superblock
_MIN_BLOCK_OPS = 2            # fusing smaller runs doesn't pay

_FUSIBLE_BRANCHES = ("br", "brt", "brf", "halt")

# Inline source templates for registry semantics whose Python spelling
# is trivially equivalent to the registry lambda (operations.py).
_INT2_OPS = {"iadd": "+", "isub": "-", "imul": "*", "iand": "&",
             "ior": "|", "ixor": "^", "ishl": "<<", "ishr": ">>"}
_FLT2_OPS = {"fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/"}
_CMP_OPS = {"ieq": "==", "ine": "!=", "ilt": "<", "ile": "<=",
            "igt": ">", "ige": ">=", "feq": "==", "fne": "!=",
            "flt": "<", "fle": "<=", "fgt": ">", "fge": ">="}


class BlockPlan:
    """One compiled superblock.

    ``fn(node, thread, cycle)`` executes the whole run and returns the
    absolute cycle of its last issue (the kernel's new current cycle),
    or None when a run-time guard failed and the caller must fall back
    to the interpreted path.  ``last_rel`` is the run's span in cycles
    relative to entry; ``n_plans`` the entry word's slot count (the
    dispatch check that the word is fully un-issued); ``cache_checks``
    the (unit index, line key) pairs that must be resident when an
    operation cache is configured.
    """

    __slots__ = ("entry_ip", "word_ips", "n_plans", "n_ops", "last_rel",
                 "cache_checks", "fn", "source")

    def __init__(self, entry_ip, word_ips, n_plans, n_ops, last_rel,
                 cache_checks, fn, source):
        self.entry_ip = entry_ip
        self.word_ips = word_ips
        self.n_plans = n_plans
        self.n_ops = n_ops
        self.last_rel = last_rel
        self.cache_checks = cache_checks
        self.fn = fn
        self.source = source


class _Rec:
    """One operation's slot in the static schedule of a run."""

    __slots__ = ("plan", "ip", "word_pos", "slot_pos", "t", "ready",
                 "unit_index", "kind", "rank", "submit", "apply_c",
                 "arrival", "committed", "var", "val_expr", "cond_var")


def _entry_points(words):
    """Superblock entry word indexes: word 0, every branch target, and
    the word after every control word."""
    entries = {0}
    for ip, word in enumerate(words):
        for plan in word.plans:
            if plan.is_bru:
                entries.add(ip + 1)
                if plan.control in ("br", "brt", "brf"):
                    target = plan.taken_payload[1]
                    if target is not None:
                        entries.add(target)
    return entries


def _word_fusible(word, mem_ok):
    """Whether a word can live inside a run; returns (ok, terminal_bru).
    A fusible word holds no control slot except possibly one plain
    branch/halt (which ends the run), and no memory operation other
    than non-synchronizing ld/st on a miss-free memory model."""
    bru = None
    for plan in word.plans:
        if plan.is_bru:
            if plan.control not in _FUSIBLE_BRANCHES or bru is not None:
                return False, None
            bru = plan
        elif plan.is_memory:
            if not mem_ok or plan.name not in ("ld", "st"):
                return False, None
    return True, bru


def _build_run(words, start, mem_ok):
    """The maximal fusible run starting at ``start``, as a list of
    (ip, word, terminal_bru) triples — or None when the run is too
    small to pay for fusing."""
    run = []
    n_ops = 0
    ip = start
    while ip < len(words):
        ok, bru = _word_fusible(words[ip], mem_ok)
        if not ok or n_ops + len(words[ip].plans) > _MAX_BLOCK_OPS:
            break
        run.append((ip, words[ip], bru))
        n_ops += len(words[ip].plans)
        ip += 1
        if bru is not None:
            break
    if not run or n_ops < _MIN_BLOCK_OPS:
        return None
    return run


#: A run is compiled only once the kernel has reached its entry this
#: many times with every dispatch guard holding.  Compiling a block
#: costs a few hundred microseconds per operation (codegen + CPython
#: ``compile``) while a dispatch saves a few microseconds per
#: operation, so break-even sits at a few dozen dispatches; entries
#: reached once (straight-line cold code, "ideal"-mode megablocks) or
#: only a handful of times never pay the compile, while hot loop
#: headers cross the threshold early in their trip count.
_WARMUP_DISPATCHES = 16


class BlockTable:
    """Lazy superblock compiler for one decoded thread.

    Entry points are discovered eagerly (cheap), but a run is scheduled
    and compiled only once the kernel has dispatched at its entry
    :data:`_WARMUP_DISPATCHES` times — most entries are never reached
    with the machine in a fusible state (or reached exactly once), and
    eager compilation was measurably slower than interpreting short
    benchmarks outright.  Compilation is deterministic, so the cache
    can be shared freely between a node, its snapshots, and restored
    copies; pickling drops the cache and recompiles on demand (closures
    do not cross process boundaries).
    """

    __slots__ = ("_decoded", "_config", "_entries", "_mem_ok", "_cache",
                 "_heat")

    def __init__(self, decoded, config):
        # Nothing here may touch ``decoded``: it is mid-reconstruction
        # when a pickle rebuilds the decoded-thread <-> block-table
        # cycle.  Entry discovery happens on first dispatch instead.
        self._decoded = decoded
        self._config = config
        self._mem_ok = None
        self._entries = None
        self._cache = {}
        self._heat = {}

    def get(self, ip):
        block = self._cache.get(ip, False)
        if block is not False:
            return block
        if self._entries is None:
            self._mem_ok = self._config.memory.miss_rate == 0.0
            self._entries = _entry_points(self._decoded.words)
        if ip not in self._entries:
            self._cache[ip] = None
            return None
        heat = self._heat.get(ip, 0) + 1
        if heat < _WARMUP_DISPATCHES:
            self._heat[ip] = heat
            return None
        block = None
        words = self._decoded.words
        if ip < len(words):
            run = _build_run(words, ip, self._mem_ok)
            if run is not None:
                block = _compile_run(self._decoded.name, ip, run,
                                     self._config)
        self._cache[ip] = block
        return block

    def compiled_blocks(self):
        """The blocks compiled so far (diagnostics and tests)."""
        return {ip: block for ip, block in self._cache.items()
                if block is not None}

    def __deepcopy__(self, memo):
        # Compilation is deterministic and closures never carry run
        # state, so snapshots share the table with the live node.
        return self

    def __reduce__(self):
        return (BlockTable, (self._decoded, self._config))


def compile_blocks(decoded, config):
    """A lazy :class:`BlockTable` over every fusible run of
    ``decoded``, keyed by entry word index."""
    return BlockTable(decoded, config)


def _int_src(src):
    """Source text for ``int(value)`` of an (expr, is_int) operand."""
    expr, is_int = src
    return expr if is_int else "int(%s)" % expr


def _const_expr(value, ns, counter):
    """Source text for a baked immediate, as an (expr, is_int) pair.
    Values whose repr does not round-trip exactly are bound into the
    closure's namespace instead of inlined."""
    if type(value) is int:
        return repr(value), True
    if type(value) is float and math.isfinite(value):
        return repr(value), False
    name = "k%d" % counter[0]
    counter[0] += 1
    ns[name] = value
    return name, False


def _semantics_expr(plan, srcs, ns, rank):
    """Python source computing ``plan.spec.semantics(*values)``.  Ops
    with no trivially equivalent inline spelling bind the registry
    callable itself, so the closure can never drift from operations.py.
    """
    name = plan.name
    sym = _INT2_OPS.get(name)
    if sym is not None:
        return "(%s %s %s)" % (_int_src(srcs[0]), sym, _int_src(srcs[1]))
    sym = _CMP_OPS.get(name)
    if sym is not None:                  # _bool compares raw operands
        return "(1 if %s %s %s else 0)" % (srcs[0][0], sym, srcs[1][0])
    sym = _FLT2_OPS.get(name)
    if sym is not None:
        return "(float(%s) %s float(%s))" % (srcs[0][0], sym, srcs[1][0])
    if name in ("imov", "fmov"):
        return srcs[0][0]
    if name == "ineg":
        return "(-%s)" % _int_src(srcs[0])
    if name == "inot":
        return "(~%s)" % _int_src(srcs[0])
    if name in ("imin", "imax"):
        return "%s(%s, %s)" % (name[1:], _int_src(srcs[0]),
                               _int_src(srcs[1]))
    if name == "fneg":
        return "(-float(%s))" % srcs[0][0]
    if name == "fabs":
        return "abs(float(%s))" % srcs[0][0]
    if name in ("fmin", "fmax"):
        return "%s(float(%s), float(%s))" % (name[1:], srcs[0][0],
                                             srcs[1][0])
    if name == "itof":
        return "float(%s)" % srcs[0][0]
    if name == "ftoi":
        return "int(%s)" % srcs[0][0]
    if name == "fsqrt":
        ns["_sqrt"] = math.sqrt
        return "_sqrt(float(%s))" % srcs[0][0]
    key = "s%d" % rank                   # idiv, imod, future opcodes
    ns[key] = plan.spec.semantics
    return "%s(%s)" % (key, ", ".join(expr for expr, __ in srcs))


def _compile_run(thread_name, start, run, config):
    """Statically schedule one run and compile it to a closure.

    The schedule replays the kernel's issue dynamics exactly: all slots
    of a word activate together when the previous word's last slot has
    issued; each cycle the pending slots are scanned in slot order and
    issue once their wait registers are all valid; issuing makes the
    destinations invalid until the result lands (ALU: end of the unit
    pipeline; load: the memory apply cycle).  ``valid_at`` maps
    registers to the block-relative cycle their presence bit is
    (re)set — absent means valid since entry, which the dispatch guard
    establishes.
    """
    unit_by_id = config.unit_by_id
    hit_latency = config.memory.hit_latency

    valid_at = {}
    recs = []
    t_word = 0
    terminal = None
    for word_pos, (ip, word, bru) in enumerate(run):
        pending = []
        for slot_pos, plan in enumerate(word.plans):
            rec = _Rec()
            rec.plan = plan
            rec.ip = ip
            rec.word_pos = word_pos
            rec.slot_pos = slot_pos
            rec.unit_index = plan.unit_index
            rec.val_expr = None
            rec.cond_var = None
            rec.var = None
            pending.append(rec)
            recs.append(rec)
        t = t_word
        while pending:
            remaining = []
            next_t = None
            for rec in pending:
                plan = rec.plan
                wait = t
                for pair in plan.wait_registers():
                    when = valid_at.get(pair, 0)
                    if when > wait:
                        wait = when
                if wait <= t:
                    rec.t = t
                    rec.ready = t + unit_by_id[plan.uid].latency
                    if plan.is_memory:
                        rec.kind = "mem"
                        rec.submit = rec.ready
                        rec.apply_c = rec.ready + hit_latency - 1
                        if plan.is_load:
                            for pair in plan.dest_pairs:
                                valid_at[pair] = rec.apply_c
                    elif plan.is_bru:
                        rec.kind = "bru"
                        terminal = rec
                    elif plan.dest_pairs:
                        rec.kind = "alu"
                        for pair in plan.dest_pairs:
                            valid_at[pair] = rec.ready
                    else:
                        rec.kind = "sink"
                else:
                    remaining.append(rec)
                    if next_t is None or wait < next_t:
                        next_t = wait
            pending = remaining
            if pending:
                # Presence bits only ever *become* valid at scheduled
                # cycles, so jumping to the earliest one is exact.
                t = next_t
        t_word = max(r.t for r in recs[-len(word.plans):]) + 1
    last_rel = max(r.t for r in recs)

    # Issue order: one word active at a time, pending list scanned in
    # slot order — so (cycle, word, slot) is the kernel's exact order.
    issue_order = sorted(recs, key=_issue_key)
    for rank, rec in enumerate(issue_order):
        rec.rank = rank

    # Classify each op against the block's last issue cycle: fully
    # committed inside the block, or a tail the real machinery finishes.
    for rec in recs:
        if rec.kind == "mem":
            rec.committed = rec.apply_c <= last_rel
        else:
            rec.committed = rec.ready <= last_rel

    # Memory arrival order: submits are pipe pops, ordered
    # (cycle, unit index, seq) — seq follows issue rank.
    arriving = sorted((r for r in recs
                       if r.kind == "mem" and r.submit <= last_rel),
                      key=_arrival_key)
    for arrival, rec in enumerate(arriving):
        rec.arrival = arrival

    # Same-address service windows overlapping a *committed* access
    # would queue — which the bulk counters do not model — so those
    # pairs get a run-time distinctness check.  Pairs of tail submits
    # go through the real submit path and need none.
    pairs = []
    for i, first in enumerate(arriving):
        if not first.committed:
            continue
        for second in arriving[i + 1:]:
            if second.submit <= first.apply_c:
                pairs.append((first, second))
            else:
                break
    return _emit_block(thread_name, start, run, config, recs, issue_order,
                       arriving, pairs, terminal, last_rel)


def _issue_key(rec):
    return (rec.t, rec.word_pos, rec.slot_pos)


def _arrival_key(rec):
    return (rec.submit, rec.unit_index, rec.rank)


def _emit_block(thread_name, start, run, config, recs, issue_order,
                arriving, pairs, terminal, last_rel):
    """Generate, compile, and wrap the closure for one scheduled run.

    The closure body has two halves.  The *compute* half (inside a
    ``try``) evaluates every operation in the exact event order of the
    real kernel — commits at phase 1/2 before issues at phase 5 of the
    same cycle — through single-assignment locals, and performs every
    run-time guard (address range, same-address service overlap); it
    mutates nothing, so any exception or failed guard falls back to the
    interpreted path with the machine state untouched.  The *commit*
    half then applies all effects: register file, memory values and
    bulk counters, tail submits and completion-heap entries, batched
    issue statistics, and the thread's end state.
    """
    mem_size = config.memory_size
    ns = {"heappush": heappush, "MemRequest": MemRequest}
    counter = [0]

    committed_mems = [r for r in arriving if r.committed]
    mem_tails = [r for r in arriving if not r.committed]
    use_ov = any(r.plan.is_load for r in committed_mems) \
        and any(not r.plan.is_load for r in committed_mems)

    # Event timeline: phase 1 = ALU results land (pipe pop order:
    # unit index then seq), phase 2 = memory applies (arrival order),
    # phase 5 = issues (scan order).  Ranks only compare within one
    # (cycle, phase), so the mixed int/tuple keys never meet.
    events = []
    for rec in recs:
        events.append((rec.t, 5, rec.rank, rec))
        if rec.committed:
            if rec.kind == "alu":
                events.append((rec.ready, 1, (rec.unit_index, rec.rank),
                               rec))
            elif rec.kind == "mem":
                events.append((rec.apply_c, 2, rec.arrival, rec))
    events.sort(key=lambda event: event[:3])

    compute = []
    entry_lines = []
    regvar = {}          # (cluster, index) -> current SSA local
    entry_reads = {}
    read_clusters = set()
    reg_commits = []     # (cluster, index, local) in landing order
    addr_done = set()

    def reg_read(cluster, index):
        var = regvar.get((cluster, index))
        if var is not None:
            return var
        var = entry_reads.get((cluster, index))
        if var is None:
            var = "e%d_%d" % (cluster, index)
            entry_reads[(cluster, index)] = var
            read_clusters.add(cluster)
            entry_lines.append(
                "%s = F%dv[%d] if %d < len(F%dv) else 0"
                % (var, cluster, index, index, cluster))
        return var

    def srcs_of(plan):
        out = []
        if plan.values_template is None:
            return out
        fields = {pos: (cluster, index)
                  for pos, cluster, index in plan.src_fields}
        for pos, baked in enumerate(plan.values_template):
            pair = fields.get(pos)
            if pair is not None:
                out.append((reg_read(*pair), False))
            else:
                out.append(_const_expr(baked, ns, counter))
        return out

    for __, phase, __, rec in events:
        plan = rec.plan
        rank = rec.rank
        if phase == 5:
            if rec.kind == "alu":
                rec.var = "v%d" % rank
                compute.append("%s = %s" % (
                    rec.var, _semantics_expr(plan, srcs_of(plan), ns,
                                             rank)))
            elif rec.kind == "mem":
                srcs = srcs_of(plan)
                if plan.is_load:
                    base, offset = srcs[0], srcs[1]
                else:
                    rec.val_expr = srcs[0][0]
                    base, offset = srcs[1], srcs[2]
                rec.var = "a%d" % rank
                compute.append("%s = %s + %s" % (
                    rec.var, _int_src(base), _int_src(offset)))
                if rec.submit <= last_rel:
                    compute.append("if not 0 <= %s < %d:"
                                   % (rec.var, mem_size))
                    compute.append("    return None")
                    addr_done.add(rank)
                    for first, second in pairs:
                        if rec in (first, second):
                            other = second if rec is first else first
                            if other.rank in addr_done:
                                compute.append(
                                    "if %s == %s:" % (first.var,
                                                      second.var))
                                compute.append("    return None")
            elif rec.kind == "bru":
                srcs = srcs_of(plan)
                if plan.control in ("brt", "brf"):
                    rec.cond_var = srcs[0][0]
            # sink: semantics is ``lambda a: None`` — nothing to do
        elif phase == 1:
            for pair in plan.dest_pairs:
                regvar[pair] = rec.var
                reg_commits.append((pair[0], pair[1], rec.var))
        else:                            # phase 2: committed mem apply
            if plan.is_load:
                value = "v%d" % rank
                rec.val_expr = value
                if use_ov:
                    compute.append(
                        "%s = OV[%s] if %s in OV else MVg(%s, 0)"
                        % (value, rec.var, rec.var, rec.var))
                else:
                    compute.append("%s = MVg(%s, 0)" % (value, rec.var))
                for pair in plan.dest_pairs:
                    regvar[pair] = value
                    reg_commits.append((pair[0], pair[1], value))
            elif use_ov:
                compute.append("OV[%s] = %s" % (rec.var, rec.val_expr))

    # ---- commit half ---------------------------------------------------
    commit = []

    # Registers: grow each touched cluster's value list (issue-time
    # invalidation grows it in the interpreted path), land committed
    # values in event order, then set the tail presence bits in one
    # store — the dispatch guard proved every frame fully valid at
    # entry, so the tail mask *is* the whole invalid mask.
    grow = {}
    tail_masks = {}
    used_masks = {}
    for rec in recs:
        dests = rec.plan.dest_pairs
        if rec.kind not in ("alu", "mem") or not dests:
            continue
        if rec.kind == "mem" and not rec.plan.is_load:
            continue
        for cluster, index in dests:
            if index + 1 > grow.get(cluster, 0):
                grow[cluster] = index + 1
            if rec.committed:
                used_masks[cluster] = used_masks.get(cluster, 0) \
                    | (1 << index)
    # A register is invalid at block end iff its last writer is a tail.
    last_landing = {}
    for rec in recs:
        if rec.kind == "alu" or (rec.kind == "mem" and rec.plan.is_load):
            landing = rec.ready if rec.kind == "alu" else rec.apply_c
            for pair in rec.plan.dest_pairs:
                if landing >= last_landing.get(pair, -1):
                    last_landing[pair] = landing
    for (cluster, index), landing in last_landing.items():
        if landing > last_rel:
            tail_masks[cluster] = tail_masks.get(cluster, 0) | (1 << index)
    for cluster in sorted(grow):
        need = grow[cluster]
        commit.append("if len(F%dv) < %d:" % (cluster, need))
        commit.append("    F%dv.extend([0] * (%d - len(F%dv)))"
                      % (cluster, need, cluster))
    for cluster, index, var in reg_commits:
        commit.append("F%dv[%d] = %s" % (cluster, index, var))
    for cluster in sorted(tail_masks):
        commit.append("F%d._invalid = %d" % (cluster, tail_masks[cluster]))
    for cluster in sorted(used_masks):
        commit.append("F%d._used |= %d" % (cluster, used_masks[cluster]))

    # Memory: bulk-advance the counters the emulated submits and
    # services would have bumped, apply committed accesses in service
    # order, then feed the tail submits to the real machinery (their
    # arrival numbers follow the bulk bump, preserving FIFO keys).
    if committed_mems:
        count = len(committed_mems)
        commit.append("M._arrivals += %d" % count)
        commit.append("M._seq += %d" % count)
        commit.append("ST.memory_accesses += %d" % count)
        for rec in committed_mems:
            if not rec.plan.is_load:
                commit.append("MV[%s] = %s" % (rec.var, rec.val_expr))
                commit.append("ME.discard(%s)" % rec.var)
            commit.append("MT[%s] = tid" % rec.var)
    for rec in mem_tails:
        ns["p%d" % rec.rank] = rec.plan
        ns["u%d" % rec.rank] = config.unit_by_id[rec.plan.uid]
        if rec.plan.is_load:
            request = "MemRequest(T, p%d.op, u%d, %s, spec=p%d.spec)" \
                % (rec.rank, rec.rank, rec.var, rec.rank)
        else:
            request = ("MemRequest(T, p%d.op, u%d, %s, store_value=%s, "
                       "spec=p%d.spec)" % (rec.rank, rec.rank, rec.var,
                                           rec.val_expr, rec.rank))
        commit.append("M.submit(%s, C0 + %d)" % (request, rec.submit))

    # Completion-heap tails, pushed in issue order with the seq numbers
    # the interpreted path would have assigned (committed ops consume
    # theirs silently via the final bump).
    pipe_tails = [rec for rec in issue_order
                  if not rec.committed
                  and not (rec.kind == "mem" and rec.submit <= last_rel)]
    if pipe_tails:
        commit.append("q = node._pipe_seq")
        commit.append("P = node._pipe")
        for rec in pipe_tails:
            rank = rec.rank
            ns["p%d" % rank] = rec.plan
            if rec.kind == "alu":
                payload = rec.var
            elif rec.kind == "sink":
                payload = "None"
            elif rec.kind == "mem":
                ns["u%d" % rank] = config.unit_by_id[rec.plan.uid]
                if rec.plan.is_load:
                    payload = "MemRequest(T, p%d.op, u%d, %s, spec=p%d" \
                        ".spec)" % (rank, rank, rec.var, rank)
                else:
                    payload = ("MemRequest(T, p%d.op, u%d, %s, "
                               "store_value=%s, spec=p%d.spec)"
                               % (rank, rank, rec.var, rec.val_expr,
                                  rank))
            else:                        # tail BRU: payload per cond
                control = rec.plan.control
                if control == "brt":
                    payload = "(p%d.taken_payload if %s else " \
                        "p%d.untaken_payload)" % (rank, rec.cond_var,
                                                  rank)
                elif control == "brf":
                    payload = "(p%d.untaken_payload if %s else " \
                        "p%d.taken_payload)" % (rank, rec.cond_var, rank)
                else:                    # br / halt
                    payload = "p%d.taken_payload" % rank
            commit.append("heappush(P, (C0 + %d, %d, q + %d, T, p%d, %s))"
                          % (rec.ready, rec.unit_index, rank + 1, rank,
                             payload))
        commit.append("node._pipe_seq = q + %d" % len(recs))
    else:
        commit.append("node._pipe_seq += %d" % len(recs))

    # Operation-cache LRU touches, one per successful issue check, in
    # issue order (the dispatch guard proved every line resident, so
    # the hit path's move_to_end is the only effect to replay).
    cache_checks = ()
    if config.op_cache is not None:
        steps = tuple((rec.unit_index, (thread_name, rec.ip))
                      for rec in issue_order)
        ns["CSTEPS"] = steps
        seen = []
        for step in steps:
            if step not in seen:
                seen.append(step)
        cache_checks = tuple(seen)
        commit.append("UL = node._units_list")
        commit.append("for cui, ckey in CSTEPS:")
        commit.append("    cc = UL[cui].opcache")
        commit.append("    if cc is not None:")
        commit.append("        cc._lines.move_to_end(ckey)")

    # Batched issue statistics.
    unit_counts = {}
    for rec in recs:
        unit_counts[rec.unit_index] = unit_counts.get(rec.unit_index,
                                                      0) + 1
    commit.append("IC = node._issued_counts")
    for unit_index in sorted(unit_counts):
        commit.append("IC[%d] += %d" % (unit_index,
                                        unit_counts[unit_index]))
    commit.append("TI = node._issued_tids")
    commit.append("TI[tid] = TI.get(tid, 0) + %d" % len(recs))
    grants = sum(len(rec.plan.dest_pairs) for rec in recs
                 if rec.committed and (rec.kind == "alu"
                                       or (rec.kind == "mem"
                                           and rec.plan.is_load)))
    if grants:
        commit.append("node._wb_grants_batch += %d" % grants)

    # Thread end state.
    commit.append("T.ip = %d" % run[-1][0])
    commit.append("T.pending_plans = []")
    if terminal is not None and not terminal.committed:
        commit.append("T.control_inflight = True")
    else:
        if terminal is not None:
            control = terminal.plan.control
            target = terminal.plan.taken_payload[1] \
                if control != "halt" else None
            if control == "halt":
                commit.append("T.halted = True")
            elif control == "br":
                commit.append("T.next_ip = %d" % target)
            elif control == "brt":
                commit.append("T.next_ip = %d if %s else None"
                              % (target, terminal.cond_var))
            else:                        # brf
                commit.append("T.next_ip = None if %s else %d"
                              % (terminal.cond_var, target))
        commit.append("T.advance_ready = True")
        commit.append("node._adv_any = True")
    if config.arbitration == "round-robin":
        commit.append("node.arbiter._next = tid + 1")
    commit.append("return C0 + %d" % last_rel)

    # ---- assemble ------------------------------------------------------
    body = ["FR = T.frames", "tid = T.tid"]
    dest_clusters = set(grow)
    for cluster in sorted(read_clusters | dest_clusters):
        body.append("F%d = FR.get(%d)" % (cluster, cluster))
        if cluster in dest_clusters:
            body.append("if F%d is None:" % cluster)
            body.append("    F%d = T.frame(%d)" % (cluster, cluster))
            body.append("F%dv = F%d._values" % (cluster, cluster))
        else:
            # Read-only cluster: the interpreted path never creates a
            # frame just to read zeros, so neither does the closure.
            body.append("F%dv = F%d._values if F%d is not None else ()"
                        % (cluster, cluster, cluster))
    if committed_mems or mem_tails:
        body.append("M = node.memory")
    if committed_mems:
        body.append("MV = M._values")
        body.append("MVg = MV.get")
        body.append("ME = M._empty")
        body.append("MT = M._last_touch")
        body.append("ST = node.stats")
    inner = (["OV = {}"] if use_ov else []) + entry_lines + compute
    if not inner:
        inner = ["pass"]
    body.append("try:")
    body.extend("    " + line for line in inner)
    body.append("except Exception:")
    body.append("    return None")
    body.extend(commit)
    source = "def _superblock(node, T, C0):\n" \
        + "".join("    %s\n" % line for line in body)
    code = compile(source, "<superblock %s@%d>" % (thread_name, start),
                   "exec")
    exec(code, ns)
    return BlockPlan(start, tuple(ip for ip, __, __ in run),
                     len(run[0][1].plans), len(recs), last_rel,
                     cache_checks, ns["_superblock"], source)
