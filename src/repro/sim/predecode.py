"""Load-time predecoding of wide instruction words into slot plans.

The scan kernel re-derives everything about an operation every cycle it
is pending: opcode spec lookups (a registry dict hit per call of
``Operation.spec``), source-register list construction, branch label
resolution, and unit table lookups.  None of that can change once a
program is loaded on a machine, so the event kernel hoists it all to
load time: each :class:`~repro.isa.instruction.Operation` becomes a
:class:`SlotPlan` carrying the resolved spec, flat operand fetch
offsets, prebuilt control payloads, and the home unit's index into the
node's unit table.  The per-cycle path then touches only plain
attributes, ints, and tuples.

Plans are immutable after decoding and are shared freely between a
node, its snapshots, and restored copies.  They deliberately reference
the original ``Operation`` objects (``plan.op``) so observers, memory
requests, and diagnostics show the exact objects the scan kernel would.
"""

import math
from heapq import heappop, heappush

from ..errors import SimulationError
from ..isa.operations import UnitClass
from .memory import MemRequest

#: Intern table for the small tuples predecoding mints over and over —
#: operand field triples, destination pairs, wait-group entries.  A big
#: program reuses the same few hundred shapes thousands of times;
#: interning keeps one object per shape (less memory, better cache
#: locality in the issue loop).
_INTERN = {}


def _intern(value):
    return _INTERN.setdefault(value, value)


class SlotPlan:
    """Everything the issue path needs about one operation, resolved."""

    __slots__ = ("uid", "unit_index", "op", "spec", "name",
                 "wait_groups", "single_wait", "src_fields",
                 "values_template", "dest_pairs", "dest_triples",
                 "semantics", "exec_fn", "is_memory", "is_load", "is_bru",
                 "control", "taken_payload", "untaken_payload",
                 "fork_name", "bindings_plan")

    def __init__(self, uid, unit_index, op, thread_program):
        spec = op.spec
        self.uid = uid
        self.unit_index = unit_index
        self.op = op
        self.spec = spec
        self.name = op.name
        self.is_memory = spec.is_memory
        self.is_load = spec.is_load
        self.is_bru = spec.unit is UnitClass.BRU
        # Presence-bit wait set: every register the op reads plus every
        # register it writes (WAW interlock), grouped by cluster as an
        # integer bitmask so the hot loop's readiness test is one frame
        # lookup and one AND per cluster.
        groups = {}
        for reg in list(op.source_regs()) + list(op.dests):
            groups[reg.cluster] = groups.get(reg.cluster, 0) | (1 << reg.index)
        self.wait_groups = _intern(tuple(sorted(groups.items())))
        # The overwhelmingly common single-cluster case, unpacked so the
        # issue loop's readiness test needs no iteration at all.
        self.single_wait = self.wait_groups[0] \
            if len(self.wait_groups) == 1 else None
        self.semantics = spec.semantics
        # Operand fetch: immediates are baked into the template, register
        # reads recorded as (position, cluster, index) patches.
        if op.srcs:
            template = []
            fields = []
            for pos, src in enumerate(op.srcs):
                if hasattr(src, "cluster"):
                    template.append(None)
                    fields.append(_intern((pos, src.cluster, src.index)))
                else:
                    template.append(src.value)
            self.values_template = template
            self.src_fields = _intern(tuple(fields))
        else:
            self.values_template = None
            self.src_fields = ()
        self.dest_pairs = _intern(tuple(
            _intern((d.cluster, d.index)) for d in op.dests))
        self.dest_triples = _intern(tuple(
            _intern((d.cluster, d.index, 1 << d.index))
            for d in op.dests))
        # Control: resolve branch targets and fork wiring now, so issue
        # builds payloads from plain tuples.
        self.control = None
        self.taken_payload = None
        self.untaken_payload = None
        self.fork_name = None
        self.bindings_plan = None
        if self.is_bru:
            if spec.is_halt:
                self.control = "halt"
                self.taken_payload = ("halt",)
            elif spec.is_fork:
                self.control = "fork"
                self.fork_name = op.target.name
                plan = []
                for child_reg, value in op.bindings:
                    if hasattr(value, "cluster"):
                        plan.append((child_reg, True,
                                     value.cluster, value.index))
                    else:
                        plan.append((child_reg, False, value.value, None))
                self.bindings_plan = tuple(plan)
            else:
                target = thread_program.resolve(op.target)
                self.control = op.name
                self.taken_payload = ("jump", target)
                self.untaken_payload = ("jump", None)
        # Compute slots (ALU/FPU) get a gather-and-evaluate closure
        # specialized on operand shape; the kernel's issue path calls
        # it instead of the generic template-patching loop.
        self.exec_fn = None
        if not self.is_memory and not self.is_bru:
            self.exec_fn = _make_exec_fn(self)

    def __reduce__(self):
        # semantics and exec_fn are (closures over) lambdas and cannot
        # cross process boundaries; both are pure functions of the
        # remaining state, so rebuild them on unpickle.
        state = {name: getattr(self, name) for name in self.__slots__
                 if name not in ("semantics", "exec_fn")}
        return (_rebuild_slot_plan, (state,))

    def wait_registers(self):
        """The (cluster, index) pairs this op waits on (decoded from the
        per-cluster masks; tests and diagnostics)."""
        pairs = []
        for cluster, mask in self.wait_groups:
            index = 0
            while mask:
                if mask & 1:
                    pairs.append((cluster, index))
                mask >>= 1
                index += 1
        return pairs


def _rebuild_slot_plan(state):
    plan = SlotPlan.__new__(SlotPlan)
    for name, value in state.items():
        setattr(plan, name, value)
    plan.semantics = plan.spec.semantics
    plan.exec_fn = None
    if not plan.is_memory and not plan.is_bru:
        plan.exec_fn = _make_exec_fn(plan)
    return plan


def _make_exec_fn(plan):
    """A specialized closure for a compute plan: read the (hardcoded)
    operands out of the thread's register frames and apply the opcode
    semantics in one call.  Covers the operand shapes the compiler
    actually emits (arity <= 2); returns None for anything else, which
    falls back to the kernel's generic template-patching path.

    The closures read exactly the registers the generic path reads, in
    the same order, and perform no writes — on an ArithmeticError the
    kernel regathers the operands generically for the error report and
    gets identical values.
    """
    sem = plan.semantics
    template = plan.values_template
    if template is None:
        return lambda frames: sem()
    fields = plan.src_fields
    arity = len(template)
    if not fields:
        if arity == 1:
            k0 = template[0]
            return lambda frames: sem(k0)
        if arity == 2:
            k0, k1 = template
            return lambda frames: sem(k0, k1)
        return None
    if arity == 1:
        __, c0, i0 = fields[0]

        def unary(frames):
            frame = frames.get(c0)
            if frame is None:
                return sem(0)
            stored = frame._values
            return sem(stored[i0] if i0 < len(stored) else 0)
        return unary
    if arity != 2:
        return None
    if len(fields) == 2:
        (__, c0, i0), (__, c1, i1) = fields
        if c0 == c1:
            def reg_reg_same(frames):
                frame = frames.get(c0)
                if frame is None:
                    return sem(0, 0)
                stored = frame._values
                n = len(stored)
                return sem(stored[i0] if i0 < n else 0,
                           stored[i1] if i1 < n else 0)
            return reg_reg_same

        def reg_reg(frames):
            frame = frames.get(c0)
            if frame is None:
                a = 0
            else:
                stored = frame._values
                a = stored[i0] if i0 < len(stored) else 0
            frame = frames.get(c1)
            if frame is None:
                b = 0
            else:
                stored = frame._values
                b = stored[i1] if i1 < len(stored) else 0
            return sem(a, b)
        return reg_reg
    pos, c0, i0 = fields[0]
    if pos == 0:
        k1 = template[1]

        def reg_imm(frames):
            frame = frames.get(c0)
            if frame is None:
                return sem(0, k1)
            stored = frame._values
            return sem(stored[i0] if i0 < len(stored) else 0, k1)
        return reg_imm
    k0 = template[0]

    def imm_reg(frames):
        frame = frames.get(c0)
        if frame is None:
            return sem(k0, 0)
        stored = frame._values
        return sem(k0, stored[i0] if i0 < len(stored) else 0)
    return imm_reg


class WordPlan:
    """One predecoded instruction word (plans in slot insertion order,
    exactly the order the scan kernel's ``dict(word.slots)`` yields)."""

    __slots__ = ("plans",)

    def __init__(self, plans):
        self.plans = tuple(plans)


class DecodedThread:
    """The predecoded form of one thread program.

    ``blocks`` maps superblock entry word indexes to compiled
    :class:`BlockPlan` closures (None when fusion was not requested at
    decode time).
    """

    __slots__ = ("name", "words", "blocks")

    def __init__(self, name, words, blocks=None):
        self.name = name
        self.words = tuple(words)
        self.blocks = blocks


def decode_program(program, unit_index, config=None):
    """Predecode every thread of ``program``.

    ``unit_index`` maps unit ids to their position in the node's unit
    table.  Returns a dict of thread name -> :class:`DecodedThread`.
    Assumes the program already passed
    :func:`~repro.sim.loader.validate_program` against the same
    machine (every uid present, no empty words).

    When ``config`` is given and its ``fusion`` toggle is on, each
    thread's straight-line runs are additionally compiled into
    :class:`BlockPlan` superblocks (see :func:`compile_blocks`).
    """
    fuse = config is not None and getattr(config, "fusion", True)
    decoded = {}
    for name, thread_program in program.threads.items():
        words = []
        for index, word in enumerate(thread_program.instructions):
            plans = [SlotPlan(uid, unit_index[uid], op, thread_program)
                     for uid, op in word.slots.items()]
            if not plans:
                raise SimulationError("thread %r word %d is empty"
                                      % (name, index))
            words.append(WordPlan(plans))
        thread = DecodedThread(name, words)
        if fuse:
            thread.blocks = compile_blocks(thread, config)
        decoded[name] = thread
    return decoded


# ---------------------------------------------------------------------------
# Superblock fusion
# ---------------------------------------------------------------------------
#
# A *superblock* is a maximal straight-line run of instruction words —
# no branch-unit slots except an optional terminal one, no
# synchronizing or miss-capable memory operations — whose intra-run
# dependences the static scheduler below can resolve exactly.  Each run
# is compiled, at decode time, into one specialized Python closure (a
# :class:`BlockPlan`) that replays the event kernel's entire
# cycle-by-cycle execution of the run in a single call: operand flow
# through flat SSA locals, per-run cycle cost precomputed, statistics
# and memory effects committed in bulk.
#
# The closure is only entered when the kernel's guards hold (single
# runnable thread, fully connected interconnect, no fault plan, every
# entry presence bit valid, no timed memory event due inside the span,
# operation-cache lines resident); under those guards the event
# kernel's behaviour over the run is a pure function of the entry
# register/memory state, which is what the static schedule exploits.
# Anything the schedule cannot prove (same-address memory collisions,
# accesses touching busy/queued/parked addresses, out-of-range
# addresses, arithmetic faults) is checked at run time *before any
# state is mutated*; the closure then returns None and the kernel falls
# back to the interpreted word-by-word path, which reproduces the exact
# cycle-level behaviour — including the exact error, if any.
#
# *Interleaved multithreaded superblocks* (the second half of this
# module) extend the same machinery to a fixed set of N runnable
# threads: the compile-time scheduler below replays the arbiter's
# grant sequence — round-robin rotation or static priority order —
# cycle by cycle over the set, so the fused closure reproduces
# arbitration losses, parking, and cross-thread unit contention
# exactly.  See compile_mt_run().

_MAX_BLOCK_OPS = 512          # codegen size cap per superblock
_MIN_BLOCK_OPS = 2            # fusing smaller runs doesn't pay

_FUSIBLE_BRANCHES = ("br", "brt", "brf", "halt")

# Inline source templates for registry semantics whose Python spelling
# is trivially equivalent to the registry lambda (operations.py).
_INT2_OPS = {"iadd": "+", "isub": "-", "imul": "*", "iand": "&",
             "ior": "|", "ixor": "^", "ishl": "<<", "ishr": ">>"}
_FLT2_OPS = {"fadd": "+", "fsub": "-", "fmul": "*", "fdiv": "/"}
_CMP_OPS = {"ieq": "==", "ine": "!=", "ilt": "<", "ile": "<=",
            "igt": ">", "ige": ">=", "feq": "==", "fne": "!=",
            "flt": "<", "fle": "<=", "fgt": ">", "fge": ">="}


class BlockPlan:
    """One compiled superblock.

    ``fn(node, thread, cycle)`` executes the whole run and returns the
    absolute cycle of its last issue (the kernel's new current cycle),
    or None when a run-time guard failed and the caller must fall back
    to the interpreted path.  ``last_rel`` is the run's span in cycles
    relative to entry; ``n_plans`` the entry word's slot count (the
    dispatch check that the word is fully un-issued); ``cache_checks``
    the (unit index, line key) pairs that must be resident when an
    operation cache is configured.
    """

    __slots__ = ("entry_ip", "word_ips", "n_plans", "n_ops", "last_rel",
                 "cache_checks", "fn", "source")

    def __init__(self, entry_ip, word_ips, n_plans, n_ops, last_rel,
                 cache_checks, fn, source):
        self.entry_ip = entry_ip
        self.word_ips = word_ips
        self.n_plans = n_plans
        self.n_ops = n_ops
        self.last_rel = last_rel
        self.cache_checks = cache_checks
        self.fn = fn
        self.source = source


class _Rec:
    """One operation's slot in the static schedule of a run."""

    __slots__ = ("plan", "ip", "word_pos", "slot_pos", "t", "ready",
                 "unit_index", "kind", "rank", "submit", "apply_c",
                 "arrival", "committed", "var", "val_expr", "cond_var",
                 "k", "followed", "br_target", "assume_taken")


def _entry_points(words):
    """Superblock entry word indexes: word 0, every branch target, and
    the word after every control word."""
    entries = {0}
    for ip, word in enumerate(words):
        for plan in word.plans:
            if plan.is_bru:
                entries.add(ip + 1)
                if plan.control in ("br", "brt", "brf"):
                    target = plan.taken_payload[1]
                    if target is not None:
                        entries.add(target)
    return entries


def _word_fusible(word, mem_ok):
    """Whether a word can live inside a run; returns (ok, terminal_bru).
    A fusible word holds no control slot except possibly one plain
    branch/halt (which ends the run), and no memory operation other
    than non-synchronizing ld/st on a miss-free memory model."""
    bru = None
    for plan in word.plans:
        if plan.is_bru:
            if plan.control not in _FUSIBLE_BRANCHES or bru is not None:
                return False, None
            bru = plan
        elif plan.is_memory:
            if not mem_ok or plan.name not in ("ld", "st"):
                return False, None
    return True, bru


def _build_run(words, start, mem_ok):
    """The maximal fusible run starting at ``start``, as a list of
    (ip, word, terminal_bru) triples — or None when the run is too
    small to pay for fusing."""
    run = []
    n_ops = 0
    ip = start
    while ip < len(words):
        ok, bru = _word_fusible(words[ip], mem_ok)
        if not ok or n_ops + len(words[ip].plans) > _MAX_BLOCK_OPS:
            break
        run.append((ip, words[ip], bru))
        n_ops += len(words[ip].plans)
        ip += 1
        if bru is not None:
            break
    if not run or n_ops < _MIN_BLOCK_OPS:
        return None
    return run


#: A run is compiled only once the kernel has reached its entry this
#: many times with every dispatch guard holding.  Compiling a block
#: costs a few hundred microseconds per operation (codegen + CPython
#: ``compile``) while a dispatch saves a few microseconds per
#: operation, so break-even sits at a few dozen dispatches; entries
#: reached once (straight-line cold code, "ideal"-mode megablocks) or
#: only a handful of times never pay the compile, while hot loop
#: headers cross the threshold early in their trip count.
_WARMUP_DISPATCHES = 16


class BlockTable:
    """Lazy superblock compiler for one decoded thread.

    Entry points are discovered eagerly (cheap), but a run is scheduled
    and compiled only once the kernel has dispatched at its entry
    :data:`_WARMUP_DISPATCHES` times — most entries are never reached
    with the machine in a fusible state (or reached exactly once), and
    eager compilation was measurably slower than interpreting short
    benchmarks outright.  Compilation is deterministic, so the cache
    can be shared freely between a node, its snapshots, and restored
    copies; pickling drops the cache and recompiles on demand (closures
    do not cross process boundaries).
    """

    __slots__ = ("_decoded", "_config", "_entries", "_mem_ok", "_cache",
                 "_heat")

    def __init__(self, decoded, config):
        # Nothing here may touch ``decoded``: it is mid-reconstruction
        # when a pickle rebuilds the decoded-thread <-> block-table
        # cycle.  Entry discovery happens on first dispatch instead.
        self._decoded = decoded
        self._config = config
        self._mem_ok = None
        self._entries = None
        self._cache = {}
        self._heat = {}

    def get(self, ip):
        block = self._cache.get(ip, False)
        if block is not False:
            return block
        if self._entries is None:
            self._mem_ok = self._config.memory.miss_rate == 0.0
            self._entries = _entry_points(self._decoded.words)
        if ip not in self._entries:
            self._cache[ip] = None
            return None
        heat = self._heat.get(ip, 0) + 1
        if heat < _WARMUP_DISPATCHES:
            self._heat[ip] = heat
            return None
        block = None
        words = self._decoded.words
        if ip < len(words):
            run = _build_run(words, ip, self._mem_ok)
            if run is not None:
                block = _compile_run(self._decoded.name, ip, run,
                                     self._config)
        self._cache[ip] = block
        return block

    def compiled_blocks(self):
        """The blocks compiled so far (diagnostics and tests)."""
        return {ip: block for ip, block in self._cache.items()
                if block is not None}

    def quarantine(self, ip):
        """Bar the entry at ``ip`` from ever dispatching again.

        Pinning the cache slot to None makes the quarantine free on the
        hot path (the same lookup that would have found the block finds
        the tombstone) and — because snapshots share the table — it
        survives the sanitizer's rollback/restore cycle without being
        re-applied.  Pickling still drops it along with the rest of the
        cache: a replayed bundle re-detects and re-quarantines, which
        is exactly what a reproducer is for.
        """
        self._cache[ip] = None
        self._heat.pop(ip, None)

    def __deepcopy__(self, memo):
        # Compilation is deterministic and closures never carry run
        # state, so snapshots share the table with the live node.
        return self

    def __reduce__(self):
        return (BlockTable, (self._decoded, self._config))


def compile_blocks(decoded, config):
    """A lazy :class:`BlockTable` over every fusible run of
    ``decoded``, keyed by entry word index."""
    return BlockTable(decoded, config)


def _int_src(src):
    """Source text for ``int(value)`` of an (expr, is_int) operand."""
    expr, is_int = src
    return expr if is_int else "int(%s)" % expr


def _const_expr(value, ns, counter):
    """Source text for a baked immediate, as an (expr, is_int) pair.
    Values whose repr does not round-trip exactly are bound into the
    closure's namespace instead of inlined."""
    if type(value) is int:
        return repr(value), True
    if type(value) is float and math.isfinite(value):
        return repr(value), False
    name = "k%d" % counter[0]
    counter[0] += 1
    ns[name] = value
    return name, False


def _semantics_expr(plan, srcs, ns, rank):
    """Python source computing ``plan.spec.semantics(*values)``.  Ops
    with no trivially equivalent inline spelling bind the registry
    callable itself, so the closure can never drift from operations.py.
    """
    name = plan.name
    sym = _INT2_OPS.get(name)
    if sym is not None:
        return "(%s %s %s)" % (_int_src(srcs[0]), sym, _int_src(srcs[1]))
    sym = _CMP_OPS.get(name)
    if sym is not None:                  # _bool compares raw operands
        return "(1 if %s %s %s else 0)" % (srcs[0][0], sym, srcs[1][0])
    sym = _FLT2_OPS.get(name)
    if sym is not None:
        return "(float(%s) %s float(%s))" % (srcs[0][0], sym, srcs[1][0])
    if name in ("imov", "fmov"):
        return srcs[0][0]
    if name == "ineg":
        return "(-%s)" % _int_src(srcs[0])
    if name == "inot":
        return "(~%s)" % _int_src(srcs[0])
    if name in ("imin", "imax"):
        return "%s(%s, %s)" % (name[1:], _int_src(srcs[0]),
                               _int_src(srcs[1]))
    if name == "fneg":
        return "(-float(%s))" % srcs[0][0]
    if name == "fabs":
        return "abs(float(%s))" % srcs[0][0]
    if name in ("fmin", "fmax"):
        return "%s(float(%s), float(%s))" % (name[1:], srcs[0][0],
                                             srcs[1][0])
    if name == "itof":
        return "float(%s)" % srcs[0][0]
    if name == "ftoi":
        return "int(%s)" % srcs[0][0]
    if name == "fsqrt":
        ns["_sqrt"] = math.sqrt
        return "_sqrt(float(%s))" % srcs[0][0]
    key = "s%d" % rank                   # idiv, imod, future opcodes
    ns[key] = plan.spec.semantics
    return "%s(%s)" % (key, ", ".join(expr for expr, __ in srcs))


def _compile_run(thread_name, start, run, config):
    """Statically schedule one run and compile it to a closure.

    The schedule replays the kernel's issue dynamics exactly: all slots
    of a word activate together when the previous word's last slot has
    issued; each cycle the pending slots are scanned in slot order and
    issue once their wait registers are all valid; issuing makes the
    destinations invalid until the result lands (ALU: end of the unit
    pipeline; load: the memory apply cycle).  ``valid_at`` maps
    registers to the block-relative cycle their presence bit is
    (re)set — absent means valid since entry, which the dispatch guard
    establishes.
    """
    unit_by_id = config.unit_by_id
    hit_latency = config.memory.hit_latency

    valid_at = {}
    recs = []
    t_word = 0
    terminal = None
    for word_pos, (ip, word, bru) in enumerate(run):
        pending = []
        for slot_pos, plan in enumerate(word.plans):
            rec = _Rec()
            rec.plan = plan
            rec.ip = ip
            rec.word_pos = word_pos
            rec.slot_pos = slot_pos
            rec.unit_index = plan.unit_index
            rec.val_expr = None
            rec.cond_var = None
            rec.var = None
            pending.append(rec)
            recs.append(rec)
        t = t_word
        while pending:
            remaining = []
            next_t = None
            for rec in pending:
                plan = rec.plan
                wait = t
                for pair in plan.wait_registers():
                    when = valid_at.get(pair, 0)
                    if when > wait:
                        wait = when
                if wait <= t:
                    rec.t = t
                    rec.ready = t + unit_by_id[plan.uid].latency
                    if plan.is_memory:
                        rec.kind = "mem"
                        rec.submit = rec.ready
                        rec.apply_c = rec.ready + hit_latency - 1
                        if plan.is_load:
                            for pair in plan.dest_pairs:
                                valid_at[pair] = rec.apply_c
                    elif plan.is_bru:
                        rec.kind = "bru"
                        terminal = rec
                    elif plan.dest_pairs:
                        rec.kind = "alu"
                        for pair in plan.dest_pairs:
                            valid_at[pair] = rec.ready
                    else:
                        rec.kind = "sink"
                else:
                    remaining.append(rec)
                    if next_t is None or wait < next_t:
                        next_t = wait
            pending = remaining
            if pending:
                # Presence bits only ever *become* valid at scheduled
                # cycles, so jumping to the earliest one is exact.
                t = next_t
        t_word = max(r.t for r in recs[-len(word.plans):]) + 1
    last_rel = max(r.t for r in recs)

    # Issue order: one word active at a time, pending list scanned in
    # slot order — so (cycle, word, slot) is the kernel's exact order.
    issue_order = sorted(recs, key=_issue_key)
    for rank, rec in enumerate(issue_order):
        rec.rank = rank

    # Classify each op against the block's last issue cycle: fully
    # committed inside the block, or a tail the real machinery finishes.
    for rec in recs:
        if rec.kind == "mem":
            rec.committed = rec.apply_c <= last_rel
        else:
            rec.committed = rec.ready <= last_rel

    # Memory arrival order: submits are pipe pops, ordered
    # (cycle, unit index, seq) — seq follows issue rank.
    arriving = sorted((r for r in recs
                       if r.kind == "mem" and r.submit <= last_rel),
                      key=_arrival_key)
    for arrival, rec in enumerate(arriving):
        rec.arrival = arrival

    # Same-address service windows overlapping a *committed* access
    # would queue — which the bulk counters do not model — so those
    # pairs get a run-time distinctness check.  Pairs of tail submits
    # go through the real submit path and need none.
    pairs = []
    for i, first in enumerate(arriving):
        if not first.committed:
            continue
        for second in arriving[i + 1:]:
            if second.submit <= first.apply_c:
                pairs.append((first, second))
            else:
                break
    return _emit_block(thread_name, start, run, config, recs, issue_order,
                       arriving, pairs, terminal, last_rel)


def _issue_key(rec):
    return (rec.t, rec.word_pos, rec.slot_pos)


def _arrival_key(rec):
    return (rec.submit, rec.unit_index, rec.rank)


def _emit_block(thread_name, start, run, config, recs, issue_order,
                arriving, pairs, terminal, last_rel):
    """Generate, compile, and wrap the closure for one scheduled run.

    The closure body has two halves.  The *compute* half (inside a
    ``try``) evaluates every operation in the exact event order of the
    real kernel — commits at phase 1/2 before issues at phase 5 of the
    same cycle — through single-assignment locals, and performs every
    run-time guard (address range, same-address service overlap); it
    mutates nothing, so any exception or failed guard falls back to the
    interpreted path with the machine state untouched.  The *commit*
    half then applies all effects: register file, memory values and
    bulk counters, tail submits and completion-heap entries, batched
    issue statistics, and the thread's end state.
    """
    mem_size = config.memory_size
    ns = {"heappush": heappush, "MemRequest": MemRequest}
    counter = [0]

    committed_mems = [r for r in arriving if r.committed]
    mem_tails = [r for r in arriving if not r.committed]
    use_ov = any(r.plan.is_load for r in committed_mems) \
        and any(not r.plan.is_load for r in committed_mems)

    # Event timeline: phase 1 = ALU results land (pipe pop order:
    # unit index then seq), phase 2 = memory applies (arrival order),
    # phase 5 = issues (scan order).  Ranks only compare within one
    # (cycle, phase), so the mixed int/tuple keys never meet.
    events = []
    for rec in recs:
        events.append((rec.t, 5, rec.rank, rec))
        if rec.committed:
            if rec.kind == "alu":
                events.append((rec.ready, 1, (rec.unit_index, rec.rank),
                               rec))
            elif rec.kind == "mem":
                events.append((rec.apply_c, 2, rec.arrival, rec))
    events.sort(key=lambda event: event[:3])

    compute = []
    entry_lines = []
    regvar = {}          # (cluster, index) -> current SSA local
    entry_reads = {}
    read_clusters = set()
    reg_commits = []     # (cluster, index, local) in landing order
    addr_done = set()

    def reg_read(cluster, index):
        var = regvar.get((cluster, index))
        if var is not None:
            return var
        var = entry_reads.get((cluster, index))
        if var is None:
            var = "e%d_%d" % (cluster, index)
            entry_reads[(cluster, index)] = var
            read_clusters.add(cluster)
            entry_lines.append(
                "%s = F%dv[%d] if %d < len(F%dv) else 0"
                % (var, cluster, index, index, cluster))
        return var

    def srcs_of(plan):
        out = []
        if plan.values_template is None:
            return out
        fields = {pos: (cluster, index)
                  for pos, cluster, index in plan.src_fields}
        for pos, baked in enumerate(plan.values_template):
            pair = fields.get(pos)
            if pair is not None:
                out.append((reg_read(*pair), False))
            else:
                out.append(_const_expr(baked, ns, counter))
        return out

    for __, phase, __, rec in events:
        plan = rec.plan
        rank = rec.rank
        if phase == 5:
            if rec.kind == "alu":
                rec.var = "v%d" % rank
                compute.append("%s = %s" % (
                    rec.var, _semantics_expr(plan, srcs_of(plan), ns,
                                             rank)))
            elif rec.kind == "mem":
                srcs = srcs_of(plan)
                if plan.is_load:
                    base, offset = srcs[0], srcs[1]
                else:
                    rec.val_expr = srcs[0][0]
                    base, offset = srcs[1], srcs[2]
                rec.var = "a%d" % rank
                compute.append("%s = %s + %s" % (
                    rec.var, _int_src(base), _int_src(offset)))
                if rec.submit <= last_rel:
                    compute.append("if not 0 <= %s < %d:"
                                   % (rec.var, mem_size))
                    compute.append("    return None")
                    if rec.committed:
                        # The span clamp proves no *timed* memory event
                        # falls inside the block, but addresses may
                        # still be mid-service, queued, or holding
                        # parked sync waiters; a committed access to
                        # one of those would queue (load/store) or
                        # reactivate a waiter (store), which the bulk
                        # counters do not model.  MH is 0 on a fully
                        # quiet memory system, making the guard free in
                        # the common case.
                        guard = "MQg(%s) or %s in MB" % (rec.var, rec.var)
                        if not plan.is_load:
                            guard += " or %s in MP" % rec.var
                        compute.append("if MH and (%s):" % guard)
                        compute.append("    return None")
                    addr_done.add(rank)
                    for first, second in pairs:
                        if rec in (first, second):
                            other = second if rec is first else first
                            if other.rank in addr_done:
                                compute.append(
                                    "if %s == %s:" % (first.var,
                                                      second.var))
                                compute.append("    return None")
            elif rec.kind == "bru":
                srcs = srcs_of(plan)
                if plan.control in ("brt", "brf"):
                    rec.cond_var = srcs[0][0]
            # sink: semantics is ``lambda a: None`` — nothing to do
        elif phase == 1:
            for pair in plan.dest_pairs:
                regvar[pair] = rec.var
                reg_commits.append((pair[0], pair[1], rec.var))
        else:                            # phase 2: committed mem apply
            if plan.is_load:
                value = "v%d" % rank
                rec.val_expr = value
                if use_ov:
                    compute.append(
                        "%s = OV[%s] if %s in OV else MVg(%s, 0)"
                        % (value, rec.var, rec.var, rec.var))
                else:
                    compute.append("%s = MVg(%s, 0)" % (value, rec.var))
                for pair in plan.dest_pairs:
                    regvar[pair] = value
                    reg_commits.append((pair[0], pair[1], value))
            elif use_ov:
                compute.append("OV[%s] = %s" % (rec.var, rec.val_expr))

    # ---- commit half ---------------------------------------------------
    commit = []

    # Registers: grow each touched cluster's value list (issue-time
    # invalidation grows it in the interpreted path), land committed
    # values in event order, then set the tail presence bits in one
    # store — the dispatch guard proved every frame fully valid at
    # entry, so the tail mask *is* the whole invalid mask.
    grow = {}
    tail_masks = {}
    used_masks = {}
    for rec in recs:
        dests = rec.plan.dest_pairs
        if rec.kind not in ("alu", "mem") or not dests:
            continue
        if rec.kind == "mem" and not rec.plan.is_load:
            continue
        for cluster, index in dests:
            if index + 1 > grow.get(cluster, 0):
                grow[cluster] = index + 1
            if rec.committed:
                used_masks[cluster] = used_masks.get(cluster, 0) \
                    | (1 << index)
    # A register is invalid at block end iff its last writer is a tail.
    last_landing = {}
    for rec in recs:
        if rec.kind == "alu" or (rec.kind == "mem" and rec.plan.is_load):
            landing = rec.ready if rec.kind == "alu" else rec.apply_c
            for pair in rec.plan.dest_pairs:
                if landing >= last_landing.get(pair, -1):
                    last_landing[pair] = landing
    for (cluster, index), landing in last_landing.items():
        if landing > last_rel:
            tail_masks[cluster] = tail_masks.get(cluster, 0) | (1 << index)
    for cluster in sorted(grow):
        need = grow[cluster]
        commit.append("if len(F%dv) < %d:" % (cluster, need))
        commit.append("    F%dv.extend([0] * (%d - len(F%dv)))"
                      % (cluster, need, cluster))
    for cluster, index, var in reg_commits:
        commit.append("F%dv[%d] = %s" % (cluster, index, var))
    for cluster in sorted(tail_masks):
        commit.append("F%d._invalid = %d" % (cluster, tail_masks[cluster]))
    for cluster in sorted(used_masks):
        commit.append("F%d._used |= %d" % (cluster, used_masks[cluster]))

    # Memory: bulk-advance the counters the emulated submits and
    # services would have bumped, apply committed accesses in service
    # order, then feed the tail submits to the real machinery (their
    # arrival numbers follow the bulk bump, preserving FIFO keys).
    if committed_mems:
        count = len(committed_mems)
        commit.append("M._arrivals += %d" % count)
        commit.append("M._seq += %d" % count)
        commit.append("ST.memory_accesses += %d" % count)
        for rec in committed_mems:
            if not rec.plan.is_load:
                commit.append("MV[%s] = %s" % (rec.var, rec.val_expr))
                commit.append("ME.discard(%s)" % rec.var)
            commit.append("MT[%s] = tid" % rec.var)
    for rec in mem_tails:
        ns["p%d" % rec.rank] = rec.plan
        ns["u%d" % rec.rank] = config.unit_by_id[rec.plan.uid]
        if rec.plan.is_load:
            request = "MemRequest(T, p%d.op, u%d, %s, spec=p%d.spec)" \
                % (rec.rank, rec.rank, rec.var, rec.rank)
        else:
            request = ("MemRequest(T, p%d.op, u%d, %s, store_value=%s, "
                       "spec=p%d.spec)" % (rec.rank, rec.rank, rec.var,
                                           rec.val_expr, rec.rank))
        commit.append("M.submit(%s, C0 + %d)" % (request, rec.submit))

    # Completion-heap tails, pushed in issue order with the seq numbers
    # the interpreted path would have assigned (committed ops consume
    # theirs silently via the final bump).
    pipe_tails = [rec for rec in issue_order
                  if not rec.committed
                  and not (rec.kind == "mem" and rec.submit <= last_rel)]
    if pipe_tails:
        commit.append("q = node._pipe_seq")
        commit.append("P = node._pipe")
        for rec in pipe_tails:
            rank = rec.rank
            ns["p%d" % rank] = rec.plan
            if rec.kind == "alu":
                payload = rec.var
            elif rec.kind == "sink":
                payload = "None"
            elif rec.kind == "mem":
                ns["u%d" % rank] = config.unit_by_id[rec.plan.uid]
                if rec.plan.is_load:
                    payload = "MemRequest(T, p%d.op, u%d, %s, spec=p%d" \
                        ".spec)" % (rank, rank, rec.var, rank)
                else:
                    payload = ("MemRequest(T, p%d.op, u%d, %s, "
                               "store_value=%s, spec=p%d.spec)"
                               % (rank, rank, rec.var, rec.val_expr,
                                  rank))
            else:                        # tail BRU: payload per cond
                control = rec.plan.control
                if control == "brt":
                    payload = "(p%d.taken_payload if %s else " \
                        "p%d.untaken_payload)" % (rank, rec.cond_var,
                                                  rank)
                elif control == "brf":
                    payload = "(p%d.untaken_payload if %s else " \
                        "p%d.taken_payload)" % (rank, rec.cond_var, rank)
                else:                    # br / halt
                    payload = "p%d.taken_payload" % rank
            commit.append("heappush(P, (C0 + %d, %d, q + %d, T, p%d, %s))"
                          % (rec.ready, rec.unit_index, rank + 1, rank,
                             payload))
        commit.append("node._pipe_seq = q + %d" % len(recs))
    else:
        commit.append("node._pipe_seq += %d" % len(recs))

    # Operation-cache LRU touches, one per successful issue check, in
    # issue order (the dispatch guard proved every line resident, so
    # the hit path's move_to_end is the only effect to replay).
    cache_checks = ()
    if config.op_cache is not None:
        steps = tuple((rec.unit_index, (thread_name, rec.ip))
                      for rec in issue_order)
        ns["CSTEPS"] = steps
        seen = []
        for step in steps:
            if step not in seen:
                seen.append(step)
        cache_checks = tuple(seen)
        commit.append("UL = node._units_list")
        commit.append("for cui, ckey in CSTEPS:")
        commit.append("    cc = UL[cui].opcache")
        commit.append("    if cc is not None:")
        commit.append("        cc._lines.move_to_end(ckey)")

    # Batched issue statistics.
    unit_counts = {}
    for rec in recs:
        unit_counts[rec.unit_index] = unit_counts.get(rec.unit_index,
                                                      0) + 1
    commit.append("IC = node._issued_counts")
    for unit_index in sorted(unit_counts):
        commit.append("IC[%d] += %d" % (unit_index,
                                        unit_counts[unit_index]))
    commit.append("TI = node._issued_tids")
    commit.append("TI[tid] = TI.get(tid, 0) + %d" % len(recs))
    grants = sum(len(rec.plan.dest_pairs) for rec in recs
                 if rec.committed and (rec.kind == "alu"
                                       or (rec.kind == "mem"
                                           and rec.plan.is_load)))
    if grants:
        commit.append("node._wb_grants_batch += %d" % grants)

    # Thread end state.
    commit.append("T.ip = %d" % run[-1][0])
    commit.append("T.pending_plans = []")
    if terminal is not None and not terminal.committed:
        commit.append("T.control_inflight = True")
    else:
        if terminal is not None:
            control = terminal.plan.control
            target = terminal.plan.taken_payload[1] \
                if control != "halt" else None
            if control == "halt":
                commit.append("T.halted = True")
            elif control == "br":
                commit.append("T.next_ip = %d" % target)
            elif control == "brt":
                commit.append("T.next_ip = %d if %s else None"
                              % (target, terminal.cond_var))
            else:                        # brf
                commit.append("T.next_ip = None if %s else %d"
                              % (terminal.cond_var, target))
        commit.append("T.advance_ready = True")
        commit.append("node._adv_any = True")
    if config.arbitration == "round-robin":
        commit.append("node.arbiter._next = tid + 1")
    commit.append("return C0 + %d" % last_rel)

    # ---- assemble ------------------------------------------------------
    body = ["FR = T.frames", "tid = T.tid"]
    dest_clusters = set(grow)
    for cluster in sorted(read_clusters | dest_clusters):
        body.append("F%d = FR.get(%d)" % (cluster, cluster))
        if cluster in dest_clusters:
            body.append("if F%d is None:" % cluster)
            body.append("    F%d = T.frame(%d)" % (cluster, cluster))
            body.append("F%dv = F%d._values" % (cluster, cluster))
        else:
            # Read-only cluster: the interpreted path never creates a
            # frame just to read zeros, so neither does the closure.
            body.append("F%dv = F%d._values if F%d is not None else ()"
                        % (cluster, cluster, cluster))
    if committed_mems or mem_tails:
        body.append("M = node.memory")
    if committed_mems:
        body.append("MV = M._values")
        body.append("MVg = MV.get")
        body.append("ME = M._empty")
        body.append("MT = M._last_touch")
        body.append("MB = M._busy")
        body.append("MQg = M._queues.get")
        body.append("MP = M._parked")
        body.append("MH = 1 if (MB or M._queues or MP) else 0")
        body.append("ST = node.stats")
    inner = (["OV = {}"] if use_ov else []) + entry_lines + compute
    if not inner:
        inner = ["pass"]
    body.append("try:")
    body.extend("    " + line for line in inner)
    body.append("except Exception:")
    body.append("    return None")
    body.extend(commit)
    source = "def _superblock(node, T, C0):\n" \
        + "".join("    %s\n" % line for line in body)
    code = compile(source, "<superblock %s@%d>" % (thread_name, start),
                   "exec")
    exec(code, ns)
    return BlockPlan(start, tuple(ip for ip, __, __ in run),
                     len(run[0][1].plans), len(recs), last_rel,
                     cache_checks, ns["_superblock"], source)


# ---------------------------------------------------------------------------
# Interleaved multithreaded superblocks
# ---------------------------------------------------------------------------
#
# When several threads are runnable at once the single-thread machinery
# above never fires — yet the kernel's behaviour over the next cycles
# is still fully determined whenever (a) the runnable set is fixed for
# the span (pipeline, wake, writeback, and spawn queues all empty, so
# nothing can spawn, retire, or unpark a thread the schedule does not
# itself model), (b) every scheduled thread sits at a fully un-issued
# word, and (c) no timed memory event lands inside the span.  Under
# those guards the arbiter's scan order is a pure function of the
# relative cycle, so :func:`_simulate_mt` replays the whole machine —
# all N threads, cross-thread unit contention, arbitration losses,
# parking and unparking — cycle by cycle at compile time, and
# :func:`_emit_mt_block` bakes the interleaving into one closure.
#
# A compiled interleaving is keyed by its *alignment*: the tuple of
# (program name, ip) per runnable thread, in arbiter scan order, with
# None placeholders for parked threads (they stay parked for the whole
# span — unparking needs a landing, and every in-span landing belongs
# to a scheduled thread — but they still occupy scan positions in the
# round-robin rotation).  The event kernel keeps a per-node table of
# compiled alignments: hot inner-loop alignments recur thousands of
# times, cold ones never cross the dispatch-count threshold.
#
# The span de-fuses at the earliest boundary the static schedule
# cannot see past: one cycle before the first branch resolution (which
# could spawn, halt, or redirect a thread), or the cycle a thread
# exhausts its fusible run.  Activity after the span's last issue,
# landing, or submit is trimmed — the closure returns the last active
# cycle, and the quiet tail (if any) is re-run by the interpreted
# kernel, whose progress/fast-forward bookkeeping must see it.  Every
# loose end — in-flight pipeline entries, partially issued words, park
# flags, the arbiter resume point — is materialized exactly as the
# interpreted kernel would have left it.

_MIN_MT_OPS = 6              # interleavings smaller than this don't pay
_MT_BIAS_SAMPLES = 8         # resolutions needed before a conditional
                             # branch may be followed through a span
_MT_BIAS_P = 0.9375          # observed direction rate needed to follow
_MT_CONF_MIN = 0.5           # cumulative follow-probability floor: stop
                             # extending a span once the chance that all
                             # its followed branches go as scheduled
                             # drops below this
_MT_SIM_CAP = 2048           # compile-time replay safety valve (cycles)


class MTBlockPlan:
    """One compiled interleaved superblock for a fixed alignment.

    ``fn(node, threads, cycle)`` executes the interleaving over the
    given thread list (arbiter scan order, parked threads included) and
    returns the absolute cycle of the span's last activity, or None
    when a run-time guard failed and the caller must fall back to the
    interpreted path.  ``last_rel`` is that cycle relative to entry.
    """

    __slots__ = ("n_slots", "n_ops", "last_rel", "fn", "source",
                 "emit_args", "hits")

    def __init__(self, n_slots, n_ops, last_rel, fn, source):
        self.n_slots = n_slots
        self.n_ops = n_ops
        self.last_rel = last_rel
        self.fn = fn
        self.source = source
        self.emit_args = None  # inputs for promote() codegen
        self.hits = 0          # successful dispatches since build

    def promote(self):
        """Swap the table-driven executor for a generated-and-compiled
        closure of the same schedule.  The closure runs several times
        faster per dispatch but costs milliseconds of ``compile()`` to
        build, so the kernel only promotes alignments whose dispatch
        count has proven the spend back."""
        if self.emit_args is None:
            return
        compiled = _emit_mt_block(*self.emit_args)
        self.fn = compiled.fn
        self.source = compiled.source
        self.emit_args = None


class _MTState:
    """Compile-time replica of one scheduled thread's issue state."""

    __slots__ = ("k", "words", "mem_ok", "cap", "ops", "cur_ip",
                 "pending", "valid_at", "parked", "control_inflight",
                 "advance_ready", "next_ip", "resolve_rec", "done",
                 "fresh", "unparks")


def compile_mt_run(slots, config, arbitration, horizon, bias):
    """Compile one interleaved superblock.

    ``slots`` is the alignment in arbiter scan order: per position
    either None (a parked thread holding its scan slot) or a
    ``(decoded_thread, ip)`` pair for a runnable thread at a fully
    un-issued word.  For round-robin the caller passes ``slots``
    pre-rotated to the scan head, so relative cycle j scans from
    position ``j % N`` — the schedule is therefore shared by every
    entry state whose rotated alignment matches, regardless of tids.
    ``horizon`` caps the span length in cycles; the event kernel
    shrinks it adaptively for alignments whose long schedules keep
    failing their run-time guards.  Returns an :class:`MTBlockPlan`,
    or None when the alignment cannot be fused at this horizon.
    """
    mem_ok = config.memory.miss_rate == 0.0
    rr = arbitration == "round-robin"
    states = _mt_entry_states(slots, mem_ok)
    if states is None:
        return None
    sim = _simulate_mt(states, config, rr, horizon, True, bias)
    if sim is None:
        return None
    recs, arriving, last_rel, losses, best_cut = sim
    if best_cut is not None:
        # The horizon cut the span mid-word, which would strand the
        # threads at a here-to-fore unseen alignment: re-simulate up to
        # the last *dispatchable* point instead (all scheduled threads
        # at fresh full words, pipeline and memory drained), so the
        # span ends exactly where the next fused dispatch can pick up
        # and the alignment key set stays small and recurrent.
        snapped = _mt_entry_states(slots, mem_ok)
        sim = _simulate_mt(snapped, config, rr, best_cut, False, bias)
        if sim is not None and len(sim[0]) >= _MIN_MT_OPS:
            states = snapped
            recs, arriving, last_rel, losses, __ = sim
    if len(recs) < _MIN_MT_OPS:
        return None
    block = _build_mt_run(slots, states, config, rr, recs, arriving,
                          last_rel, losses)
    block.emit_args = (slots, states, config, rr, recs, arriving,
                       last_rel, losses)
    return block


def _mt_entry_states(slots, mem_ok):
    """Build the per-slot simulation states for one alignment, or None
    when a scheduled entry word cannot be fused at all."""
    nsched = sum(1 for slot in slots if slot is not None)
    cap = max(_MIN_MT_OPS, _MAX_BLOCK_OPS // nsched)
    states = []
    for k, slot in enumerate(slots):
        if slot is None:
            states.append(None)
            continue
        decoded, ip = slot[0], slot[1]
        mask = slot[2] if len(slot) > 2 else None
        state = _MTState()
        state.k = k
        state.words = decoded.words
        state.mem_ok = mem_ok
        state.cap = cap
        state.ops = 0
        state.cur_ip = ip
        state.pending = None
        state.valid_at = {}
        state.parked = False
        state.control_inflight = False
        state.advance_ready = False
        state.next_ip = None
        state.resolve_rec = None
        state.done = False
        state.fresh = True
        state.unparks = []
        if mask is None:
            if not _mt_fetch(state, ip):
                return None
        elif not _mt_fetch_partial(state, ip, mask):
            return None
        states.append(state)
    return states


def _mt_fetch_partial(state, target, mask):
    """Enter a partially issued word: mint records only for the plans
    still pending — ``mask`` is a bitmask over the word's slot
    positions.  Already-issued slots don't disqualify the remainder
    even when unfusible themselves: the dispatch gate requires a
    drained pipeline, so their effects have fully landed.  The word's
    op-budget charge is just the remainder."""
    words = state.words
    if target >= len(words):
        return False
    remaining = [(pos, plan)
                 for pos, plan in enumerate(words[target].plans)
                 if mask >> pos & 1]
    if not remaining or state.ops + len(remaining) > state.cap:
        return False
    bru = None
    for __, plan in remaining:
        if plan.is_bru:
            if plan.control not in _FUSIBLE_BRANCHES \
                    or bru is not None:
                return False
            bru = plan
        elif plan.is_memory:
            if not state.mem_ok or plan.name not in ("ld", "st"):
                return False
    state.cur_ip = target
    state.ops += len(remaining)
    pending = []
    for slot_pos, plan in remaining:
        rec = _Rec()
        rec.plan = plan
        rec.ip = target
        rec.k = state.k
        rec.word_pos = 0
        rec.slot_pos = slot_pos
        rec.unit_index = plan.unit_index
        rec.var = None
        rec.val_expr = None
        rec.cond_var = None
        rec.followed = False
        rec.br_target = None
        rec.assume_taken = False
        pending.append(rec)
    state.pending = pending
    state.fresh = True
    return True


def _mt_fetchable(state, target):
    """Whether ``target`` can join the span: in range (falling off the
    end is the interpreter's error to raise), within the per-thread op
    budget, and fusible."""
    words = state.words
    if target >= len(words):
        return False
    word = words[target]
    if state.ops + len(word.plans) > state.cap:
        return False
    ok, __ = _word_fusible(word, state.mem_ok)
    return ok


def _mt_fetch(state, target):
    """Enter ``target``: mint one schedule record per slot (the
    analogue of the kernel's ``pending_plans = list(word.plans)``)."""
    if not _mt_fetchable(state, target):
        return False
    word = state.words[target]
    state.cur_ip = target
    state.ops += len(word.plans)
    pending = []
    for slot_pos, plan in enumerate(word.plans):
        rec = _Rec()
        rec.plan = plan
        rec.ip = target
        rec.k = state.k
        rec.word_pos = 0
        rec.slot_pos = slot_pos
        rec.unit_index = plan.unit_index
        rec.var = None
        rec.val_expr = None
        rec.cond_var = None
        rec.followed = False
        rec.br_target = None
        rec.assume_taken = False
        pending.append(rec)
    state.pending = pending
    state.fresh = True
    return True


def _simulate_mt(states, config, rr, horizon, snap, bias):
    """Replay the event kernel cycle by cycle over one alignment.

    Models exactly the phases that matter inside a span: pipeline pops
    land results and resolve branches (phase 1 — registers are
    thread-private, so every unpark is caused by one of the thread's
    own results), memory applies land loads (phase 2), flagged threads
    advance into their next word (phase 4), and the issue scan walks
    the alignment in arbiter order (phase 5): pending slots in slot
    order, first claim per unit table index wins, losers count an
    arbitration loss and pin their thread awake, and a thread with
    nothing actionable and no side effects parks.

    Branches are *followed*: an unconditional ``br`` jumps to its
    static target, and a conditional ``brt``/``brf`` is scheduled down
    an assumed direction — taken for backward targets (loop edges),
    fall-through otherwise — which the emitted closure enforces with a
    run-time guard on the issue-time condition value, falling back to
    the interpreter when the assumption misses.  The span's hard end
    is the earliest boundary the schedule cannot cross: one cycle
    before a ``halt`` resolves (retiring the thread would change the
    runnable set), the cycle a thread's next word refuses to join the
    span, or the horizon.  ``last_rel`` additionally trims trailing
    quiet cycles — it is the relative cycle of the last issue,
    pipeline pop, or memory apply at or before the hard end, which is
    exactly the cycle the kernel's ``_last_progress`` would record.
    Returns (recs, arriving, last_rel, losses) or None.
    """
    unit_by_id = config.unit_by_id
    hit_latency = config.memory.hit_latency
    n = len(states)
    if horizon > _MT_SIM_CAP:
        horizon = _MT_SIM_CAP
    scheduled = [state for state in states if state is not None]
    recs = []
    losses = 0
    hard_end = None
    conf = 1.0           # P(every followed conditional goes as assumed)
    busy_until = -1      # last pipeline pop / memory apply scheduled
    best_cut = None      # last dispatchable top-of-cycle (snap pass)
    t = 0
    while (hard_end is None or t <= hard_end) and t < horizon:
        if snap and t and busy_until < t:
            # Nothing in flight: if every scheduled thread sits at a
            # fresh, fully un-issued word (or is parked with its wake
            # already landed), the kernel could dispatch a fused block
            # right here — remember the latest such point.
            for state in scheduled:
                if state.resolve_rec is not None or state.control_inflight:
                    break
                if not state.parked and (not state.pending
                                         or not state.fresh):
                    break
            else:
                best_cut = t
        # Peek: a branch resolving this cycle on a thread whose word is
        # already empty advances it *this same cycle*; if the (assumed)
        # target cannot join the span, the span must end before this
        # cycle — nothing at cycle t may be processed, the resolution
        # stays with the real machinery.
        stop = False
        for state in scheduled:
            rec = state.resolve_rec
            if rec is not None and rec.ready == t and not state.pending:
                target = rec.br_target if rec.br_target is not None \
                    else state.cur_ip + 1
                if not _mt_fetchable(state, target):
                    stop = True
                    break
        if stop:
            hard_end = t - 1
            break
        for state in scheduled:
            rec = state.resolve_rec
            if rec is not None and rec.ready == t:
                rec.followed = True
                state.resolve_rec = None
                state.control_inflight = False
                state.next_ip = rec.br_target
                if not state.pending:
                    target = state.next_ip if state.next_ip is not None \
                        else state.cur_ip + 1
                    state.next_ip = None
                    _mt_fetch(state, target)
            unparks = state.unparks
            if unparks and unparks[0] <= t:
                while unparks and unparks[0] <= t:
                    heappop(unparks)
                state.parked = False
            if state.advance_ready:
                state.advance_ready = False
                target = state.next_ip if state.next_ip is not None \
                    else state.cur_ip + 1
                state.next_ip = None
                _mt_fetch(state, target)     # fetchability pre-checked
        claimed = set()
        for j in range(n):
            state = states[(t + j) % n] if rr else states[j]
            if state is None or state.parked:
                continue
            pending = state.pending
            if not pending:
                continue             # control in flight / thread done
            can_park = True
            for rec in list(pending):
                plan = rec.plan
                ready = True
                for pair in plan.wait_registers():
                    if state.valid_at.get(pair, 0) > t:
                        ready = False
                        break
                if not ready:
                    continue
                if rec.unit_index in claimed:
                    losses += 1
                    can_park = False
                    continue
                rec.t = t
                rec.rank = len(recs)
                rec.ready = t + unit_by_id[plan.uid].latency
                recs.append(rec)
                claimed.add(rec.unit_index)
                pending.remove(rec)
                state.fresh = False
                can_park = False
                if rec.ready > busy_until:
                    busy_until = rec.ready
                if plan.is_memory:
                    rec.kind = "mem"
                    rec.submit = rec.ready
                    rec.apply_c = rec.ready + hit_latency - 1
                    if rec.apply_c > busy_until:
                        busy_until = rec.apply_c
                    if plan.is_load:
                        for pair in plan.dest_pairs:
                            state.valid_at[pair] = rec.apply_c
                        heappush(state.unparks, rec.apply_c)
                elif plan.is_bru:
                    rec.kind = "bru"
                    state.control_inflight = True
                    control = plan.control
                    if control == "halt":
                        end = rec.ready - 1
                        if hard_end is None or end < hard_end:
                            hard_end = end
                    elif control == "br":
                        rec.br_target = plan.taken_payload[1]
                        state.resolve_rec = rec
                    else:
                        # Follow a conditional only down a direction the
                        # interpreter has seen it take decisively, and
                        # only while the *cumulative* probability that
                        # every followed branch goes as scheduled stays
                        # high — each extra branch multiplies the whole
                        # dispatch's failure odds.  Anything else ends
                        # the span at the branch's resolution (it stays
                        # a pipeline tail with a cond-chosen payload,
                        # like any other span boundary).
                        counts = bias.get(plan)
                        follow = None
                        if counts is not None:
                            total = counts[0] + counts[1]
                            if total >= _MT_BIAS_SAMPLES:
                                p = counts[0] / total
                                if p >= _MT_BIAS_P:
                                    follow, pf = True, p
                                elif p <= 1.0 - _MT_BIAS_P:
                                    follow, pf = False, 1.0 - p
                        if follow is not None \
                                and conf * pf >= _MT_CONF_MIN:
                            conf *= pf
                            rec.assume_taken = follow
                            rec.br_target = plan.taken_payload[1] \
                                if follow else None
                            state.resolve_rec = rec
                        else:
                            end = rec.ready - 1
                            if hard_end is None or end < hard_end:
                                hard_end = end
                elif plan.dest_pairs:
                    rec.kind = "alu"
                    for pair in plan.dest_pairs:
                        state.valid_at[pair] = rec.ready
                    heappush(state.unparks, rec.ready)
                else:
                    rec.kind = "sink"
            if can_park and state.pending:
                state.parked = True
            elif not state.pending and not state.control_inflight \
                    and not state.done:
                target = state.next_ip if state.next_ip is not None \
                    else state.cur_ip + 1
                if _mt_fetchable(state, target):
                    state.advance_ready = True
                else:
                    state.done = True
                    if hard_end is None or t < hard_end:
                        hard_end = t
        t += 1
    natural = hard_end is not None and hard_end < horizon
    if hard_end is None or hard_end >= horizon:
        hard_end = horizon - 1
    if hard_end < 0 or not recs:
        return None
    if natural or best_cut is None or best_cut >= horizon \
            or best_cut < _MIN_MT_OPS:
        best_cut = None
    last_rel = 0
    for rec in recs:
        if rec.t > last_rel:
            last_rel = rec.t
        if rec.ready <= hard_end and rec.ready > last_rel:
            last_rel = rec.ready
        if rec.kind == "mem" and rec.apply_c <= hard_end \
                and rec.apply_c > last_rel:
            last_rel = rec.apply_c
    for rec in recs:
        if rec.kind == "mem":
            rec.committed = rec.apply_c <= last_rel
        elif rec.kind == "bru":
            # A followed branch resolved in-span (its pop is activity,
            # so last_rel covers it); anything else is a tail pop.
            rec.committed = rec.followed
        else:
            rec.committed = rec.ready <= last_rel
    arriving = sorted((rec for rec in recs
                       if rec.kind == "mem" and rec.submit <= last_rel),
                      key=_arrival_key)
    for arrival, rec in enumerate(arriving):
        rec.arrival = arrival
    return recs, arriving, last_rel, losses, best_cut


def _emit_mt_block(slots, states, config, rr, recs, arriving, last_rel,
                   losses):
    """Generate, compile, and wrap the closure for one interleaving.

    Same two-halves structure as :func:`_emit_block` — a compute half
    (inside a ``try``) that walks the merged event timeline through SSA
    locals and performs every run-time guard without mutating anything,
    then a commit half — generalized to per-(thread, cluster) register
    frames and per-thread end state.  The span may end with threads
    mid-word, so the end state also materializes each thread's
    partially issued ``pending_plans``, park flag, in-flight control,
    advance flag, and the arbiter's round-robin resume point.
    """
    mem_size = config.memory_size
    ns = {"heappush": heappush, "MemRequest": MemRequest}
    counter = [0]
    n = len(slots)

    committed_mems = [rec for rec in arriving if rec.committed]
    mem_tails = [rec for rec in arriving if not rec.committed]
    use_ov = any(rec.plan.is_load for rec in committed_mems) \
        and any(not rec.plan.is_load for rec in committed_mems)

    # Same-address service windows overlapping a committed access would
    # queue — not modelled by the bulk counters — so those pairs get a
    # run-time distinctness check (now also across threads).
    pairs = []
    for i, first in enumerate(arriving):
        if not first.committed:
            continue
        for second in arriving[i + 1:]:
            if second.submit <= first.apply_c:
                pairs.append((first, second))
            else:
                break

    events = []
    for rec in recs:
        events.append((rec.t, 5, rec.rank, rec))
        if rec.committed:
            if rec.kind == "alu":
                events.append((rec.ready, 1, (rec.unit_index, rec.rank),
                               rec))
            elif rec.kind == "mem":
                events.append((rec.apply_c, 2, rec.arrival, rec))
    events.sort(key=lambda event: event[:3])

    compute = []
    entry_lines = []
    regvar = {}          # (k, cluster, index) -> current SSA local
    entry_reads = {}
    read_frames = set()  # (k, cluster) pairs read before first write
    reg_commits = []     # (k, cluster, index, local) in landing order
    addr_done = set()

    def reg_read(k, cluster, index):
        key = (k, cluster, index)
        var = regvar.get(key)
        if var is not None:
            return var
        var = entry_reads.get(key)
        if var is None:
            var = "e%d_%d_%d" % key
            entry_reads[key] = var
            read_frames.add((k, cluster))
            entry_lines.append(
                "%s = F%d_%dv[%d] if %d < len(F%d_%dv) else 0"
                % (var, k, cluster, index, index, k, cluster))
        return var

    def srcs_of(rec):
        plan = rec.plan
        out = []
        if plan.values_template is None:
            return out
        fields = {pos: (cluster, index)
                  for pos, cluster, index in plan.src_fields}
        for pos, baked in enumerate(plan.values_template):
            pair = fields.get(pos)
            if pair is not None:
                out.append((reg_read(rec.k, pair[0], pair[1]), False))
            else:
                out.append(_const_expr(baked, ns, counter))
        return out

    for __, phase, __, rec in events:
        plan = rec.plan
        rank = rec.rank
        if phase == 5:
            if rec.kind == "alu":
                rec.var = "v%d" % rank
                compute.append("%s = %s" % (
                    rec.var, _semantics_expr(plan, srcs_of(rec), ns,
                                             rank)))
            elif rec.kind == "mem":
                srcs = srcs_of(rec)
                if plan.is_load:
                    base, offset = srcs[0], srcs[1]
                else:
                    rec.val_expr = srcs[0][0]
                    base, offset = srcs[1], srcs[2]
                rec.var = "a%d" % rank
                compute.append("%s = %s + %s" % (
                    rec.var, _int_src(base), _int_src(offset)))
                if rec.submit <= last_rel:
                    compute.append("if not 0 <= %s < %d:"
                                   % (rec.var, mem_size))
                    compute.append("    return None")
                    if rec.committed:
                        guard = "MQg(%s) or %s in MB" % (rec.var,
                                                         rec.var)
                        if not plan.is_load:
                            guard += " or %s in MP" % rec.var
                        compute.append("if MH and (%s):" % guard)
                        compute.append("    return None")
                    addr_done.add(rank)
                    for first, second in pairs:
                        if rec in (first, second):
                            other = second if rec is first else first
                            if other.rank in addr_done:
                                compute.append(
                                    "if %s == %s:" % (first.var,
                                                      second.var))
                                compute.append("    return None")
            elif rec.kind == "bru":
                srcs = srcs_of(rec)
                if plan.control in ("brt", "brf"):
                    rec.cond_var = srcs[0][0]
                    if rec.followed:
                        # The schedule followed an assumed direction;
                        # bail to the interpreter when the issue-time
                        # condition value disagrees.
                        want_truthy = (plan.control == "brt") \
                            == rec.assume_taken
                        compute.append("if %s%s:" % (
                            "not " if want_truthy else "", rec.cond_var))
                        compute.append("    return None")
            # sink: semantics is ``lambda a: None`` — nothing to do
        elif phase == 1:
            for cluster, index in plan.dest_pairs:
                regvar[(rec.k, cluster, index)] = rec.var
                reg_commits.append((rec.k, cluster, index, rec.var))
        else:                            # phase 2: committed mem apply
            if plan.is_load:
                value = "v%d" % rank
                rec.val_expr = value
                if use_ov:
                    compute.append(
                        "%s = OV[%s] if %s in OV else MVg(%s, 0)"
                        % (value, rec.var, rec.var, rec.var))
                else:
                    compute.append("%s = MVg(%s, 0)" % (value, rec.var))
                for cluster, index in plan.dest_pairs:
                    regvar[(rec.k, cluster, index)] = value
                    reg_commits.append((rec.k, cluster, index, value))
            elif use_ov:
                compute.append("OV[%s] = %s" % (rec.var, rec.val_expr))

    # ---- commit half ---------------------------------------------------
    commit = []

    grow = {}
    used_masks = {}
    last_landing = {}
    for rec in recs:
        dests = rec.plan.dest_pairs
        if rec.kind not in ("alu", "mem") or not dests:
            continue
        if rec.kind == "mem" and not rec.plan.is_load:
            continue
        landing = rec.ready if rec.kind == "alu" else rec.apply_c
        for cluster, index in dests:
            key = (rec.k, cluster)
            if index + 1 > grow.get(key, 0):
                grow[key] = index + 1
            if rec.committed:
                used_masks[key] = used_masks.get(key, 0) | (1 << index)
            triple = (rec.k, cluster, index)
            if landing >= last_landing.get(triple, -1):
                last_landing[triple] = landing
    tail_masks = {}
    for (k, cluster, index), landing in last_landing.items():
        if landing > last_rel:
            key = (k, cluster)
            tail_masks[key] = tail_masks.get(key, 0) | (1 << index)
    for k, cluster in sorted(grow):
        need = grow[(k, cluster)]
        commit.append("if len(F%d_%dv) < %d:" % (k, cluster, need))
        commit.append("    F%d_%dv.extend([0] * (%d - len(F%d_%dv)))"
                      % (k, cluster, need, k, cluster))
    for k, cluster, index, var in reg_commits:
        commit.append("F%d_%dv[%d] = %s" % (k, cluster, index, var))
    for k, cluster in sorted(tail_masks):
        commit.append("F%d_%d._invalid = %d"
                      % (k, cluster, tail_masks[(k, cluster)]))
    for k, cluster in sorted(used_masks):
        commit.append("F%d_%d._used |= %d"
                      % (k, cluster, used_masks[(k, cluster)]))

    if committed_mems:
        count = len(committed_mems)
        commit.append("M._arrivals += %d" % count)
        commit.append("M._seq += %d" % count)
        commit.append("ST.memory_accesses += %d" % count)
        for rec in committed_mems:
            if not rec.plan.is_load:
                commit.append("MV[%s] = %s" % (rec.var, rec.val_expr))
                commit.append("ME.discard(%s)" % rec.var)
            commit.append("MT[%s] = t%d" % (rec.var, rec.k))
    for rec in mem_tails:
        ns["p%d" % rec.rank] = rec.plan
        ns["u%d" % rec.rank] = config.unit_by_id[rec.plan.uid]
        if rec.plan.is_load:
            request = "MemRequest(T%d, p%d.op, u%d, %s, spec=p%d.spec)" \
                % (rec.k, rec.rank, rec.rank, rec.var, rec.rank)
        else:
            request = ("MemRequest(T%d, p%d.op, u%d, %s, store_value=%s,"
                       " spec=p%d.spec)"
                       % (rec.k, rec.rank, rec.rank, rec.var,
                          rec.val_expr, rec.rank))
        commit.append("M.submit(%s, C0 + %d)" % (request, rec.submit))

    pipe_tails = [rec for rec in recs
                  if not rec.committed
                  and not (rec.kind == "mem" and rec.submit <= last_rel)]
    if pipe_tails:
        commit.append("q = node._pipe_seq")
        commit.append("P = node._pipe")
        for rec in pipe_tails:
            rank = rec.rank
            ns["p%d" % rank] = rec.plan
            if rec.kind == "alu":
                payload = rec.var
            elif rec.kind == "sink":
                payload = "None"
            elif rec.kind == "mem":
                ns["u%d" % rank] = config.unit_by_id[rec.plan.uid]
                if rec.plan.is_load:
                    payload = "MemRequest(T%d, p%d.op, u%d, %s, spec=" \
                        "p%d.spec)" % (rec.k, rank, rank, rec.var, rank)
                else:
                    payload = ("MemRequest(T%d, p%d.op, u%d, %s, "
                               "store_value=%s, spec=p%d.spec)"
                               % (rec.k, rank, rank, rec.var,
                                  rec.val_expr, rank))
            else:                        # tail BRU: payload per cond
                control = rec.plan.control
                if control == "brt":
                    payload = "(p%d.taken_payload if %s else " \
                        "p%d.untaken_payload)" % (rank, rec.cond_var,
                                                  rank)
                elif control == "brf":
                    payload = "(p%d.untaken_payload if %s else " \
                        "p%d.taken_payload)" % (rank, rec.cond_var, rank)
                else:                    # br / halt
                    payload = "p%d.taken_payload" % rank
            commit.append("heappush(P, (C0 + %d, %d, q + %d, T%d, p%d, "
                          "%s))" % (rec.ready, rec.unit_index, rank + 1,
                                    rec.k, rank, payload))
        commit.append("node._pipe_seq = q + %d" % len(recs))
    else:
        commit.append("node._pipe_seq += %d" % len(recs))

    unit_counts = {}
    issued_per_thread = {}
    for rec in recs:
        unit_counts[rec.unit_index] = unit_counts.get(rec.unit_index,
                                                      0) + 1
        issued_per_thread[rec.k] = issued_per_thread.get(rec.k, 0) + 1
    commit.append("IC = node._issued_counts")
    for unit_index in sorted(unit_counts):
        commit.append("IC[%d] += %d" % (unit_index,
                                        unit_counts[unit_index]))
    commit.append("TI = node._issued_tids")
    for k in sorted(issued_per_thread):
        commit.append("TI[t%d] = TI.get(t%d, 0) + %d"
                      % (k, k, issued_per_thread[k]))
    if losses:
        commit.append("node._arb_losses += %d" % losses)
    grants = sum(len(rec.plan.dest_pairs) for rec in recs
                 if rec.committed and (rec.kind == "alu"
                                       or (rec.kind == "mem"
                                           and rec.plan.is_load)))
    if grants:
        commit.append("node._wb_grants_batch += %d" % grants)

    # Per-thread end state: the span may cut threads mid-word.
    adv_any = False
    for state in states:
        if state is None:
            continue
        k = state.k
        commit.append("T%d.ip = %d" % (k, state.cur_ip))
        remaining = state.pending
        plan_names = []
        for i, rec in enumerate(remaining):
            pname = "w%d_%d" % (k, i)
            ns[pname] = rec.plan
            plan_names.append(pname)
        commit.append("T%d.pending_plans = [%s]"
                      % (k, ", ".join(plan_names)))
        if state.control_inflight:
            commit.append("T%d.control_inflight = True" % k)
        if state.next_ip is not None:
            # A branch resolved in-span but its advance lies beyond the
            # span; the kernel's next _advance_plan consumes this.
            commit.append("T%d.next_ip = %d" % (k, state.next_ip))
        if state.parked:
            commit.append("T%d.parked = True" % k)
        if not remaining and not state.control_inflight:
            commit.append("T%d.advance_ready = True" % k)
            adv_any = True
    if adv_any:
        commit.append("node._adv_any = True")
    if rr:
        # The scan of relative cycle j starts at rotated position
        # j % N, so after the span's last cycle the arbiter resumes
        # past that position's tid — whoever holds it, parked or not.
        commit.append("node.arbiter._next = TS[%d].tid + 1"
                      % (last_rel % n))
    commit.append("return C0 + %d" % last_rel)

    # ---- assemble ------------------------------------------------------
    body = []
    sched = [state for state in states if state is not None]
    for state in sched:
        body.append("T%d = TS[%d]" % (state.k, state.k))
        body.append("t%d = T%d.tid" % (state.k, state.k))
    frames_needed = sorted(read_frames | set(grow))
    for k in sorted({k for k, __ in frames_needed}):
        body.append("F%dR = T%d.frames" % (k, k))
    for k, cluster in frames_needed:
        body.append("F%d_%d = F%dR.get(%d)" % (k, cluster, k, cluster))
        if (k, cluster) in grow:
            body.append("if F%d_%d is None:" % (k, cluster))
            body.append("    F%d_%d = T%d.frame(%d)"
                        % (k, cluster, k, cluster))
            body.append("F%d_%dv = F%d_%d._values"
                        % (k, cluster, k, cluster))
        else:
            body.append("F%d_%dv = F%d_%d._values "
                        "if F%d_%d is not None else ()"
                        % (k, cluster, k, cluster, k, cluster))
    if committed_mems or mem_tails:
        body.append("M = node.memory")
    if committed_mems:
        body.append("MV = M._values")
        body.append("MVg = MV.get")
        body.append("ME = M._empty")
        body.append("MT = M._last_touch")
        body.append("MB = M._busy")
        body.append("MQg = M._queues.get")
        body.append("MP = M._parked")
        body.append("MH = 1 if (MB or M._queues or MP) else 0")
        body.append("ST = node.stats")
    inner = (["OV = {}"] if use_ov else []) + entry_lines + compute
    if not inner:
        inner = ["pass"]
    body.append("try:")
    body.extend("    " + line for line in inner)
    body.append("except Exception:")
    body.append("    return None")
    body.extend(commit)
    label = "+".join("%s@%d" % (slot[0].name, slot[1]) if slot else "~"
                     for slot in slots)
    source = "def _mtblock(node, TS, C0):\n" \
        + "".join("    %s\n" % line for line in body)
    code = compile(source, "<mtblock %s>" % label, "exec")
    exec(code, ns)
    return MTBlockPlan(n, len(recs), last_rel, ns["_mtblock"], source)

# Step opcodes for the table-driven interleaved-superblock executor.
# The compute table is a flat list of tuples walked in merged event
# order; operands are *atoms* — ``(0, value)`` for a baked constant,
# ``(1, rank)`` for a scratch value produced earlier in the span, and
# ``(2, eslot)`` for an entry-time register read.  Entry reads are
# snapshotted into a flat list before the compute half runs: atoms may
# be resolved as late as the commit half (store values, tail branch
# conditions), by which point the frames have already absorbed the
# span's register writes.
_MT_ALU = 0          # (0, rank, semantics, atoms)
_MT_ADDR = 1         # (1, rank, base_atom, offset_atom)
_MT_BOUNDS = 2       # (2, rank)
_MT_HAZARD = 3       # (3, rank, is_store)
_MT_PAIR = 4         # (4, rank_a, rank_b)
_MT_BRGUARD = 5      # (5, cond_atom, want_truthy)
_MT_LOAD = 6         # (6, rank, use_overlay)
_MT_STORE_OV = 7     # (7, rank, value_atom)


def _mt_resolve(atom, vals, evals):
    """Resolve one operand atom against the span's scratch values and
    the entry-time register snapshot."""
    tag = atom[0]
    if tag == 0:
        return atom[1]
    if tag == 1:
        return vals[atom[1]]
    return evals[atom[1]]


def _build_mt_run(slots, states, config, rr, recs, arriving, last_rel,
                  losses):
    """Build the table-driven executor for one interleaving.

    Walks the same merged event timeline as :func:`_emit_mt_block` and
    enforces the same two-halves discipline — a guarded compute half
    that mutates nothing, then a commit half — but emits step *tables*
    interpreted by a generic driver instead of generating and
    ``compile()``-ing source.  A driver dispatch costs a few times a
    closure dispatch, but the build is ~50x cheaper, which is what
    makes fusing the long tail of alignments (hundreds per benchmark,
    most dispatched only a handful of times) profitable at all;
    :meth:`MTBlockPlan.promote` upgrades the few alignments hot enough
    to amortize real codegen.
    """
    mem_size = config.memory_size
    n = len(slots)

    committed_mems = [rec for rec in arriving if rec.committed]
    mem_tails = [rec for rec in arriving if not rec.committed]
    use_ov = any(rec.plan.is_load for rec in committed_mems) \
        and any(not rec.plan.is_load for rec in committed_mems)

    pairs = []
    for i, first in enumerate(arriving):
        if not first.committed:
            continue
        for second in arriving[i + 1:]:
            if second.submit <= first.apply_c:
                pairs.append((first, second))
            else:
                break

    events = []
    for rec in recs:
        events.append((rec.t, 5, rec.rank, rec))
        if rec.committed:
            if rec.kind == "alu":
                events.append((rec.ready, 1, (rec.unit_index, rec.rank),
                               rec))
            elif rec.kind == "mem":
                events.append((rec.apply_c, 2, rec.arrival, rec))
    events.sort(key=lambda event: event[:3])

    frame_slots = {}     # (k, cluster) -> fslot index
    frame_of = []        # fslot -> [k, cluster, grow_need]

    def fslot_of(k, cluster):
        key = (k, cluster)
        fslot = frame_slots.get(key)
        if fslot is None:
            fslot = len(frame_of)
            frame_slots[key] = fslot
            frame_of.append([k, cluster, 0])
        return fslot

    compute = []
    regvar = {}          # (k, cluster, index) -> scratch-rank atom
    entry_reads = {}     # (k, cluster, index) -> entry atom
    entry_list = []      # eslot -> (index, fslot) to snapshot at entry
    reg_commits = []     # (fslot, index, rank) in landing order
    store_vals = {}      # mem rank -> store-value atom
    cond_atoms = {}      # bru rank -> condition atom
    addr_done = set()

    def srcs_of(rec):
        plan = rec.plan
        out = []
        if plan.values_template is None:
            return out
        fields = {pos: (cluster, index)
                  for pos, cluster, index in plan.src_fields}
        for pos, baked in enumerate(plan.values_template):
            pair = fields.get(pos)
            if pair is not None:
                key = (rec.k, pair[0], pair[1])
                atom = regvar.get(key)
                if atom is None:
                    atom = entry_reads.get(key)
                    if atom is None:
                        atom = (2, len(entry_list))
                        entry_list.append(
                            (pair[1], fslot_of(rec.k, pair[0])))
                        entry_reads[key] = atom
                out.append(atom)
            else:
                out.append((0, baked))
        return out

    for __, phase, __, rec in events:
        plan = rec.plan
        rank = rec.rank
        if phase == 5:
            if rec.kind == "alu":
                compute.append((_MT_ALU, rank, plan.semantics,
                                tuple(srcs_of(rec))))
            elif rec.kind == "mem":
                srcs = srcs_of(rec)
                if plan.is_load:
                    base, offset = srcs[0], srcs[1]
                else:
                    store_vals[rank] = srcs[0]
                    base, offset = srcs[1], srcs[2]
                compute.append((_MT_ADDR, rank, base, offset))
                if rec.submit <= last_rel:
                    compute.append((_MT_BOUNDS, rank))
                    if rec.committed:
                        compute.append((_MT_HAZARD, rank,
                                        not plan.is_load))
                    addr_done.add(rank)
                    for first, second in pairs:
                        if rec in (first, second):
                            other = second if rec is first else first
                            if other.rank in addr_done:
                                compute.append((_MT_PAIR, first.rank,
                                                second.rank))
            elif rec.kind == "bru":
                srcs = srcs_of(rec)
                if plan.control in ("brt", "brf"):
                    cond_atoms[rank] = srcs[0]
                    if rec.followed:
                        want_truthy = (plan.control == "brt") \
                            == rec.assume_taken
                        compute.append((_MT_BRGUARD, srcs[0],
                                        want_truthy))
        elif phase == 1:
            for cluster, index in plan.dest_pairs:
                regvar[(rec.k, cluster, index)] = (1, rank)
                reg_commits.append((fslot_of(rec.k, cluster), index,
                                    rank))
        else:                            # phase 2: committed mem apply
            if plan.is_load:
                compute.append((_MT_LOAD, rank, use_ov))
                for cluster, index in plan.dest_pairs:
                    regvar[(rec.k, cluster, index)] = (1, rank)
                    reg_commits.append((fslot_of(rec.k, cluster), index,
                                        rank))
            elif use_ov:
                compute.append((_MT_STORE_OV, rank, store_vals[rank]))

    # ---- commit tables -------------------------------------------------
    grow = {}
    used_masks = {}
    last_landing = {}
    for rec in recs:
        dests = rec.plan.dest_pairs
        if rec.kind not in ("alu", "mem") or not dests:
            continue
        if rec.kind == "mem" and not rec.plan.is_load:
            continue
        landing = rec.ready if rec.kind == "alu" else rec.apply_c
        for cluster, index in dests:
            key = (rec.k, cluster)
            if index + 1 > grow.get(key, 0):
                grow[key] = index + 1
            if rec.committed:
                used_masks[key] = used_masks.get(key, 0) | (1 << index)
            triple = (rec.k, cluster, index)
            if landing >= last_landing.get(triple, -1):
                last_landing[triple] = landing
    tail_masks = {}
    for (k, cluster, index), landing in last_landing.items():
        if landing > last_rel:
            key = (k, cluster)
            tail_masks[key] = tail_masks.get(key, 0) | (1 << index)
    for (k, cluster), need in grow.items():
        frame_of[fslot_of(k, cluster)][2] = need
    invalid_list = tuple((fslot_of(k, cluster), mask)
                         for (k, cluster), mask in sorted(
                             tail_masks.items()))
    used_list = tuple((fslot_of(k, cluster), mask)
                      for (k, cluster), mask in sorted(
                          used_masks.items()))
    frame_spec = tuple(tuple(entry) for entry in frame_of)
    entry_list = tuple(entry_list)
    reg_commits = tuple(reg_commits)

    mem_bulk = tuple(
        (rec.rank, rec.k,
         None if rec.plan.is_load else store_vals[rec.rank])
        for rec in committed_mems)
    tail_submits = tuple(
        (rec.rank, rec.k, rec.plan, config.unit_by_id[rec.plan.uid],
         None if rec.plan.is_load else store_vals[rec.rank],
         rec.submit)
        for rec in mem_tails)

    pipe_list = []
    for rec in recs:
        if rec.committed or (rec.kind == "mem"
                             and rec.submit <= last_rel):
            continue
        rank = rec.rank
        if rec.kind == "alu":
            kind, aux = 0, None
        elif rec.kind == "sink":
            kind, aux = 1, None
        elif rec.kind == "mem":
            kind = 2
            aux = (config.unit_by_id[rec.plan.uid],
                   None if rec.plan.is_load else store_vals[rank])
        else:                            # tail BRU: payload per cond
            control = rec.plan.control
            if control == "brt":
                kind, aux = 3, cond_atoms[rank]
            elif control == "brf":
                kind, aux = 4, cond_atoms[rank]
            else:                        # br / halt
                kind, aux = 5, None
        pipe_list.append((rec.ready, rec.unit_index, rank, rec.k,
                          rec.plan, kind, aux))
    pipe_list = tuple(pipe_list)

    unit_counts = {}
    issued_per_thread = {}
    for rec in recs:
        unit_counts[rec.unit_index] = unit_counts.get(rec.unit_index,
                                                      0) + 1
        issued_per_thread[rec.k] = issued_per_thread.get(rec.k, 0) + 1
    unit_list = tuple(sorted(unit_counts.items()))
    thread_list = tuple(sorted(issued_per_thread.items()))
    grants = sum(len(rec.plan.dest_pairs) for rec in recs
                 if rec.committed and (rec.kind == "alu"
                                       or (rec.kind == "mem"
                                           and rec.plan.is_load)))

    adv_any = False
    end_states = []
    for state in states:
        if state is None:
            continue
        advance = not state.pending and not state.control_inflight
        adv_any = adv_any or advance
        end_states.append((state.k, state.cur_ip,
                           tuple(rec.plan for rec in state.pending),
                           state.control_inflight, state.next_ip,
                           state.parked, advance))
    end_states = tuple(end_states)
    rr_last = last_rel % n if rr else None

    n_recs = len(recs)
    mem_count = len(committed_mems)
    touch_memory = bool(committed_mems or mem_tails)
    res = _mt_resolve

    def _mtdrive(node, TS, C0):
        fobjs = []
        fvs = []
        for k, cluster, need in frame_spec:
            thread = TS[k]
            frame = thread.frames.get(cluster)
            if frame is None and need:
                frame = thread.frame(cluster)
            fobjs.append(frame)
            fvs.append(() if frame is None else frame._values)
        if touch_memory:
            memory = node.memory
        if mem_count:
            MV = memory._values
            MVg = MV.get
            MB = memory._busy
            MQg = memory._queues.get
            MP = memory._parked
            MH = 1 if (MB or memory._queues or MP) else 0
        vals = [None] * n_recs
        addrs = [0] * n_recs
        evals = []
        for index, fslot in entry_list:
            fv = fvs[fslot]
            evals.append(fv[index] if index < len(fv) else 0)
        OV = {} if use_ov else None
        try:
            for step in compute:
                op = step[0]
                if op == 0:
                    vals[step[1]] = step[2](
                        *[res(atom, vals, evals) for atom in step[3]])
                elif op == 1:
                    addrs[step[1]] = int(res(step[2], vals, evals)) \
                        + int(res(step[3], vals, evals))
                elif op == 2:
                    if not 0 <= addrs[step[1]] < mem_size:
                        return None
                elif op == 3:
                    addr = addrs[step[1]]
                    if MH and (MQg(addr) or addr in MB
                               or (step[2] and addr in MP)):
                        return None
                elif op == 4:
                    if addrs[step[1]] == addrs[step[2]]:
                        return None
                elif op == 5:
                    if bool(res(step[1], vals, evals)) != step[2]:
                        return None
                elif op == 6:
                    addr = addrs[step[1]]
                    if step[2] and addr in OV:
                        vals[step[1]] = OV[addr]
                    else:
                        vals[step[1]] = MVg(addr, 0)
                else:
                    OV[addrs[step[1]]] = res(step[2], vals, evals)
        except Exception:
            return None
        # ---- commit (mirrors _emit_mt_block's commit half) -----------
        for fslot in range(len(frame_spec)):
            need = frame_spec[fslot][2]
            if need:
                fv = fvs[fslot]
                if len(fv) < need:
                    fv.extend([0] * (need - len(fv)))
        for fslot, index, rank in reg_commits:
            fvs[fslot][index] = vals[rank]
        for fslot, mask in invalid_list:
            fobjs[fslot]._invalid = mask
        for fslot, mask in used_list:
            fobjs[fslot]._used |= mask
        if mem_count:
            memory._arrivals += mem_count
            memory._seq += mem_count
            node.stats.memory_accesses += mem_count
            ME = memory._empty
            MT = memory._last_touch
            for rank, k, value_atom in mem_bulk:
                addr = addrs[rank]
                if value_atom is not None:
                    MV[addr] = res(value_atom, vals, evals)
                    ME.discard(addr)
                MT[addr] = TS[k].tid
        for rank, k, plan, unit, value_atom, submit in tail_submits:
            if value_atom is None:
                request = MemRequest(TS[k], plan.op, unit, addrs[rank],
                                     spec=plan.spec)
            else:
                request = MemRequest(TS[k], plan.op, unit, addrs[rank],
                                     store_value=res(value_atom, vals,
                                                     evals),
                                     spec=plan.spec)
            memory.submit(request, C0 + submit)
        seq = node._pipe_seq
        if pipe_list:
            pipe = node._pipe
            for ready, unit_index, rank, k, plan, kind, aux in pipe_list:
                if kind == 0:
                    payload = vals[rank]
                elif kind == 1:
                    payload = None
                elif kind == 2:
                    unit, value_atom = aux
                    if value_atom is None:
                        payload = MemRequest(TS[k], plan.op, unit,
                                             addrs[rank],
                                             spec=plan.spec)
                    else:
                        payload = MemRequest(
                            TS[k], plan.op, unit, addrs[rank],
                            store_value=res(value_atom, vals, evals),
                            spec=plan.spec)
                elif kind == 5:
                    payload = plan.taken_payload
                else:
                    cond = res(aux, vals, evals)
                    if kind == 3:
                        payload = plan.taken_payload if cond \
                            else plan.untaken_payload
                    else:
                        payload = plan.untaken_payload if cond \
                            else plan.taken_payload
                heappush(pipe, (C0 + ready, unit_index, seq + rank + 1,
                                TS[k], plan, payload))
        node._pipe_seq = seq + n_recs
        issued = node._issued_counts
        for unit_index, count in unit_list:
            issued[unit_index] += count
        issued_tids = node._issued_tids
        for k, count in thread_list:
            tid = TS[k].tid
            issued_tids[tid] = issued_tids.get(tid, 0) + count
        if losses:
            node._arb_losses += losses
        if grants:
            node._wb_grants_batch += grants
        for k, ip, plans, inflight, next_ip, parked, advance \
                in end_states:
            thread = TS[k]
            thread.ip = ip
            thread.pending_plans = list(plans)
            if inflight:
                thread.control_inflight = True
            if next_ip is not None:
                thread.next_ip = next_ip
            if parked:
                thread.parked = True
            if advance:
                thread.advance_ready = True
        if adv_any:
            node._adv_any = True
        if rr_last is not None:
            node.arbiter._next = TS[rr_last].tid + 1
        return C0 + last_rel

    return MTBlockPlan(n, n_recs, last_rel, _mtdrive, None)
