"""Load-time predecoding of wide instruction words into slot plans.

The scan kernel re-derives everything about an operation every cycle it
is pending: opcode spec lookups (a registry dict hit per call of
``Operation.spec``), source-register list construction, branch label
resolution, and unit table lookups.  None of that can change once a
program is loaded on a machine, so the event kernel hoists it all to
load time: each :class:`~repro.isa.instruction.Operation` becomes a
:class:`SlotPlan` carrying the resolved spec, flat operand fetch
offsets, prebuilt control payloads, and the home unit's index into the
node's unit table.  The per-cycle path then touches only plain
attributes, ints, and tuples.

Plans are immutable after decoding and are shared freely between a
node, its snapshots, and restored copies.  They deliberately reference
the original ``Operation`` objects (``plan.op``) so observers, memory
requests, and diagnostics show the exact objects the scan kernel would.
"""

from ..errors import SimulationError
from ..isa.operations import UnitClass


class SlotPlan:
    """Everything the issue path needs about one operation, resolved."""

    __slots__ = ("uid", "unit_index", "op", "spec", "name",
                 "wait_groups", "src_fields", "values_template",
                 "dest_pairs", "is_memory", "is_load", "is_bru",
                 "control", "taken_payload", "untaken_payload",
                 "fork_name", "bindings_plan")

    def __init__(self, uid, unit_index, op, thread_program):
        spec = op.spec
        self.uid = uid
        self.unit_index = unit_index
        self.op = op
        self.spec = spec
        self.name = op.name
        self.is_memory = spec.is_memory
        self.is_load = spec.is_load
        self.is_bru = spec.unit is UnitClass.BRU
        # Presence-bit wait set: every register the op reads plus every
        # register it writes (WAW interlock), grouped by cluster so the
        # hot loop does one frame lookup per cluster.
        groups = {}
        seen = set()
        for reg in list(op.source_regs()) + list(op.dests):
            key = (reg.cluster, reg.index)
            if key in seen:
                continue
            seen.add(key)
            groups.setdefault(reg.cluster, []).append(reg.index)
        self.wait_groups = tuple((cluster, tuple(indices))
                                 for cluster, indices in groups.items())
        # Operand fetch: immediates are baked into the template, register
        # reads recorded as (position, cluster, index) patches.
        if op.srcs:
            template = []
            fields = []
            for pos, src in enumerate(op.srcs):
                if hasattr(src, "cluster"):
                    template.append(None)
                    fields.append((pos, src.cluster, src.index))
                else:
                    template.append(src.value)
            self.values_template = template
            self.src_fields = tuple(fields)
        else:
            self.values_template = None
            self.src_fields = ()
        self.dest_pairs = tuple((d.cluster, d.index) for d in op.dests)
        # Control: resolve branch targets and fork wiring now, so issue
        # builds payloads from plain tuples.
        self.control = None
        self.taken_payload = None
        self.untaken_payload = None
        self.fork_name = None
        self.bindings_plan = None
        if self.is_bru:
            if spec.is_halt:
                self.control = "halt"
                self.taken_payload = ("halt",)
            elif spec.is_fork:
                self.control = "fork"
                self.fork_name = op.target.name
                plan = []
                for child_reg, value in op.bindings:
                    if hasattr(value, "cluster"):
                        plan.append((child_reg, True,
                                     value.cluster, value.index))
                    else:
                        plan.append((child_reg, False, value.value, None))
                self.bindings_plan = tuple(plan)
            else:
                target = thread_program.resolve(op.target)
                self.control = op.name
                self.taken_payload = ("jump", target)
                self.untaken_payload = ("jump", None)


class WordPlan:
    """One predecoded instruction word (plans in slot insertion order,
    exactly the order the scan kernel's ``dict(word.slots)`` yields)."""

    __slots__ = ("plans",)

    def __init__(self, plans):
        self.plans = tuple(plans)


class DecodedThread:
    """The predecoded form of one thread program."""

    __slots__ = ("name", "words")

    def __init__(self, name, words):
        self.name = name
        self.words = tuple(words)


def decode_program(program, unit_index):
    """Predecode every thread of ``program``.

    ``unit_index`` maps unit ids to their position in the node's unit
    table.  Returns a dict of thread name -> :class:`DecodedThread`.
    Assumes the program already passed
    :func:`~repro.sim.loader.validate_program` against the same
    machine (every uid present, no empty words).
    """
    decoded = {}
    for name, thread_program in program.threads.items():
        words = []
        for index, word in enumerate(thread_program.instructions):
            plans = [SlotPlan(uid, unit_index[uid], op, thread_program)
                     for uid, op in word.slots.items()]
            if not plans:
                raise SimulationError("thread %r word %d is empty"
                                      % (name, index))
            words.append(WordPlan(plans))
        decoded[name] = DecodedThread(name, words)
    return decoded
