"""Execution tracing and schedule visualization.

A :class:`TraceRecorder` plugs into the node's observer hook and
collects issue/spawn/halt events; :func:`render_timeline` draws a
text Gantt chart of function-unit occupancy over a cycle window —
essentially Figure 2 of the paper (the cycle-by-cycle mapping of
function units to threads), reconstructed from a real run.

Usage::

    recorder = TraceRecorder()
    node = make_node(config, observer=recorder)
    node.run(program)
    print(render_timeline(recorder, config, last=40))
"""

from collections import defaultdict
from dataclasses import dataclass, field


@dataclass
class IssueEvent:
    cycle: int
    unit: str
    thread: int
    op: str


class TraceRecorder:
    """Observer collecting per-cycle issue events and thread lifetimes.

    ``limit`` bounds the number of recorded issue events so tracing a
    long run cannot exhaust memory; the newest events win.
    """

    def __init__(self, limit=200_000):
        self.limit = limit
        self.issues = []
        self.spawns = {}         # tid -> (cycle, thread name)
        self.halts = {}          # tid -> cycle

    def __call__(self, kind, **event):
        if kind == "issue":
            if len(self.issues) >= self.limit:
                del self.issues[:self.limit // 2]
            self.issues.append(IssueEvent(event["cycle"], event["unit"],
                                          event["thread"].tid,
                                          event["op"].name))
        elif kind == "spawn":
            thread = event["thread"]
            self.spawns[thread.tid] = (event["cycle"], thread.name)
        elif kind == "halt":
            self.halts[event["thread"].tid] = event["cycle"]

    # -- queries ----------------------------------------------------------

    def issues_by_cycle(self):
        table = defaultdict(list)
        for event in self.issues:
            table[event.cycle].append(event)
        return table

    def unit_occupancy(self):
        """unit id -> {cycle: thread id}."""
        table = defaultdict(dict)
        for event in self.issues:
            table[event.unit][event.cycle] = event.thread
        return table

    def thread_activity(self, tid):
        return [e for e in self.issues if e.thread == tid]

    def cycle_range(self):
        if not self.issues:
            return (0, 0)
        cycles = [e.cycle for e in self.issues]
        return (min(cycles), max(cycles))

    def tail(self, cycles=48):
        """Issue events from the final ``cycles``-cycle window — the
        slice the sanitizer's bundle replay prints to show the
        schedule entering a divergence window."""
        __, hi = self.cycle_range()
        lo = hi - cycles + 1
        return [e for e in self.issues if e.cycle >= lo]


def render_timeline(recorder, config, first=None, last=None, width=72):
    """Draw unit occupancy as text: one row per function unit, one
    column per cycle, thread ids as the marks (``.`` = idle).

    ``first``/``last`` bound the cycle window; a window wider than
    ``width`` is split into successive panels.
    """
    lo, hi = recorder.cycle_range()
    if first is not None:
        lo = max(lo, first)
    if last is not None:
        if first is not None:
            hi = min(hi, lo + last - 1)
        else:
            lo = max(lo, hi - last + 1)
    occupancy = recorder.unit_occupancy()
    unit_ids = [slot.uid for slot in config.units]
    label_width = max(len(uid) for uid in unit_ids) + 1
    panels = []
    start = lo
    while start <= hi:
        end = min(start + width - 1, hi)
        lines = ["cycles %d..%d" % (start, end)]
        header = " " * label_width + "".join(
            "|" if (start + i) % 10 == 0 else " "
            for i in range(end - start + 1))
        lines.append(header)
        for uid in unit_ids:
            row = []
            for cycle in range(start, end + 1):
                tid = occupancy.get(uid, {}).get(cycle)
                row.append("." if tid is None else _mark(tid))
            lines.append(uid.ljust(label_width) + "".join(row))
        panels.append("\n".join(lines))
        start = end + 1
    legend = ", ".join(
        "%s=thread %d (%s)" % (_mark(tid), tid, name)
        for tid, (__, name) in sorted(recorder.spawns.items()))
    return "\n\n".join(panels) + ("\n" + legend if legend else "")


def _mark(tid):
    marks = "0123456789abcdefghijklmnopqrstuvwxyz"
    return marks[tid % len(marks)]


def utilization_profile(recorder, bucket=16):
    """(bucket start cycle, issues per cycle) series for plotting
    utilization over time."""
    by_cycle = recorder.issues_by_cycle()
    if not by_cycle:
        return []
    lo, hi = recorder.cycle_range()
    series = []
    for start in range(lo, hi + 1, bucket):
        total = sum(len(by_cycle.get(c, ()))
                    for c in range(start, min(start + bucket, hi + 1)))
        span = min(start + bucket, hi + 1) - start
        series.append((start, total / span))
    return series
