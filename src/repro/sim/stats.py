"""Execution statistics gathered by the node simulator.

The paper reports dynamic cycle count, operation count, and function
unit utilization (average operations executed per cycle per unit class);
this module collects those plus memory, interconnect, and arbitration
detail used by the later experiments.
"""

from collections import Counter

from ..isa.operations import UnitClass

#: Engine-bookkeeping counters on :class:`Stats` that are *not*
#: architectural quantities: they differ between the fused and unfused
#: kernels by design, stay out of :meth:`Stats.summary`, and must be
#: excluded from any cross-engine equality check (the equivalence
#: suite and the sanitizer's shadow digest both key off this tuple).
ENGINE_STAT_FIELDS = ("fused_dispatches", "defuse_reasons",
                      "quarantined_blocks", "batch_lanes",
                      "batch_peeled_lanes")


class Stats:
    """Mutable counters filled in during simulation.

    ``unit_counts`` maps unit-class names (``"iu"``, ``"fpu"``, ...) to
    the number of units of that class in the machine; :meth:`summary`
    uses it to normalize per-class utilization into [0, 1].  An empty
    dict (bare ``Stats()``) leaves the values unnormalized.
    """

    def __init__(self, unit_counts=None):
        self.unit_counts = dict(unit_counts or {})
        self.cycles = 0
        self.issued_by_kind = Counter()
        self.issued_by_unit = Counter()
        self.issued_by_thread = Counter()
        self.total_operations = 0
        self.arbitration_losses = 0
        self.writeback_conflicts = 0
        self.writeback_grants = 0
        self.memory_accesses = 0
        self.memory_misses = 0
        self.memory_parked = 0
        self.memory_queue_waits = 0
        self.opcache_misses = 0
        self.fault_reroutes = 0
        self.fault_issue_stalls = 0
        self.fault_writeback_stalls = 0
        self.fault_mem_stall_cycles = 0
        self.fault_blackout_stalls = 0
        self.fault_presence_stalls = 0
        self.spawn_queue_waits = 0
        # Superblock dispatches executed by the fused event kernel.  An
        # engine implementation detail, not an architectural quantity:
        # deliberately absent from summary() so fused and unfused runs
        # stay digest-identical, and excluded from the equivalence
        # suite's stats comparison (see ENGINE_STAT_FIELDS).
        self.fused_dispatches = 0
        # Why fusion declined to dispatch, by reason (same engine-only
        # status as fused_dispatches).  The counted sites are the
        # guards a block passed warmup for but failed at dispatch time;
        # the ubiquitous "thread not at a block entry" case is not
        # counted — it would dominate every profile with noise.
        self.defuse_reasons = Counter()
        # Superblock entries quarantined by the sanitizer (the count of
        # distinct (program, entry) pairs barred from dispatch).
        self.quarantined_blocks = 0
        # Batch-lane engine bookkeeping (repro.sim.batch): how many
        # sweep lanes shared this simulation and how many were peeled
        # off to the scalar kernel mid-run.  Engine-only status, like
        # fused_dispatches: absent from summary(), excluded from
        # cross-kernel digests via ENGINE_STAT_FIELDS.
        self.batch_lanes = 0
        self.batch_peeled_lanes = 0
        self.threads_spawned = 0
        self.threads_finished = 0
        self.peak_active_threads = 0
        self.thread_spawn_cycle = {}
        self.thread_finish_cycle = {}

    # -- recording ------------------------------------------------------

    def record_issue(self, unit_slot, thread_id):
        self.issued_by_kind[unit_slot.kind] += 1
        self.issued_by_unit[unit_slot.uid] += 1
        self.issued_by_thread[thread_id] += 1
        self.total_operations += 1

    # -- reporting ------------------------------------------------------

    def utilization(self, kind):
        """Average operations of this unit class executed per cycle."""
        if self.cycles == 0:
            return 0.0
        return self.issued_by_kind[kind] / float(self.cycles)

    def utilization_table(self):
        """Utilization per unit class, keyed by the class *name*
        (``"iu"``, ``"fpu"``, ``"mem"``, ``"bru"``) so the table — and
        everything built on it — serializes straight to JSON."""
        return {kind.value: self.utilization(kind) for kind in UnitClass}

    def summary(self):
        """A flat, JSON-serializable digest of the run (plain string
        keys, int/float values only — ``json.dumps(stats.summary())``
        must always work; ``repro bench`` and the experiment reports
        dump it raw).

        Per-class ``*_util`` values are *normalized*: average busy
        fraction per unit of the class, in [0, 1] (the raw ops/cycle
        table — which can exceed 1.0 with several units per class — is
        :meth:`utilization_table`).  The raw per-class issue counts are
        reported under ``*_issued``."""
        util = self.utilization_table()

        def norm(kind):
            count = self.unit_counts.get(kind.value, 1) or 1
            return util[kind.value] / count

        return {
            "cycles": self.cycles,
            "operations": self.total_operations,
            "fpu_util": norm(UnitClass.FPU),
            "iu_util": norm(UnitClass.IU),
            "mem_util": norm(UnitClass.MEM),
            "bru_util": norm(UnitClass.BRU),
            "fpu_issued": self.issued_by_kind[UnitClass.FPU],
            "iu_issued": self.issued_by_kind[UnitClass.IU],
            "mem_issued": self.issued_by_kind[UnitClass.MEM],
            "bru_issued": self.issued_by_kind[UnitClass.BRU],
            "threads": self.threads_spawned,
            "memory_accesses": self.memory_accesses,
            "memory_misses": self.memory_misses,
            "memory_parked": self.memory_parked,
            "memory_queue_waits": self.memory_queue_waits,
            "writeback_conflicts": self.writeback_conflicts,
            "arbitration_losses": self.arbitration_losses,
            "opcache_misses": self.opcache_misses,
            "fault_reroutes": self.fault_reroutes,
            "fault_stall_cycles": self.fault_mem_stall_cycles,
        }

    def __str__(self):
        pairs = sorted(self.summary().items())
        return ", ".join("%s=%s" % (k, round(v, 3) if isinstance(v, float)
                                    else v) for k, v in pairs)
