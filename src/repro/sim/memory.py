"""Simulated node memory: presence bits, synchronizing accesses, and a
statistical latency model.

Every location carries a valid (presence) bit.  The six load/store
flavors of the paper's Table 1 check a precondition against that bit and
apply a postcondition on completion.  References whose precondition is
not met are *held in the memory system* and reactivate when a subsequent
reference changes the location's bit (split-transaction protocol), so
the issuing memory unit is free to serve other operations.

Latency is statistical (hit latency, miss rate, uniform miss penalty);
banks are interleaved and conflict-free, exactly as the paper assumes —
but references to the *same address* are serialized in arrival order,
which both matches real hardware and makes producer/consumer and
atomic-update idioms deterministic.
"""

import heapq
from collections import deque
from dataclasses import dataclass, field

from ..errors import SimulationError
from ..isa.operations import (POST_EMPTY, POST_FULL, POST_KEEP, PRE_ALWAYS,
                              PRE_EMPTY, PRE_FULL)


@dataclass(slots=True)
class MemRequest:
    """One in-progress memory reference.

    ``spec`` caches the resolved :class:`OpcodeSpec` so the memory
    system's hot paths never repeat the registry lookup behind
    ``op.spec``; both kernels pass it at construction (and
    ``__post_init__`` backfills it for hand-built requests).
    """

    thread: object
    op: object
    unit_slot: object
    addr: int
    store_value: object = None
    submit_cycle: int = 0
    value: object = None          # filled in for loads on completion
    arrival: int = 0              # arrival sequence number (FIFO key)
    spec: object = None           # resolved op.spec (cached)

    def __post_init__(self):
        if self.spec is None:
            self.spec = self.op.spec

    @property
    def is_load(self):
        return self.spec.is_load


class MemorySystem:
    """The node's interleaved, presence-bit-synchronized memory."""

    def __init__(self, spec, rng, stats, size=65536, injector=None):
        self.spec = spec
        self.rng = rng
        self.stats = stats
        self.size = size
        self.injector = injector      # optional FaultInjector
        self._values = {}
        self._empty = set()
        self._busy = set()            # addresses with a reference in service
        self._queues = {}             # addr -> deque of waiting requests
        self._parked = {}             # addr -> list of precondition waiters
        self._in_flight = []          # heap of (ready, seq, request)
        self._deferred_bits = []      # heap of (ready, seq, addr, post)
        self._last_touch = {}         # addr -> tid of last completed access
        self._seq = 0
        self._arrivals = 0

    # -- direct access (loader / result readout) ------------------------

    def poke(self, addr, value, full=True):
        self._check_addr(addr)
        self._values[addr] = value
        if full:
            self._empty.discard(addr)
        else:
            self._empty.add(addr)

    def peek(self, addr):
        self._check_addr(addr)
        return self._values.get(addr, 0)

    def is_full(self, addr):
        return addr not in self._empty

    def _check_addr(self, addr):
        if not 0 <= addr < self.size:
            raise SimulationError("address %r out of range [0, %d)"
                                  % (addr, self.size))

    # -- request lifecycle ----------------------------------------------

    def submit(self, request, cycle):
        """Accept a reference from a memory unit at the given cycle."""
        self._check_addr(request.addr)
        request.submit_cycle = cycle
        self._arrivals += 1
        request.arrival = self._arrivals
        addr = request.addr
        if addr in self._busy or self._queues.get(addr):
            self._queues.setdefault(addr, deque()).append(request)
            self.stats.memory_queue_waits += 1
        else:
            self._begin_service(request, cycle)

    def _precondition_met(self, request):
        pre = request.spec.precondition
        if pre == PRE_ALWAYS:
            return True
        if pre == PRE_FULL:
            return self.is_full(request.addr)
        if pre == PRE_EMPTY:
            return not self.is_full(request.addr)
        raise AssertionError("unknown precondition %r" % pre)

    def _begin_service(self, request, cycle):
        if not self._precondition_met(request):
            self._parked.setdefault(request.addr, []).append(request)
            self.stats.memory_parked += 1
            return
        self._busy.add(request.addr)
        latency = self.spec.draw_latency(self.rng)
        self.stats.memory_accesses += 1
        if latency > self.spec.hit_latency:
            self.stats.memory_misses += 1
        if self.injector is not None:
            latency += self.injector.memory_stall(request.addr, cycle)
        self._seq += 1
        heapq.heappush(self._in_flight,
                       (cycle + latency - 1, self._seq, request))

    def _apply(self, request, cycle):
        """Perform the access and apply the Table 1 postcondition.
        Returns True when the presence bit changed.  A presence_stall
        fault defers the bit update (the access itself completes)."""
        addr = request.addr
        was_full = addr not in self._empty
        spec = request.spec
        if spec.is_load:
            request.value = self._values.get(addr, 0)
        else:
            self._values[addr] = request.store_value
        self._last_touch[addr] = request.thread.tid
        post = spec.postcondition
        if post not in (POST_FULL, POST_EMPTY):
            if post != POST_KEEP:
                raise AssertionError("unknown postcondition %r" % post)
            return False
        if self.injector is not None:
            delay = self.injector.presence_delay(addr, cycle)
            if delay:
                self._seq += 1
                heapq.heappush(self._deferred_bits,
                               (cycle + delay, self._seq, addr, post))
                return False
        if post == POST_FULL:
            self._empty.discard(addr)
        else:
            self._empty.add(addr)
        return self.is_full(addr) != was_full

    def tick(self, cycle):
        """Advance one cycle; return the requests completed this cycle
        (loads carry their value)."""
        completed = []
        changed_addrs = []
        while self._deferred_bits and self._deferred_bits[0][0] <= cycle:
            __, __, addr, post = heapq.heappop(self._deferred_bits)
            was_full = self.is_full(addr)
            if post == POST_FULL:
                self._empty.discard(addr)
            else:
                self._empty.add(addr)
            if self.is_full(addr) != was_full:
                changed_addrs.append(addr)
        while self._in_flight and self._in_flight[0][0] <= cycle:
            __, __, request = heapq.heappop(self._in_flight)
            if self._apply(request, cycle):
                changed_addrs.append(request.addr)
            self._busy.discard(request.addr)
            completed.append(request)
        # A changed presence bit reactivates parked references: they
        # rejoin the service queue, which stays ordered by arrival so a
        # reference that arrived first is retried first.
        for addr in changed_addrs:
            waiters = self._parked.pop(addr, None)
            if waiters:
                queue = self._queues.get(addr, deque())
                merged = sorted(list(queue) + waiters,
                                key=lambda r: r.arrival)
                self._queues[addr] = deque(merged)
        # Start service for queued references on now-free addresses;
        # service begins next cycle (per-address serialization).
        for addr in [a for a, q in self._queues.items() if q]:
            while addr not in self._busy and self._queues.get(addr):
                request = self._queues[addr].popleft()
                self._begin_service(request, cycle + 1)
            if not self._queues.get(addr):
                self._queues.pop(addr, None)
        return completed

    # -- state inspection -------------------------------------------------

    def idle(self):
        """True when nothing is in flight, queued, parked, or deferred."""
        return (not self._in_flight and not self._parked
                and not self._deferred_bits
                and not any(self._queues.values()))

    def has_in_flight(self):
        return bool(self._in_flight) or bool(self._deferred_bits)

    def next_event_cycle(self):
        """Earliest cycle an in-flight reference completes or a deferred
        presence-bit update lands, or None when neither is pending."""
        wake = self._in_flight[0][0] if self._in_flight else None
        if self._deferred_bits:
            deferred = self._deferred_bits[0][0]
            wake = deferred if wake is None else min(wake, deferred)
        return wake

    def parked_summary(self):
        """Describe parked references (for deadlock diagnostics)."""
        lines = []
        for addr, waiters in sorted(self._parked.items()):
            state = "full" if self.is_full(addr) else "empty"
            ops = ", ".join("%s(thread %s)" % (w.op.name, w.thread.tid)
                            for w in waiters)
            lines.append("addr %d (%s): %s" % (addr, state, ops))
        return lines

    def wait_edges(self):
        """Wait-for edges for deadlock diagnostics: one
        ``(waiter_tid, addr, state, wanted, owner_tid)`` tuple per
        parked reference, where ``owner_tid`` is the thread whose
        completed access last touched the address (None if untouched) —
        the thread that put the location into its unsatisfying state."""
        edges = []
        for addr, waiters in sorted(self._parked.items()):
            state = "full" if self.is_full(addr) else "empty"
            for request in waiters:
                wanted = "full" if request.spec.precondition == PRE_FULL \
                    else "empty"
                edges.append((request.thread.tid, addr, state, wanted,
                              self._last_touch.get(addr)))
        return edges

    def read_range(self, base, size):
        return [self._values.get(addr, 0)
                for addr in range(base, base + size)]

    def presence_range(self, base, size):
        return [self.is_full(addr) for addr in range(base, base + size)]
