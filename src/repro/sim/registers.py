"""Per-thread, per-cluster register frames with presence bits.

Processor coupling uses data presence bits in registers for low level
synchronization within a thread: an operation issues only when all its
source registers are valid; issuing clears the destination's valid bit,
and writeback sets it (paper Section 2).  Each thread owns a logical
register set distributed over the clusters it uses, so the simulator
keeps one :class:`RegisterFrame` per (thread, cluster) pair.

Frames are unbounded maps because the paper's compiler assumes an
infinite register supply; peak usage is reported, not enforced.
"""

from ..errors import SimulationError


class RegisterFrame:
    """One thread's registers within one cluster's register file."""

    def __init__(self, cluster):
        self.cluster = cluster
        self._values = {}
        self._invalid = set()

    def is_valid(self, index):
        return index not in self._invalid

    def read(self, index):
        """Read a register; the caller must have checked validity."""
        if index in self._invalid:
            raise SimulationError(
                "read of invalid register c%d.r%d (issue logic must wait "
                "for the presence bit)" % (self.cluster, index))
        return self._values.get(index, 0)

    def peek(self, index):
        """Read a register value regardless of its presence bit
        (diagnostics only)."""
        return self._values.get(index, 0)

    def invalidate(self, index):
        """Clear the presence bit (done when an operation issues)."""
        self._invalid.add(index)

    def write(self, index, value):
        """Write a value and set the presence bit (writeback)."""
        self._values[index] = value
        self._invalid.discard(index)

    def force(self, index, value):
        """Initialize a register outside the writeback path (thread
        spawn argument copy)."""
        self._values[index] = value
        self._invalid.discard(index)

    def invalid_registers(self):
        """Registers currently awaiting writeback (diagnostics)."""
        return sorted(self._invalid)

    def used_registers(self):
        return sorted(self._values)

    def __len__(self):
        return len(self._values)
