"""Per-thread, per-cluster register frames with presence bits.

Processor coupling uses data presence bits in registers for low level
synchronization within a thread: an operation issues only when all its
source registers are valid; issuing clears the destination's valid bit,
and writeback sets it (paper Section 2).  Each thread owns a logical
register set distributed over the clusters it uses, so the simulator
keeps one :class:`RegisterFrame` per (thread, cluster) pair.

Frames are unbounded because the paper's compiler assumes an infinite
register supply; peak usage is reported, not enforced.  The storage is
a growable list of values plus two integer bitmasks — ``_invalid``
(presence bits, set bit = *awaiting writeback*) and ``_used`` (written
at least once) — so the simulator's hottest operations (validity
checks, reads, writes) are index and bit operations instead of dict and
set traffic.  The event kernel's inner loops manipulate these fields
directly; everything else should go through the methods.
"""

from ..errors import SimulationError


def _bit_indices(mask):
    """The set bit positions of ``mask``, ascending."""
    out = []
    index = 0
    while mask:
        if mask & 1:
            out.append(index)
        mask >>= 1
        index += 1
    return out


class RegisterFrame:
    """One thread's registers within one cluster's register file."""

    __slots__ = ("cluster", "_values", "_invalid", "_used")

    def __init__(self, cluster):
        self.cluster = cluster
        self._values = []
        self._invalid = 0
        self._used = 0

    def is_valid(self, index):
        return not (self._invalid >> index) & 1

    def read(self, index):
        """Read a register; the caller must have checked validity."""
        if (self._invalid >> index) & 1:
            raise SimulationError(
                "read of invalid register c%d.r%d (issue logic must wait "
                "for the presence bit)" % (self.cluster, index))
        values = self._values
        return values[index] if index < len(values) else 0

    def peek(self, index):
        """Read a register value regardless of its presence bit
        (diagnostics only)."""
        values = self._values
        return values[index] if index < len(values) else 0

    def invalidate(self, index):
        """Clear the presence bit (done when an operation issues).  The
        value slot is grown now so the eventual writeback is a plain
        index store."""
        values = self._values
        if index >= len(values):
            values.extend([0] * (index + 1 - len(values)))
        self._invalid |= 1 << index

    def write(self, index, value):
        """Write a value and set the presence bit (writeback)."""
        values = self._values
        if index >= len(values):
            values.extend([0] * (index + 1 - len(values)))
        values[index] = value
        bit = 1 << index
        self._invalid &= ~bit
        self._used |= bit

    def force(self, index, value):
        """Initialize a register outside the writeback path (thread
        spawn argument copy)."""
        self.write(index, value)

    def invalid_registers(self):
        """Registers currently awaiting writeback (diagnostics)."""
        return _bit_indices(self._invalid)

    def used_registers(self):
        return _bit_indices(self._used)

    def __len__(self):
        return self._used.bit_count()
