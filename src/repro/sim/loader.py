"""Program loading: static validation against a machine configuration
and construction of the initial memory image."""

from ..errors import SimulationError
from ..isa.operations import UnitClass
from ..isa.instruction import parse_unit_id


def validate_program(program, config):
    """Check that a program only names units/clusters the machine has
    and that every non-fork source register is local to its unit's
    cluster (units read only their own cluster's register file)."""
    program.validate()
    for thread in program.threads.values():
        for index, word in enumerate(thread.instructions):
            if not word.slots:
                raise SimulationError(
                    "thread %r word %d is empty" % (thread.name, index))
            for uid, op in word:
                slot = config.unit_by_id.get(uid)
                if slot is None:
                    raise SimulationError(
                        "thread %r uses unit %s absent from machine %s"
                        % (thread.name, uid, config.name))
                for src in op.srcs:
                    if hasattr(src, "cluster") and src.cluster != slot.cluster:
                        raise SimulationError(
                            "thread %r: %s at %s reads remote register %s "
                            "(units read only their own register file)"
                            % (thread.name, op.name, uid, src))
                for dest in op.dests:
                    if not 0 <= dest.cluster < config.n_clusters:
                        raise SimulationError(
                            "thread %r: destination %s names a missing "
                            "cluster" % (thread.name, dest))
                for child_reg, value in op.bindings:
                    if not 0 <= child_reg.cluster < config.n_clusters:
                        raise SimulationError(
                            "thread %r: fork binding %s names a missing "
                            "cluster" % (thread.name, child_reg))


def load_memory(memory_system, program, overrides=None):
    """Install the program's data segment (and optional per-symbol
    overrides from the experiment harness) into simulated memory."""
    overrides = overrides or {}
    for name in overrides:
        if name not in program.data:
            raise SimulationError("override for unknown symbol %r" % name)
    for name, sym in program.data.symbols.items():
        values = overrides.get(name, sym.init_values)
        if values is not None and len(values) != sym.size:
            raise SimulationError(
                "symbol %r: %d values for size %d"
                % (name, len(values), sym.size))
        for offset, addr in enumerate(sym.addresses()):
            value = values[offset] if values is not None else 0
            memory_system.poke(addr, value, full=sym.initially_full)
