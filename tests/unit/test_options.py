"""Compiler option plumbing."""

import pytest

from repro import compile_program, run_program
from repro.compiler.options import ABLATIONS, CompilerOptions, \
    DEFAULT_OPTIONS
from repro.machine import baseline

SOURCE = """
(program
  (global A 8)
  (global out 8)
  (main
    (for (i 0 8)
      (aset! out i (+ (aref A i) (aref A i))))))
"""


class TestOptions:
    def test_without_helper(self):
        options = DEFAULT_OPTIONS.without(load_elimination=False)
        assert not options.load_elimination
        assert options.optimize
        assert DEFAULT_OPTIONS.load_elimination    # original untouched

    def test_ablations_cover_every_flag(self):
        flags = set(vars(DEFAULT_OPTIONS))
        toggled = set()
        for options in ABLATIONS.values():
            for flag in flags:
                if getattr(options, flag) != getattr(DEFAULT_OPTIONS,
                                                     flag):
                    toggled.add(flag)
        assert toggled == flags

    def test_optimize_false_shorthand(self):
        config = baseline()
        via_flag = compile_program(SOURCE, config, mode="sts",
                                   optimize=False)
        via_options = compile_program(
            SOURCE, config, mode="sts",
            options=CompilerOptions(optimize=False))
        assert via_flag.static_operation_count() == \
            via_options.static_operation_count()

    def test_no_load_elimination_keeps_both_loads(self):
        config = baseline()
        full = compile_program(SOURCE, config, mode="sts")
        ablated = compile_program(
            SOURCE, config, mode="sts",
            options=DEFAULT_OPTIONS.without(load_elimination=False))
        assert ablated.static_operation_count() > \
            full.static_operation_count()

    def test_every_ablation_is_correct(self):
        config = baseline()
        inputs = {"A": [0.5 * i for i in range(8)]}
        expected = [i * 1.0 for i in range(8)]
        for name, options in ABLATIONS.items():
            compiled = compile_program(SOURCE, config, mode="sts",
                                       options=options)
            result = run_program(compiled.program, config,
                                 overrides=inputs)
            assert result.read_symbol("out") == expected, name
