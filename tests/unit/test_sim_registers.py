"""Register frames and presence bits."""

import pytest

from repro.errors import SimulationError
from repro.sim.registers import RegisterFrame


class TestPresenceBits:
    def test_registers_start_valid_zero(self):
        frame = RegisterFrame(0)
        assert frame.is_valid(7)
        assert frame.read(7) == 0

    def test_invalidate_then_write(self):
        frame = RegisterFrame(0)
        frame.invalidate(3)
        assert not frame.is_valid(3)
        frame.write(3, 42)
        assert frame.is_valid(3)
        assert frame.read(3) == 42

    def test_read_invalid_raises(self):
        frame = RegisterFrame(0)
        frame.invalidate(1)
        with pytest.raises(SimulationError):
            frame.read(1)

    def test_peek_ignores_presence(self):
        frame = RegisterFrame(0)
        frame.write(1, 9)
        frame.invalidate(1)
        assert frame.peek(1) == 9

    def test_force_sets_valid(self):
        frame = RegisterFrame(0)
        frame.invalidate(2)
        frame.force(2, 5)
        assert frame.is_valid(2) and frame.read(2) == 5

    def test_invalid_registers_listing(self):
        frame = RegisterFrame(0)
        frame.invalidate(5)
        frame.invalidate(2)
        assert frame.invalid_registers() == [2, 5]

    def test_used_registers(self):
        frame = RegisterFrame(1)
        frame.write(0, 1)
        frame.write(4, 2)
        assert frame.used_registers() == [0, 4]
        assert len(frame) == 2
