"""Opcode registry and semantics (including Table 1 conditions)."""

import math

import pytest

from repro.errors import AsmError
from repro.isa.operations import (POST_EMPTY, POST_FULL, POST_KEEP,
                                  PRE_ALWAYS, PRE_EMPTY, PRE_FULL,
                                  UnitClass, all_opcodes, opcode)


class TestRegistry:
    def test_unknown_opcode_raises(self):
        with pytest.raises(AsmError):
            opcode("fma")

    def test_all_opcodes_nonempty(self):
        table = all_opcodes()
        assert "iadd" in table and "fork" in table
        assert len(table) > 40

    def test_unit_classes(self):
        assert opcode("iadd").unit is UnitClass.IU
        assert opcode("fmul").unit is UnitClass.FPU
        assert opcode("ld").unit is UnitClass.MEM
        assert opcode("brt").unit is UnitClass.BRU


class TestIntegerSemantics:
    def test_truncating_division(self):
        idiv = opcode("idiv").semantics
        assert idiv(7, 2) == 3
        assert idiv(-7, 2) == -3      # C-style truncation, not floor
        assert idiv(7, -2) == -3
        assert idiv(-7, -2) == 3

    def test_mod_matches_c(self):
        imod = opcode("imod").semantics
        assert imod(7, 2) == 1
        assert imod(-7, 2) == -1
        assert imod(7, -2) == 1

    def test_division_by_zero_raises(self):
        with pytest.raises(ArithmeticError):
            opcode("idiv").semantics(1, 0)

    def test_shifts(self):
        assert opcode("ishl").semantics(3, 2) == 12
        assert opcode("ishr").semantics(12, 2) == 3

    def test_compare_produces_int(self):
        assert opcode("ilt").semantics(1, 2) == 1
        assert opcode("ige").semantics(1, 2) == 0

    def test_move_preserves_value(self):
        assert opcode("imov").semantics(2.5) == 2.5   # copies, no cast


class TestFloatSemantics:
    def test_arithmetic(self):
        assert opcode("fadd").semantics(1, 2) == 3.0
        assert opcode("fdiv").semantics(1.0, 4.0) == 0.25

    def test_sqrt(self):
        assert opcode("fsqrt").semantics(9.0) == 3.0

    def test_conversions(self):
        assert opcode("itof").semantics(3) == 3.0
        assert opcode("ftoi").semantics(3.9) == 3

    def test_commutativity_flags(self):
        assert opcode("fadd").commutative
        assert not opcode("fsub").commutative


class TestMemoryFlavors:
    """The exact precondition/postcondition pairs of Table 1."""

    @pytest.mark.parametrize("name,pre,post", [
        ("ld", PRE_ALWAYS, POST_KEEP),
        ("ld_ff", PRE_FULL, POST_KEEP),
        ("ld_fe", PRE_FULL, POST_EMPTY),
        ("st", PRE_ALWAYS, POST_FULL),
        ("st_ff", PRE_FULL, POST_KEEP),
        ("st_ef", PRE_EMPTY, POST_FULL),
    ])
    def test_table1(self, name, pre, post):
        spec = opcode(name)
        assert spec.precondition == pre
        assert spec.postcondition == post
        assert spec.is_memory

    def test_load_store_flags(self):
        assert opcode("ld").is_load and not opcode("ld").is_store
        assert opcode("st").is_store and not opcode("st").is_load


class TestControl:
    def test_branch_flags(self):
        assert opcode("br").is_branch
        assert opcode("brt").is_branch
        assert opcode("halt").is_halt
        assert opcode("fork").is_fork

    def test_sink_blocks_without_writing(self):
        spec = opcode("sink")
        assert spec.n_srcs == 1
        assert not spec.has_dest
        assert spec.unit is UnitClass.IU
