"""Per-cycle writeback port/bus arbitration."""

from repro.machine.interconnect import CommScheme, InterconnectSpec
from repro.sim.interconnect import WritebackNetwork
from repro.sim.stats import Stats


def network(scheme, n_clusters=4):
    stats = Stats()
    spec = InterconnectSpec.from_scheme(scheme)
    return WritebackNetwork(spec, n_clusters, stats), stats


class TestFull:
    def test_unlimited(self):
        net, __ = network(CommScheme.FULL)
        assert all(net.try_grant(0, 1) for __ in range(50))
        assert all(net.try_grant(2, 2) for __ in range(50))


class TestTriPort:
    def test_two_remote_writes_per_file(self):
        net, stats = network(CommScheme.TRI_PORT)
        assert net.try_grant(0, 1)
        assert net.try_grant(2, 1)
        assert not net.try_grant(3, 1)      # both global ports used
        assert stats.writeback_conflicts == 1

    def test_local_writes_unthrottled(self):
        net, __ = network(CommScheme.TRI_PORT)
        assert all(net.try_grant(1, 1) for __ in range(10))

    def test_ports_reset_each_cycle(self):
        net, __ = network(CommScheme.TRI_PORT)
        net.try_grant(0, 1)
        net.try_grant(2, 1)
        assert not net.try_grant(3, 1)
        net.new_cycle()
        assert net.try_grant(3, 1)

    def test_files_independent(self):
        net, __ = network(CommScheme.TRI_PORT)
        assert net.try_grant(0, 1) and net.try_grant(2, 1)
        assert net.try_grant(0, 2) and net.try_grant(1, 2)


class TestDualPort:
    def test_one_remote_write_per_file(self):
        net, __ = network(CommScheme.DUAL_PORT)
        assert net.try_grant(0, 1)
        assert not net.try_grant(2, 1)


class TestSinglePort:
    def test_local_and_remote_share_the_port(self):
        net, __ = network(CommScheme.SINGLE_PORT)
        assert net.try_grant(1, 1)          # local takes the only port
        assert not net.try_grant(0, 1)      # remote rejected
        assert net.try_grant(0, 2)          # other file unaffected


class TestSharedBus:
    def test_one_remote_write_machine_wide(self):
        net, __ = network(CommScheme.SHARED_BUS)
        assert net.try_grant(0, 1)
        assert not net.try_grant(2, 3)      # bus already used
        assert net.try_grant(3, 3)          # local writes bypass the bus

    def test_bus_frees_next_cycle(self):
        net, __ = network(CommScheme.SHARED_BUS)
        assert net.try_grant(0, 1)
        net.new_cycle()
        assert net.try_grant(2, 3)


class TestAreaModel:
    def test_restricted_schemes_are_smaller(self):
        for scheme in CommScheme:
            spec = InterconnectSpec.from_scheme(scheme)
            area = spec.relative_area(4, 3)
            assert 0 < area <= 1.0
            if scheme is not CommScheme.FULL:
                assert area < 0.6
