"""The compile driver: modes, variants, reports, linking."""

import pytest

from repro.compiler import compile_program
from repro.errors import CompileError
from repro.isa.operations import UnitClass
from repro.isa.instruction import parse_unit_id
from repro.machine import baseline

THREADED = """
(program
  (const N 8)
  (global A N)
  (global done N :int :empty)
  (kernel work (i)
    (aset! A i (float (* i 2)))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""

SINGLE = """
(program
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (* i i)))))
"""


class TestModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(CompileError):
            compile_program(SINGLE, baseline(), mode="vliw")

    def test_single_thread_modes_reject_forks(self):
        for mode in ("seq", "sts", "ideal"):
            with pytest.raises(CompileError, match="single-threaded"):
                compile_program(THREADED, baseline(), mode=mode)

    def test_seq_uses_only_cluster_zero(self):
        compiled = compile_program(SINGLE, baseline(), mode="seq")
        for word in compiled.program.thread("main").instructions:
            for uid, __ in word:
                cluster, kind, __ = parse_unit_id(uid)
                if kind is not UnitClass.BRU:
                    assert cluster == 0

    def test_tpe_creates_pinned_variants(self):
        compiled = compile_program(THREADED, baseline(), mode="tpe")
        variants = [n for n in compiled.program.threads if "@" in n]
        # 8 fork sites round-robin over 4 clusters -> 4 variants.
        assert sorted(variants) == ["work@0", "work@1", "work@2",
                                    "work@3"]
        for variant in variants:
            pin = int(variant.split("@")[1])
            thread = compiled.program.thread(variant)
            for word in thread.instructions:
                for uid, __ in word:
                    cluster, kind, __ = parse_unit_id(uid)
                    if kind is not UnitClass.BRU:
                        assert cluster == pin

    def test_coupled_creates_rotation_variants(self):
        compiled = compile_program(THREADED, baseline(), mode="coupled")
        variants = [n for n in compiled.program.threads if "@" in n]
        assert len(set(variants)) == 4

    def test_cluster_hint_respected(self):
        source = THREADED.replace("(fork (work i))",
                                  "(fork (work i) :cluster 2)") \
            if "(fork (work i))" in THREADED else THREADED
        source = """
(program
  (global A 1)
  (global done 1 :int :empty)
  (kernel work (i) (aset! A 0 1.0) (aset-ef! done 0 1))
  (main (fork (work 3) :cluster 2)
        (sync (aref-ff done 0))))
"""
        compiled = compile_program(source, baseline(), mode="tpe")
        assert "work@2" in compiled.program.threads


class TestReports:
    def test_reports_cover_all_threads(self):
        compiled = compile_program(THREADED, baseline(), mode="coupled")
        assert set(compiled.reports) == set(compiled.program.threads)

    def test_peak_registers_positive(self):
        compiled = compile_program(SINGLE, baseline(), mode="sts")
        peaks = compiled.peak_registers()
        assert peaks and all(v > 0 for v in peaks.values())

    def test_static_operation_count(self):
        compiled = compile_program(SINGLE, baseline(), mode="sts")
        assert compiled.static_operation_count() == \
            compiled.program.static_operation_count()

    def test_optimization_flag_matters(self):
        optimized = compile_program(SINGLE, baseline(), mode="sts")
        raw = compile_program(SINGLE, baseline(), mode="sts",
                              optimize=False)
        assert raw.static_operation_count() >= \
            optimized.static_operation_count()


class TestLinking:
    def test_fork_bindings_match_child_params(self):
        compiled = compile_program(THREADED, baseline(), mode="coupled")
        for thread in compiled.program.threads.values():
            for word in thread.instructions:
                for __, op in word:
                    if op.spec.is_fork:
                        child = compiled.program.thread(op.target.name)
                        assert len(op.bindings) == len(child.param_regs)
                        for (dest, __), param in zip(op.bindings,
                                                     child.param_regs):
                            assert dest == param

    def test_data_segment_layout(self):
        compiled = compile_program(THREADED, baseline(), mode="coupled")
        data = compiled.program.data
        assert data["A"].size == 8
        assert data["done"].initially_full is False
        assert data["done"].base == data["A"].base + 8

    def test_program_validates(self):
        compiled = compile_program(THREADED, baseline(), mode="tpe")
        compiled.program.validate()
