"""The persistent on-disk compile cache (repro.compiler.cache)."""

import os
import pickle

from repro import baseline, compile_program, run_program
from repro.compiler import CompileCache, default_cache
from repro.compiler.cache import (cache_disabled_by_env, compile_key,
                                  default_cache_dir)
from repro.compiler.options import DEFAULT_OPTIONS, CompilerOptions

SOURCE = """
(program
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (* i 2)))))
"""


class TestCompileKey:
    def test_stable_for_identical_inputs(self):
        config = baseline()
        assert compile_key(SOURCE, "sts", config, DEFAULT_OPTIONS) == \
            compile_key(SOURCE, "sts", config, DEFAULT_OPTIONS)

    def test_sensitive_to_every_component(self):
        config = baseline()
        base = compile_key(SOURCE, "sts", config, DEFAULT_OPTIONS)
        assert compile_key(SOURCE + " ", "sts", config,
                           DEFAULT_OPTIONS) != base
        assert compile_key(SOURCE, "coupled", config,
                           DEFAULT_OPTIONS) != base
        from repro.machine.config import unit_mix
        assert compile_key(SOURCE, "sts", unit_mix(2, 2),
                           DEFAULT_OPTIONS) != base
        assert compile_key(SOURCE, "sts", config,
                           CompilerOptions(optimize=False)) != base

    def test_schedule_invariant_config_changes_share_keys(self):
        # Seed and interconnect don't feed the scheduler, so the same
        # compilation is reused across them.
        config = baseline()
        assert compile_key(SOURCE, "sts", config, DEFAULT_OPTIONS) == \
            compile_key(SOURCE, "sts", config.with_seed(99),
                        DEFAULT_OPTIONS)

    def test_parsed_ast_is_not_cacheable(self):
        from repro.compiler import parse_program
        ast = parse_program(SOURCE)
        assert compile_key(ast, "sts", baseline(), DEFAULT_OPTIONS) \
            is None


class TestCompileCache:
    def test_round_trip_through_driver(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        config = baseline()
        first = compile_program(SOURCE, config, mode="sts", cache=cache)
        assert cache.misses == 1 and cache.hits == 0
        second = compile_program(SOURCE, config, mode="sts", cache=cache)
        assert cache.hits == 1
        assert second is not first          # unpickled copy
        a = run_program(first.program, config)
        b = run_program(second.program, config)
        assert a.cycles == b.cycles
        assert a.read_symbol("out") == b.read_symbol("out") == \
            [0, 2, 4, 6]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        config = baseline()
        compile_program(SOURCE, config, mode="sts", cache=cache)
        key = compile_key(SOURCE, "sts", config, DEFAULT_OPTIONS)
        path = cache._path(key)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.get(key) is None
        assert not os.path.exists(path)
        # The driver recompiles and repopulates.
        compiled = compile_program(SOURCE, config, mode="sts",
                                   cache=cache)
        assert compiled.program is not None
        assert os.path.exists(path)

    def test_missing_directory_is_tolerated(self, tmp_path):
        cache = CompileCache(str(tmp_path / "never-created"))
        assert cache.get("0" * 64) is None
        assert cache.clear() == 0

    def test_unpicklable_payload_is_silent(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        cache.put("0" * 64, lambda: None)   # lambdas don't pickle
        assert cache.get("0" * 64) is None

    def test_clear(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        compile_program(SOURCE, baseline(), mode="sts", cache=cache)
        assert cache.clear() == 1
        assert cache.clear() == 0

    def test_cached_program_pickles_standalone(self, tmp_path):
        # OpcodeSpec carries lambdas; __reduce__ interns it by name so
        # compiled programs survive pickling (cache and process pool).
        compiled = compile_program(SOURCE, baseline(), mode="sts")
        clone = pickle.loads(pickle.dumps(compiled))
        config = baseline()
        assert run_program(clone.program, config).read_symbol("out") == \
            run_program(compiled.program, config).read_symbol("out")


class TestStatsAndPrune:
    def _fill(self, tmp_path, sizes):
        """Create fake cache entries with increasing mtimes; returns
        their paths oldest-first."""
        paths = []
        for index, size in enumerate(sizes):
            path = tmp_path / ("entry%d.pkl" % index)
            path.write_bytes(b"x" * size)
            os.utime(path, (1000 + index, 1000 + index))
            paths.append(path)
        return paths

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        self._fill(tmp_path, [100, 250])
        (tmp_path / "not-an-entry.txt").write_text("ignored")
        stats = cache.stats()
        assert stats["root"] == str(tmp_path)
        assert stats["entries"] == 2
        assert stats["total_bytes"] == 350

    def test_stats_on_missing_dir(self, tmp_path):
        cache = CompileCache(str(tmp_path / "nonexistent"))
        stats = cache.stats()
        assert stats["entries"] == 0 and stats["total_bytes"] == 0

    def test_prune_evicts_oldest_first(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        paths = self._fill(tmp_path, [100, 100, 100])
        removed, freed = cache.prune(max_bytes=150)
        assert (removed, freed) == (2, 200)
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists()                   # newest survives

    def test_prune_noop_when_under_budget(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        self._fill(tmp_path, [100])
        assert cache.prune(max_bytes=1000) == (0, 0)
        assert cache.stats()["entries"] == 1

    def test_prune_to_zero_clears_everything(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        self._fill(tmp_path, [10, 20, 30])
        removed, freed = cache.prune(max_bytes=0)
        assert removed == 3 and freed == 60
        assert cache.stats()["entries"] == 0


class TestCacheCommand:
    def _run(self, *argv):
        import io
        from repro.cli import main
        out = io.StringIO()
        code = main(list(argv), out=out)
        return code, out.getvalue()

    def test_info(self, tmp_path):
        (tmp_path / "a.pkl").write_bytes(b"x" * 64)
        code, text = self._run("cache", "info", "--dir", str(tmp_path))
        assert code == 0
        assert "entries:       1" in text
        assert "64 B" in text

    def test_clear(self, tmp_path):
        (tmp_path / "a.pkl").write_bytes(b"x")
        (tmp_path / "b.pkl").write_bytes(b"y")
        code, text = self._run("cache", "clear", "--dir", str(tmp_path))
        assert code == 0
        assert "removed 2 entries" in text
        assert not list(tmp_path.glob("*.pkl"))

    def test_prune_requires_max_bytes(self, tmp_path):
        import pytest
        with pytest.raises(SystemExit):
            self._run("cache", "prune", "--dir", str(tmp_path))

    def test_prune(self, tmp_path):
        for index in range(3):
            path = tmp_path / ("e%d.pkl" % index)
            path.write_bytes(b"x" * 100)
            os.utime(path, (1000 + index, 1000 + index))
        code, text = self._run("cache", "prune", "--dir", str(tmp_path),
                               "--max-bytes", "150")
        assert code == 0
        assert "pruned 2 entries" in text
        assert "1 left" in text


class TestEnvironmentControls:
    def test_cache_dir_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert default_cache_dir() == str(tmp_path / "compile")

    def test_no_cache_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled_by_env()
        assert default_cache() is None

    def test_default_cache_enabled_otherwise(self, monkeypatch,
                                             tmp_path):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = default_cache()
        assert cache is not None
        assert cache.root == str(tmp_path / "compile")
