"""Experiment harness plumbing: report rendering, runner caching, CLI."""

import io

import pytest

from repro.experiments import paper, table2
from repro.experiments.cli import main as experiments_main
from repro.experiments.report import (format_bar_chart, format_grid,
                                      format_table)
from repro.experiments.runner import Harness, RunSpec
from repro.machine import baseline
from repro.sim.faults import FaultEvent, FaultPlan


class TestReportFormatting:
    def test_table_alignment(self):
        text = format_table(["name", "value"],
                            [["a", 1], ["long-name", 2.5]],
                            title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "long-name" in lines[4]
        # The value column starts at the same offset in every row.
        offset = lines[1].index("value")
        assert lines[3].index("1") == offset
        assert lines[4].index("2.50") == offset

    def test_floats_rendered_two_places(self):
        text = format_table(["x"], [[1.23456]])
        assert "1.23" in text and "1.2345" not in text

    def test_bar_chart_scales_to_peak(self):
        text = format_bar_chart([("a", 10), ("b", 5)], width=20)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") == 20
        assert b_line.count("#") == 10

    def test_bar_chart_empty(self):
        assert format_bar_chart([], title="t") == "t"

    def test_grid(self):
        text = format_grid({("r1", "c1"): 5, ("r1", "c2"): 6},
                           ["r1"], ["c1", "c2"])
        assert "r1" in text and "5" in text and "6" in text


class TestHarnessCaching:
    def test_run_is_cached(self):
        harness = Harness()
        config = baseline()
        first = harness.run("matrix", "seq", config)
        second = harness.run("matrix", "seq", config)
        assert first is second

    def test_compile_shared_across_interconnects(self):
        harness = Harness()
        config = baseline()
        a = harness.run("matrix", "seq", config)
        b = harness.run("matrix", "seq",
                        config.with_interconnect("tri-port"))
        assert a is not b
        assert a.compiled is b.compiled   # same schedule signature

    def test_inputs_stable_per_benchmark(self):
        harness = Harness(seed=3)
        assert harness.inputs_for("fft") is harness.inputs_for("fft")

    def test_validation_runs_by_default(self):
        result = Harness().run("model", "seq", baseline())
        assert result.verified

    def test_fault_plan_participates_in_run_key(self):
        # Regression: the run cache used to key on (benchmark, mode,
        # schedule signature) only, so a faulted config silently
        # returned the clean run's result.
        harness = Harness()
        clean_config = baseline()
        faulted_config = clean_config.with_faults(FaultPlan([
            FaultEvent("unit_offline", start=50, duration=1000,
                       unit="c0.iu0")]))
        clean = harness.run("matrix", "coupled", clean_config)
        faulted = harness.run("matrix", "coupled", faulted_config)
        assert clean is not faulted
        assert faulted.stats.fault_reroutes > 0
        assert clean.stats.fault_reroutes == 0
        # Cache still hits for a repeat of either.
        assert harness.run("matrix", "coupled", clean_config) is clean
        assert harness.run("matrix", "coupled", faulted_config) \
            is faulted

    def test_harness_seed_participates_in_run_key(self):
        a = Harness(seed=1).run("matrix", "seq")
        b = Harness(seed=2).run("matrix", "seq")
        assert a.cycles > 0 and b.cycles > 0    # distinct inputs both run

    def test_wall_clock_recorded(self):
        result = Harness().run("matrix", "seq")
        assert result.wall_seconds > 0.0
        assert result.cycles_per_second > 0.0


class TestRunMany:
    def test_serial_batch_matches_individual_runs(self):
        harness = Harness()
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled")]
        batch = harness.run_many(specs)
        assert batch[0] is harness.run("matrix", "seq")
        assert batch[1] is harness.run("matrix", "coupled")

    def test_tuple_specs_accepted(self):
        harness = Harness()
        batch = harness.run_many([("matrix", "seq")])
        assert batch[0].benchmark == "matrix"

    def test_duplicate_specs_share_one_run(self):
        harness = Harness()
        batch = harness.run_many([("matrix", "seq"), ("matrix", "seq")])
        assert batch[0] is batch[1]

    def test_parallel_results_merge_into_caches(self):
        harness = Harness()
        specs = [RunSpec("matrix", "seq"), RunSpec("matrix", "coupled")]
        batch = harness.run_many(specs, workers=2)
        assert [r.cycles for r in batch] == \
            [r.cycles for r in Harness().run_many(specs)]
        # Worker results landed in the parent caches: a repeat is a hit.
        assert harness.run("matrix", "seq") is batch[0]
        assert harness.run("matrix", "coupled") is batch[1]


class TestTable2Module:
    def test_rows_cover_all_modes(self):
        rows = table2.run(Harness())
        keys = {(r["benchmark"], r["mode"]) for r in rows}
        assert ("matrix", "ideal") in keys
        assert ("lud", "ideal") not in keys      # no ideal LUD
        assert len(keys) == 18

    def test_render_includes_paper_columns(self):
        rows = table2.run(Harness())
        text = table2.render(rows)
        assert "paper cycles" in text
        assert "1992" in text                    # paper's Matrix SEQ

    def test_figure4_renders_bars(self):
        rows = table2.run(Harness())
        text = table2.render_figure4(rows)
        assert "Figure 4" in text and "#" in text


class TestPaperData:
    def test_mode_order(self):
        assert paper.MODE_ORDER[0] == "seq"
        assert paper.MODE_ORDER[-1] == "ideal"

    def test_table2_is_consistent(self):
        # Every benchmark has a coupled entry to normalize against.
        benches = {b for b, __ in paper.TABLE2_CYCLES}
        for bench in benches:
            assert (bench, "coupled") in paper.TABLE2_CYCLES


class TestCli:
    def test_table3_target(self):
        out = io.StringIO()
        assert experiments_main(["table3"], out=out) == 0
        assert "Table 3" in out.getvalue()

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            experiments_main(["table9"], out=io.StringIO())


class TestCacheHitReporting:
    def test_fresh_compile_is_a_miss(self):
        harness = Harness(compile_cache=False)
        result = harness.run("matrix", "seq", baseline())
        assert result.cache_hit is False

    def test_in_memory_hit(self):
        # Same schedule signature across interconnects: the second run
        # reuses the in-memory compile and reports a hit.
        harness = Harness(compile_cache=False)
        config = baseline()
        first = harness.run("matrix", "seq", config)
        second = harness.run("matrix", "seq",
                             config.with_interconnect("tri-port"))
        assert first.cache_hit is False
        assert second.cache_hit is True

    def test_disk_hit(self, tmp_path):
        from repro.compiler import CompileCache
        config = baseline()
        cold = Harness(compile_cache=CompileCache(str(tmp_path)))
        assert cold.run("matrix", "seq", config).cache_hit is False
        warm = Harness(compile_cache=CompileCache(str(tmp_path)))
        assert warm.run("matrix", "seq", config).cache_hit is True
