"""Front-end parsing into the AST."""

import pytest

from repro.compiler.astnodes import (Aref, Aset, BinOp, FLOAT, Fork, If,
                                     IfExpr, INT, Num, Seq, SetVar, Sync,
                                     UnOp, Var, While)
from repro.compiler.frontend import parse_expr, parse_program, parse_stmt
from repro.compiler.sexpr import read_one
from repro.errors import CompileError


def expr(text):
    return parse_expr(read_one(text))


def stmt(text):
    return parse_stmt(read_one(text))


class TestExpressions:
    def test_variadic_fold(self):
        node = expr("(+ a b c)")
        assert isinstance(node, BinOp) and node.op == "+"
        assert isinstance(node.left, BinOp)

    def test_aref_flavors(self):
        assert expr("(aref A i)").flavor == "normal"
        assert expr("(aref-ff A i)").flavor == "ff"
        assert expr("(aref-fe A i)").flavor == "fe"

    def test_ternary_if(self):
        node = expr("(if (< a b) 1.0 2.0)")
        assert isinstance(node, IfExpr)

    def test_unary(self):
        assert isinstance(expr("(sqrt x)"), UnOp)
        assert isinstance(expr("(float x)"), UnOp)

    def test_unknown_operator(self):
        with pytest.raises(CompileError):
            expr("(frobnicate x)")

    def test_two_arg_minimum(self):
        with pytest.raises(CompileError):
            expr("(+ x)")


class TestStatements:
    def test_let_and_set(self):
        node = stmt("(let ((x 1) (y 2.0)) (set! x (+ x 1)))")
        assert node.bindings[0] == ("x", Num(1))
        assert isinstance(node.body.body[0], SetVar)

    def test_aset_flavors(self):
        assert stmt("(aset! A 0 1.0)").flavor == "normal"
        assert stmt("(aset-ef! A 0 1.0)").flavor == "ef"
        assert stmt("(aset-ff! A 0 1.0)").flavor == "ff"

    def test_while(self):
        node = stmt("(while (< i 10) (set! i (+ i 1)))")
        assert isinstance(node, While)

    def test_if_with_else(self):
        node = stmt("(if c (set! x 1) (set! x 2))")
        assert isinstance(node, If) and node.els is not None

    def test_sync(self):
        node = stmt("(sync (aref-ff done 0))")
        assert isinstance(node, Sync)

    def test_fork_with_cluster_hint(self):
        node = stmt("(fork (work i j) :cluster 2)")
        assert isinstance(node, Fork)
        assert node.kernel == "work" and node.cluster == 2

    def test_bare_expression_statement(self):
        node = stmt("(aref A 0)")
        assert isinstance(node.expr, Aref)


class TestProgram:
    SOURCE = """
(program
  (const N 4)
  (global A (* N N))
  (global flags N :int :empty)
  (kernel work (i (x :float))
    (aset! A i x))
  (main
    (fork (work 0 1.5))))
"""

    def test_parses_all_sections(self):
        ast = parse_program(self.SOURCE)
        assert [c.name for c in ast.consts] == ["N"]
        assert [g.name for g in ast.globals] == ["A", "flags"]
        assert set(ast.kernels) == {"work"}

    def test_global_options(self):
        ast = parse_program(self.SOURCE)
        flags = ast.globals[1]
        assert flags.elem_type is INT
        assert flags.initially_full is False
        assert ast.globals[0].elem_type is FLOAT

    def test_typed_kernel_params(self):
        ast = parse_program(self.SOURCE)
        assert ast.kernels["work"].params == [("i", INT), ("x", FLOAT)]

    def test_missing_main_rejected(self):
        with pytest.raises(CompileError):
            parse_program("(program (const N 1))")

    def test_duplicate_kernel_rejected(self):
        with pytest.raises(CompileError):
            parse_program("(program (kernel k () (set! x 1))"
                          " (kernel k () (set! x 1)) (main (+ 1 2)))")

    def test_unknown_top_level_rejected(self):
        with pytest.raises(CompileError):
            parse_program("(program (procedure p) (main (+ 1 2)))")
