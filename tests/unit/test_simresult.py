"""SimResult helpers and statistics plumbing."""

import json

from repro import baseline, compile_program, run_program
from repro.isa.operations import UnitClass

SOURCE = """
(program
  (global A 4)
  (global flag 1 :int :empty)
  (kernel child ((x :float))
    (aset! A 3 x)
    (aset-ef! flag 0 1))
  (main
    (aset! A 0 1.5)
    (fork (child 2.5))
    (sync (aref-ff flag 0))))
"""


def run():
    config = baseline()
    compiled = compile_program(SOURCE, config, mode="coupled")
    return run_program(compiled.program, config)


class TestSimResult:
    def test_read_symbol(self):
        result = run()
        values = result.read_symbol("A")
        assert values[0] == 1.5 and values[3] == 2.5

    def test_symbol_presence(self):
        result = run()
        assert result.symbol_presence("flag") == [True]
        assert all(result.symbol_presence("A"))

    def test_thread_stats_rows(self):
        result = run()
        rows = result.thread_stats()
        assert len(rows) == 2
        by_name = {row["name"]: row for row in rows}
        assert "main" in by_name
        child_row = next(r for r in rows if r["name"] != "main")
        assert child_row["spawn"] > 0
        assert child_row["finish"] >= child_row["spawn"]
        assert child_row["operations"] > 0

    def test_cycles_property(self):
        result = run()
        assert result.cycles == result.stats.cycles > 0


class TestStats:
    def test_utilization_table_covers_all_kinds(self):
        result = run()
        table = result.stats.utilization_table()
        # Plain string keys (enum values), so the table serializes.
        assert set(table) == {kind.value for kind in UnitClass}
        assert all(0.0 <= v <= 4.0 for v in table.values())

    def test_summary_keys(self):
        summary = run().stats.summary()
        for key in ("cycles", "operations", "fpu_util", "threads",
                    "memory_accesses", "opcache_misses",
                    "memory_parked", "memory_queue_waits"):
            assert key in summary

    def test_summary_is_json_serializable(self):
        # Regression: enum keys and missing counters used to make the
        # summary unserializable.
        stats = run().stats
        round_tripped = json.loads(json.dumps(stats.summary()))
        assert round_tripped == stats.summary()
        json.dumps(stats.utilization_table())

    def test_str_renders(self):
        text = str(run().stats)
        assert "cycles=" in text and "threads=2" in text

    def test_operation_totals_consistent(self):
        stats = run().stats
        assert stats.total_operations == \
            sum(stats.issued_by_kind.values()) == \
            sum(stats.issued_by_unit.values()) == \
            sum(stats.issued_by_thread.values())
