"""Trace recording and timeline rendering."""

from repro import compile_program
from repro.machine import baseline
from repro.sim import Node
from repro.sim.trace import (TraceRecorder, render_timeline,
                             utilization_profile)

SOURCE = """
(program
  (const N 4)
  (global A N)
  (global done N :int :empty)
  (kernel work (i)
    (aset! A i (* (float i) 2.0))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""


def traced_run():
    config = baseline()
    compiled = compile_program(SOURCE, config, mode="coupled")
    recorder = TraceRecorder()
    node = Node(config, observer=recorder)
    result = node.run(compiled.program)
    return recorder, config, result


class TestRecorder:
    def test_records_issues_for_all_threads(self):
        recorder, __, result = traced_run()
        tids = {e.thread for e in recorder.issues}
        assert tids == set(range(result.stats.threads_spawned))

    def test_issue_totals_match_stats(self):
        recorder, __, result = traced_run()
        assert len(recorder.issues) == result.stats.total_operations

    def test_spawns_and_halts(self):
        recorder, __, result = traced_run()
        assert set(recorder.spawns) == set(recorder.halts)
        for tid, (spawn_cycle, __) in recorder.spawns.items():
            assert recorder.halts[tid] >= spawn_cycle

    def test_unit_occupancy_single_issue_per_cycle(self):
        recorder, __, __ = traced_run()
        for unit, cycles in recorder.unit_occupancy().items():
            assert len(cycles) == len(set(cycles))

    def test_limit_bounds_memory(self):
        recorder = TraceRecorder(limit=10)

        class FakeThread:
            tid = 0

        class FakeOp:
            name = "iadd"

        for cycle in range(50):
            recorder("issue", cycle=cycle, unit="c0.iu0",
                     thread=FakeThread(), op=FakeOp())
        assert len(recorder.issues) <= 15


class TestRendering:
    def test_timeline_contains_units_and_threads(self):
        recorder, config, __ = traced_run()
        text = render_timeline(recorder, config, last=40)
        assert "c0.iu0" in text and "c4.bru0" in text
        assert "thread 0 (main)" in text

    def test_window_bounds(self):
        recorder, config, __ = traced_run()
        text = render_timeline(recorder, config, first=0, last=10)
        assert "cycles 0..9" in text.splitlines()[0]

    def test_utilization_profile(self):
        recorder, __, result = traced_run()
        series = utilization_profile(recorder, bucket=8)
        assert series
        total = sum(rate * 8 for __, rate in series)
        # Total issues recovered up to the final partial bucket.
        assert abs(total - result.stats.total_operations) < 16
