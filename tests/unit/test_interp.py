"""The reference interpreter."""

import pytest

from repro.compiler.interp import interpret
from repro.errors import InterpError


def run(body, globals_="(global A 8) (global I 8 :int)", overrides=None):
    source = "(program %s (main %s))" % (globals_, body)
    return interpret(source, overrides=overrides)


class TestScalars:
    def test_arithmetic_and_assignment(self):
        result = run("(let ((x 3)) (set! x (* x x)) (aset! I 0 x))")
        assert result.read_symbol("I")[0] == 9

    def test_c_style_division(self):
        result = run("(aset! I 0 (/ -7 2))")
        assert result.read_symbol("I")[0] == -3

    def test_float_semantics(self):
        result = run("(aset! A 0 (/ 1.0 4.0))")
        assert result.read_symbol("A")[0] == 0.25

    def test_variable_keeps_float_type(self):
        result = run("(let ((x 1.0)) (set! x (+ x 1)) (aset! A 0 x))")
        assert result.read_symbol("A")[0] == 2.0

    def test_narrowing_assignment_rejected(self):
        with pytest.raises(InterpError, match="narrowing"):
            run("(let ((i 1)) (set! i 1.5))")

    def test_if_expression_typed_by_then_arm(self):
        result = run("(aset! A 0 (if (< 2 1) 1.0 2))")
        value = result.read_symbol("A")[0]
        assert value == 2.0 and isinstance(value, float)


class TestControl:
    def test_while_loop(self):
        result = run("""
(let ((i 0) (total 0))
  (while (< i 5)
    (set! total (+ total i))
    (set! i (+ i 1)))
  (aset! I 0 total))
""")
        assert result.read_symbol("I")[0] == 10

    def test_mutation_escapes_let_scope(self):
        result = run("""
(let ((x 1))
  (let ((y 2))
    (set! x (+ x y)))
  (aset! I 0 x))
""")
        assert result.read_symbol("I")[0] == 3

    def test_step_limit_catches_divergence(self):
        with pytest.raises(InterpError, match="step limit"):
            interpret("(program (main (while 1 (+ 1 1))))",
                      max_steps=1000)


class TestSyncSemantics:
    def test_fe_load_consumes(self):
        result = run("""
(begin
  (sync (aref-fe I 0))
  (aset-ef! I 0 5))
""", overrides={"I": [9, 0, 0, 0, 0, 0, 0, 0]})
        assert result.read_symbol("I")[0] == 5
        assert result.symbol_presence("I")[0] is True

    def test_blocking_load_raises(self):
        source = """
(program (global flags 1 :int :empty)
  (main (sync (aref-ff flags 0))))
"""
        with pytest.raises(InterpError, match="block"):
            interpret(source)

    def test_st_ef_on_full_raises(self):
        with pytest.raises(InterpError, match="block"):
            run("(aset-ef! I 0 1)")

    def test_index_bounds_checked(self):
        with pytest.raises(InterpError, match="range"):
            run("(aset! I 99 1)")


class TestForks:
    SOURCE = """
(program
  (global A 4)
  (kernel work (i (scale :float))
    (aset! A i (* scale (float i))))
  (main
    (forall (i 0 4) (work i 2.5))))
"""

    def test_forks_run_inline(self):
        result = interpret(self.SOURCE)
        assert result.read_symbol("A") == [0.0, 2.5, 5.0, 7.5]

    def test_fork_coerces_param_types(self):
        source = self.SOURCE.replace("(work i 2.5)", "(work i 3)")
        result = interpret(source)
        assert result.read_symbol("A")[1] == 3.0


class TestOverrides:
    def test_override_values_visible(self):
        result = run("(aset! I 0 (+ (aref I 1) 1))",
                     overrides={"I": [0, 41, 0, 0, 0, 0, 0, 0]})
        assert result.read_symbol("I")[0] == 42

    def test_wrong_length_rejected(self):
        with pytest.raises(InterpError):
            run("(aset! I 0 1)", overrides={"I": [1, 2]})

    def test_unknown_symbol_rejected(self):
        with pytest.raises(InterpError):
            run("(aset! I 0 1)", overrides={"ghost": [1]})
