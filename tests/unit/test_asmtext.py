"""Assembly text emission and parsing."""

import pytest

from repro.errors import AsmError
from repro.isa import asmtext
from repro.isa.instruction import InstructionWord, Operation, Program, \
    ThreadProgram
from repro.isa.operands import Imm, Label, Reg


def build_sample_program():
    program = Program()
    main = ThreadProgram("main")
    main.add_label("L0")
    main.append(InstructionWord({
        "c0.iu0": Operation("iadd", dests=(Reg(0, 1), Reg(1, 2)),
                            srcs=(Reg(0, 0), Imm(4))),
        "c0.fpu0": Operation("fmul", dests=(Reg(0, 3),),
                             srcs=(Reg(0, 1), Reg(0, 2))),
    }))
    main.append(InstructionWord({
        "c0.mem0": Operation("st", srcs=(Reg(0, 3), Reg(0, 1), Imm(8))),
        "c4.bru0": Operation("brt", srcs=(Reg(4, 0),),
                             target=Label("L0")),
    }))
    main.append(InstructionWord({
        "c4.bru0": Operation("fork", target=Label("child"),
                             bindings=((Reg(0, 0), Reg(0, 1)),
                                       (Reg(0, 1), Imm(-2)))),
    }))
    main.append(InstructionWord({"c4.bru0": Operation("halt")}))
    program.add_thread(main)
    child = ThreadProgram("child", param_regs=[Reg(0, 0), Reg(0, 1)])
    child.append(InstructionWord({"c4.bru0": Operation("halt")}))
    program.add_thread(child)
    # Deliberately non-alphabetical declaration order: bases must
    # survive the text round-trip regardless of names.
    program.data.declare("flags", 4, initially_full=False)
    program.data.declare("buffer", 16)
    return program


class TestRoundTrip:
    def test_emit_parse_identity(self):
        program = build_sample_program()
        text = asmtext.emit(program)
        parsed = asmtext.parse(text)
        assert asmtext.emit(parsed) == text

    def test_symbols_preserved(self):
        parsed = asmtext.parse(asmtext.emit(build_sample_program()))
        assert parsed.data["flags"].initially_full is False
        assert parsed.data["buffer"].size == 16

    def test_symbol_addresses_preserved(self):
        """Addresses are baked into memory operations as immediates, so
        emit/parse must keep every symbol at its original base."""
        program = build_sample_program()
        parsed = asmtext.parse(asmtext.emit(program))
        for name, sym in program.data.symbols.items():
            assert parsed.data[name].base == sym.base, name

    def test_params_preserved(self):
        parsed = asmtext.parse(asmtext.emit(build_sample_program()))
        assert parsed.thread("child").param_regs == [Reg(0, 0), Reg(0, 1)]

    def test_labels_preserved(self):
        parsed = asmtext.parse(asmtext.emit(build_sample_program()))
        assert parsed.thread("main").labels == {"L0": 0}

    def test_bindings_preserved(self):
        parsed = asmtext.parse(asmtext.emit(build_sample_program()))
        fork = parsed.thread("main").instructions[2].control_op()
        assert fork.bindings == ((Reg(0, 0), Reg(0, 1)),
                                 (Reg(0, 1), Imm(-2)))


class TestParseOperation:
    def test_two_destinations(self):
        op = asmtext.parse_operation("iadd c0.r1 & c2.r3, c0.r0, #1")
        assert op.dests == (Reg(0, 1), Reg(2, 3))

    def test_branch_label(self):
        op = asmtext.parse_operation("brf c4.r0, loop")
        assert op.target == Label("loop")
        assert op.srcs == (Reg(4, 0),)

    def test_store(self):
        op = asmtext.parse_operation("st c0.r1, c0.r2, #64")
        assert op.srcs == (Reg(0, 1), Reg(0, 2), Imm(64))

    def test_float_immediate(self):
        op = asmtext.parse_operation("fadd c0.r0, c0.r1, #0.5")
        assert op.srcs[1] == Imm(0.5)

    def test_unknown_opcode(self):
        with pytest.raises(AsmError):
            asmtext.parse_operation("frobnicate c0.r0")


class TestParseErrors:
    def test_unterminated_word(self):
        with pytest.raises(AsmError):
            asmtext.parse(".thread main\n{\n  c4.bru0: halt\n")

    def test_operation_outside_word(self):
        with pytest.raises(AsmError):
            asmtext.parse(".thread main\nc4.bru0: halt\n")

    def test_duplicate_unit_in_word(self):
        text = (".thread main\n{\n  c4.bru0: halt\n  c4.bru0: halt\n}\n")
        with pytest.raises(AsmError):
            asmtext.parse(text)

    def test_error_reports_line_number(self):
        with pytest.raises(AsmError, match="line 2"):
            asmtext.parse(".thread main\n}\n")

    def test_comments_ignored(self):
        text = ("; a comment\n.thread main\n{\n"
                "  c4.bru0: halt ; trailing\n}\n")
        program = asmtext.parse(text)
        assert len(program.thread("main").instructions) == 1
