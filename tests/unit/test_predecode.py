"""Load-time predecoding of instruction words into slot plans."""

import pytest

from repro import compile_program
from repro.errors import SimulationError
from repro.machine import baseline
from repro.sim.predecode import (DecodedThread, SlotPlan, WordPlan,
                                 decode_program)

SOURCE = """
(program
  (global x 4 :int)
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (* (aref x i) 3)))))
"""


@pytest.fixture(scope="module")
def decoded_and_program():
    config = baseline()
    program = compile_program(SOURCE, config, mode="coupled").program
    unit_index = {slot.uid: i for i, slot in enumerate(config.units)}
    return decode_program(program, unit_index), program, unit_index


class TestDecodeProgram:
    def test_covers_every_thread_and_word(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        assert set(decoded) == set(program.threads)
        for name, thread in decoded.items():
            assert isinstance(thread, DecodedThread)
            assert len(thread.words) == \
                len(program.threads[name].instructions)

    def test_plans_follow_slot_insertion_order(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                assert isinstance(word_plan, WordPlan)
                assert [p.uid for p in word_plan.plans] == \
                    list(word.slots)

    def test_plan_resolves_spec_and_operands(self, decoded_and_program):
        decoded, program, unit_index = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                for plan in word_plan.plans:
                    op = word.slots[plan.uid]
                    assert isinstance(plan, SlotPlan)
                    assert plan.op is op
                    assert plan.spec is op.spec
                    assert plan.unit_index == unit_index[plan.uid]
                    assert plan.dest_pairs == tuple(
                        (d.cluster, d.index) for d in op.dests)
                    assert plan.is_memory == op.spec.is_memory
                    assert plan.is_load == op.spec.is_load
                    # Register reads appear as patch fields; immediates
                    # are baked into the value template.
                    for pos, cluster, index in plan.src_fields:
                        src = op.srcs[pos]
                        assert (src.cluster, src.index) == (cluster, index)
                        assert plan.values_template[pos] is None

    def test_wait_groups_cover_reads_and_waw(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                for plan in word_plan.plans:
                    op = word.slots[plan.uid]
                    expected = {(r.cluster, r.index)
                                for r in list(op.source_regs())
                                + list(op.dests)}
                    got = {(cluster, index)
                           for cluster, indices in plan.wait_groups
                           for index in indices}
                    assert got == expected

    def test_empty_word_rejected(self, decoded_and_program):
        __, program, unit_index = decoded_and_program

        class EmptyWord:
            slots = {}

        class FakeThread:
            instructions = [EmptyWord()]

        class FakeProgram:
            threads = {"broken": FakeThread()}

        with pytest.raises(SimulationError, match="word 0 is empty"):
            decode_program(FakeProgram(), unit_index)
