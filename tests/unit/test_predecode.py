"""Load-time predecoding of instruction words into slot plans."""

import pytest

from repro import compile_program
from repro.errors import SimulationError
from repro.isa.instruction import Operation, ThreadProgram
from repro.isa.operands import Imm, Label, Reg
from repro.machine import baseline
from repro.sim.predecode import (_WARMUP_DISPATCHES, BlockPlan, BlockTable,
                                 DecodedThread, SlotPlan, WordPlan,
                                 _build_run, _entry_points, _word_fusible,
                                 decode_program)
from repro.sim.registers import RegisterFrame

SOURCE = """
(program
  (global x 4 :int)
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (* (aref x i) 3)))))
"""


@pytest.fixture(scope="module")
def decoded_and_program():
    config = baseline()
    program = compile_program(SOURCE, config, mode="coupled").program
    unit_index = {slot.uid: i for i, slot in enumerate(config.units)}
    return decode_program(program, unit_index), program, unit_index


class TestDecodeProgram:
    def test_covers_every_thread_and_word(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        assert set(decoded) == set(program.threads)
        for name, thread in decoded.items():
            assert isinstance(thread, DecodedThread)
            assert len(thread.words) == \
                len(program.threads[name].instructions)

    def test_plans_follow_slot_insertion_order(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                assert isinstance(word_plan, WordPlan)
                assert [p.uid for p in word_plan.plans] == \
                    list(word.slots)

    def test_plan_resolves_spec_and_operands(self, decoded_and_program):
        decoded, program, unit_index = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                for plan in word_plan.plans:
                    op = word.slots[plan.uid]
                    assert isinstance(plan, SlotPlan)
                    assert plan.op is op
                    assert plan.spec is op.spec
                    assert plan.unit_index == unit_index[plan.uid]
                    assert plan.dest_pairs == tuple(
                        (d.cluster, d.index) for d in op.dests)
                    assert plan.is_memory == op.spec.is_memory
                    assert plan.is_load == op.spec.is_load
                    # Register reads appear as patch fields; immediates
                    # are baked into the value template.
                    for pos, cluster, index in plan.src_fields:
                        src = op.srcs[pos]
                        assert (src.cluster, src.index) == (cluster, index)
                        assert plan.values_template[pos] is None

    def test_wait_groups_cover_reads_and_waw(self, decoded_and_program):
        decoded, program, __ = decoded_and_program
        for name, thread in decoded.items():
            source = program.threads[name].instructions
            for word_plan, word in zip(thread.words, source):
                for plan in word_plan.plans:
                    op = word.slots[plan.uid]
                    expected = {(r.cluster, r.index)
                                for r in list(op.source_regs())
                                + list(op.dests)}
                    got = set(plan.wait_registers())
                    assert got == expected
                    # The masks themselves agree with the decoded view.
                    for cluster, mask in plan.wait_groups:
                        for index in range(mask.bit_length()):
                            assert bool(mask >> index & 1) == \
                                ((cluster, index) in expected)

    def test_empty_word_rejected(self, decoded_and_program):
        __, program, unit_index = decoded_and_program

        class EmptyWord:
            slots = {}

        class FakeThread:
            instructions = [EmptyWord()]

        class FakeProgram:
            threads = {"broken": FakeThread()}

        with pytest.raises(SimulationError, match="word 0 is empty"):
            decode_program(FakeProgram(), unit_index)


def _plan(op, thread_program=None):
    return SlotPlan("iu0", 0, op, thread_program)


class TestSlotPlanEdgeCases:
    """Hand-built operations exercising corners the compiled fixture
    never produces."""

    def test_waw_only_wait_group_dedups_read_and_write(self):
        # r(0,2) is both read and written (WAW interlock): one wait bit.
        plan = _plan(Operation("iadd", dests=(Reg(0, 2),),
                               srcs=(Reg(0, 2), Imm(3))))
        assert plan.wait_groups == ((0, 1 << 2),)
        assert plan.single_wait == (0, 1 << 2)
        assert plan.wait_registers() == [(0, 2)]

    def test_wait_group_merges_repeated_mentions(self):
        # Three register mentions, two distinct registers, one cluster.
        plan = _plan(Operation("iadd", dests=(Reg(0, 1),),
                               srcs=(Reg(0, 1), Reg(0, 3))))
        assert plan.wait_groups == ((0, (1 << 1) | (1 << 3)),)
        assert sorted(plan.wait_registers()) == [(0, 1), (0, 3)]

    def test_pure_waw_write_only_destination_waits(self):
        # No register sources at all: the wait set is the WAW bit alone.
        plan = _plan(Operation("imov", dests=(Reg(1, 5),), srcs=(Imm(7),)))
        assert plan.wait_groups == ((1, 1 << 5),)
        assert plan.values_template == [7]
        assert plan.src_fields == ()

    def test_fork_bindings_plan_mixed_register_and_immediate(self):
        op = Operation("fork", target=Label("child"),
                       bindings=((Reg(0, 1), Reg(0, 4)),
                                 (Reg(1, 2), Imm(9))))
        plan = _plan(op)
        assert plan.control == "fork"
        assert plan.fork_name == "child"
        assert plan.bindings_plan == ((Reg(0, 1), True, 0, 4),
                                      (Reg(1, 2), False, 9, None))
        # Only the register-sourced binding contributes a wait bit.
        assert plan.wait_groups == ((0, 1 << 4),)

    def test_empty_srcs_template_halt(self):
        plan = _plan(Operation("halt"))
        assert plan.values_template is None
        assert plan.src_fields == ()
        assert plan.wait_groups == ()
        assert plan.single_wait is None
        assert plan.control == "halt"
        assert plan.taken_payload == ("halt",)
        assert plan.exec_fn is None          # BRU: no compute closure

    def test_empty_srcs_template_branch_resolves_target(self):
        thread = ThreadProgram("t", labels={"loop": 3})
        plan = _plan(Operation("br", target=Label("loop")), thread)
        assert plan.values_template is None
        assert plan.src_fields == ()
        assert plan.taken_payload == ("jump", 3)
        assert plan.untaken_payload == ("jump", None)

    def test_exec_fn_matches_generic_gather(self):
        # The specialized closures must read exactly what the generic
        # template-patching path reads, padding-with-zero included.
        frame = RegisterFrame(0)
        frame.force(2, 6)
        frame.force(3, 7)
        other = RegisterFrame(1)
        other.force(0, 10)
        frames = {0: frame, 1: other}
        cases = [
            (Operation("imov", dests=(Reg(0, 9),), srcs=(Reg(0, 2),)), 6),
            (Operation("iadd", dests=(Reg(0, 9),),
                       srcs=(Reg(0, 2), Reg(0, 3))), 13),
            (Operation("iadd", dests=(Reg(0, 9),),
                       srcs=(Reg(0, 2), Reg(1, 0))), 16),
            (Operation("iadd", dests=(Reg(0, 9),),
                       srcs=(Reg(0, 2), Imm(30))), 36),
            (Operation("isub", dests=(Reg(0, 9),),
                       srcs=(Imm(30), Reg(0, 3))), 23),
            # Out-of-range index reads as 0, like the generic path.
            (Operation("iadd", dests=(Reg(0, 9),),
                       srcs=(Reg(0, 63), Imm(5))), 5),
            (Operation("imov", dests=(Reg(0, 9),), srcs=(Imm(42),)), 42),
        ]
        for op, expected in cases:
            plan = _plan(op)
            assert plan.exec_fn is not None, op
            assert plan.exec_fn(frames) == expected, op


class TestBlockTable:
    """Lazy superblock compilation over the fixture program."""

    @pytest.fixture()
    def table_and_words(self):
        config = baseline()
        program = compile_program(SOURCE, config, mode="seq").program
        unit_index = {slot.uid: i for i, slot in enumerate(config.units)}
        decoded = decode_program(program, unit_index, config)
        thread = decoded["main"]
        assert isinstance(thread.blocks, BlockTable)
        return thread.blocks, thread.words

    def _hot_entry(self, words):
        entries = sorted(_entry_points(words))
        for ip in entries:
            if ip < len(words) and _build_run(words, ip, True) is not None:
                return ip
        pytest.fail("fixture program has no fusible run")

    def test_entry_compiles_only_after_warmup(self, table_and_words):
        table, words = table_and_words
        entry = self._hot_entry(words)
        for __ in range(_WARMUP_DISPATCHES - 1):
            assert table.get(entry) is None
        block = table.get(entry)
        assert isinstance(block, BlockPlan)
        assert table.get(entry) is block          # cached, not recompiled
        assert table.compiled_blocks() == {entry: block}
        assert block.entry_ip == entry
        assert list(block.word_ips) == \
            list(range(entry, entry + len(block.word_ips)))

    def test_non_entry_ips_never_compile(self, table_and_words):
        table, words = table_and_words
        non_entries = [ip for ip in range(len(words))
                       if ip not in _entry_points(words)]
        assert non_entries, "fixture program has no mid-run words"
        for ip in non_entries:
            for __ in range(_WARMUP_DISPATCHES + 1):
                assert table.get(ip) is None
        assert table.compiled_blocks() == {}

    def test_run_stops_at_terminal_branch(self, table_and_words):
        __, words = table_and_words
        entry = self._hot_entry(words)
        run = _build_run(words, entry, True)
        for __, word, bru in run[:-1]:
            assert bru is None
            assert not any(p.is_bru for p in word.plans)
        # A run either ends at its (sole) control slot or at a
        # non-fusible/terminal boundary.
        last_ip, __, last_bru = run[-1]
        if last_bru is None:
            next_ip = last_ip + 1
            assert next_ip >= len(words) or \
                not _word_fusible(words[next_ip], True)[0] or \
                next_ip in _entry_points(words)

    def test_memory_words_defuse_when_misses_possible(self, table_and_words):
        __, words = table_and_words
        mem_words = [w for w in words
                     if any(p.is_memory for p in w.plans)]
        assert mem_words, "fixture program has no memory words"
        for word in mem_words:
            assert _word_fusible(word, True)[0]
            assert not _word_fusible(word, False)[0]

    def test_synchronizing_memory_ops_are_not_fusible(self):
        op = Operation("ld_ff", dests=(Reg(0, 1),),
                       srcs=(Reg(0, 2), Imm(0)))
        word = WordPlan([_plan(op)])
        ok, bru = _word_fusible(word, True)
        assert not ok and bru is None
