"""The top-level CLI (python -m repro)."""

import io

import pytest

from repro.cli import main

SOURCE = """
(program
  (global x 4 :int)
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (* (aref x i) 3)))))
"""


@pytest.fixture
def source_file(tmp_path):
    path = tmp_path / "prog.sexp"
    path.write_text(SOURCE)
    return str(path)


def invoke(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestCompile:
    def test_emits_assembly(self, source_file):
        code, text = invoke(["compile", source_file, "--mode", "sts"])
        assert code == 0
        assert ".thread main" in text
        assert ".symbol out 4 full" in text

    def test_writes_output_file(self, source_file, tmp_path):
        target = str(tmp_path / "prog.s")
        code, text = invoke(["compile", source_file, "-o", target])
        assert code == 0 and "wrote" in text
        assert ".thread main" in open(target).read()

    def test_report_flag(self, source_file):
        __, text = invoke(["compile", source_file, "--report"])
        assert "thread main" in text and "peak-regs" in text


class TestRun:
    def test_runs_and_prints_symbols(self, source_file):
        code, text = invoke(["run", source_file, "--mode", "sts",
                             "--set", "x=1,2,3,4", "--print", "out"])
        assert code == 0
        assert "out = [3, 6, 9, 12]" in text
        assert "cycles:" in text

    def test_runs_assembly_roundtrip(self, source_file, tmp_path):
        target = str(tmp_path / "prog.s")
        invoke(["compile", source_file, "--mode", "sts", "-o", target])
        code, text = invoke(["run", target, "--asm",
                             "--set", "x=2,2,2,2", "--print", "out"])
        assert code == 0
        assert "out = [6, 6, 6, 6]" in text

    def test_trace_timeline(self, source_file):
        __, text = invoke(["run", source_file, "--trace",
                           "--window", "30"])
        assert "c0.iu0" in text and "thread 0 (main)" in text

    def test_memory_and_interconnect_flags(self, source_file):
        code, text = invoke(["run", source_file, "--memory", "mem2",
                             "--interconnect", "shared-bus",
                             "--seed", "5", "--set", "x=1,1,1,1",
                             "--print", "out"])
        assert code == 0 and "out = [3, 3, 3, 3]" in text

    def test_bad_override_syntax(self, source_file):
        with pytest.raises(SystemExit):
            invoke(["run", source_file, "--set", "x"])


class TestInfo:
    def test_modes(self):
        __, text = invoke(["modes"])
        assert "coupled" in text and "ideal" in text

    def test_describe(self):
        __, text = invoke(["describe", "--memory", "mem1"])
        assert "cluster 0" in text and "mem1" in text


class TestEngineAndProfile:
    def test_engines_agree(self, source_file):
        argv = ["run", source_file, "--set", "x=1,2,3,4",
                "--print", "out"]
        __, event = invoke(argv + ["--engine", "event"])
        __, scan = invoke(argv + ["--engine", "scan"])
        assert event == scan
        assert "out = [3, 6, 9, 12]" in event

    def test_unknown_engine_rejected(self, source_file):
        with pytest.raises(SystemExit):
            invoke(["run", source_file, "--engine", "turbo"])

    def test_profile_prints_hotspots(self, source_file):
        code, text = invoke(["run", source_file, "--profile", "8",
                             "--set", "x=1,2,3,4", "--print", "out"])
        assert code == 0
        assert "out = [3, 6, 9, 12]" in text
        assert "cumulative" in text and "function calls" in text

    def test_profile_default_depth(self, source_file):
        code, text = invoke(["run", source_file, "--profile"])
        assert code == 0 and "cumulative" in text
