"""S-expression reader."""

import pytest

from repro.compiler.sexpr import Symbol, read_all, read_one, to_text
from repro.errors import CompileError


class TestReader:
    def test_atoms(self):
        assert read_one("42") == 42
        assert read_one("-3") == -3
        assert read_one("2.5") == 2.5
        assert read_one("-0.5") == -0.5
        assert read_one("foo") == Symbol("foo")

    def test_nesting(self):
        assert read_one("(+ 1 (* 2 3))") == \
            [Symbol("+"), 1, [Symbol("*"), 2, 3]]

    def test_multiple_top_level_forms(self):
        assert len(read_all("(a) (b) (c)")) == 3

    def test_comments_stripped(self):
        assert read_all("(a 1) ; trailing\n; full line\n(b 2)") == \
            [[Symbol("a"), 1], [Symbol("b"), 2]]

    def test_symbols_with_punctuation(self):
        assert read_one("aset!") == Symbol("aset!")
        assert read_one(":cluster") == Symbol(":cluster")
        assert read_one("<=") == Symbol("<=")

    def test_unbalanced_close(self):
        with pytest.raises(CompileError):
            read_all("(a))")

    def test_unbalanced_open(self):
        with pytest.raises(CompileError):
            read_all("((a)")

    def test_read_one_rejects_many(self):
        with pytest.raises(CompileError):
            read_one("(a) (b)")

    def test_to_text_roundtrip(self):
        form = read_one("(let ((x 1)) (set! x (+ x 2.5)))")
        assert read_one(to_text(form)) == form
