"""Macro expansion: constants, unrolling, forall, inlining."""

import pytest

from repro.compiler.astnodes import (BinOp, Fork, Let, Num, Seq, SetVar,
                                     Var, While)
from repro.compiler.frontend import parse_program, parse_stmt
from repro.compiler.macroexpand import (Expander, expand_kernel,
                                        expand_thread, fold_binop,
                                        fold_unop, resolve_consts)
from repro.compiler.sexpr import read_one
from repro.errors import CompileError


def expand(text, kernels=None, consts=None):
    return expand_thread(parse_stmt(read_one(text)), kernels or {},
                         consts or {})


class TestFolding:
    def test_binop_uses_isa_semantics(self):
        assert fold_binop("/", -7, 2) == -3     # truncating division
        assert fold_binop("/", 1.0, 4.0) == 0.25
        assert fold_binop("<", 1, 2) == 1

    def test_mixed_types_widen(self):
        assert fold_binop("+", 1, 0.5) == 1.5

    def test_integer_only_operator_rejects_floats(self):
        with pytest.raises(CompileError):
            fold_binop("mod", 1.0, 2)

    def test_unop_widening(self):
        assert fold_unop("sqrt", 9) == 3.0
        assert fold_unop("abs", -2) == 2.0
        assert fold_unop("neg", 2.5) == -2.5
        assert fold_unop("int", 3.7) == 3

    def test_division_by_zero_is_compile_error(self):
        with pytest.raises(CompileError):
            fold_binop("/", 1, 0)


class TestConsts:
    def test_consts_fold_in_order(self):
        ast = parse_program(
            "(program (const A 3) (const B (* A A)) (main (+ 1 1)))")
        assert resolve_consts(ast.consts) == {"A": 3, "B": 9}

    def test_nonconstant_rejected(self):
        ast = parse_program("(program (const A x) (main (+ 1 1)))")
        with pytest.raises(CompileError):
            resolve_consts(ast.consts)


class TestUnroll:
    def test_unroll_duplicates_body(self):
        node = expand("(unroll (i 0 3) (aset! A i (float i)))")
        assert isinstance(node, Seq) and len(node.body) == 3
        assert node.body[2].body[0].index == Num(2)

    def test_unroll_with_step(self):
        node = expand("(unroll (i 0 10 4) (aset! A i 0.0))")
        assert [s.body[0].index.value for s in node.body] == [0, 4, 8]

    def test_unroll_requires_constant_bounds(self):
        with pytest.raises(CompileError):
            expand("(unroll (i 0 n) (aset! A i 0.0))")

    def test_unrolled_variable_folds_into_expressions(self):
        node = expand("(unroll (i 2 3) (aset! A (* i 8) 0.0))")
        assert node.body[0].body[0].index == Num(16)

    def test_set_of_unrolled_variable_rejected(self):
        with pytest.raises(CompileError):
            expand("(unroll (i 0 2) (set! i 5))")

    def test_zero_step_rejected(self):
        with pytest.raises(CompileError):
            expand("(unroll (i 0 2 0) (aset! A i 0.0))")


class TestForLowering:
    def test_for_becomes_let_while(self):
        node = expand("(for (i 0 4) (aset! A i 0.0))")
        assert isinstance(node, Let)
        loop = node.body.body[0]
        assert isinstance(loop, While)

    def test_for_step(self):
        node = expand("(for (i 0 8 2) (aset! A i 0.0))")
        increment = node.body.body[0].body.body[-1]
        assert isinstance(increment, SetVar)
        assert increment.expr.right == Num(2)


class TestForall:
    def kernels(self):
        ast = parse_program(
            "(program (kernel w (i)) (main (+ 1 1)))"
            .replace("(kernel w (i))", "(kernel w (i) (aset! A i 0.0))"))
        return ast.kernels

    def test_forall_expands_to_forks(self):
        node = expand("(forall (i 0 4) (w i))", kernels=self.kernels())
        assert len(node.body) == 4
        assert all(isinstance(f, Fork) for f in node.body)
        assert node.body[3].args[0] == Num(3)

    def test_forall_checks_arity(self):
        with pytest.raises(CompileError):
            expand("(forall (i 0 4) (w i i))", kernels=self.kernels())


class TestInlining:
    def make_kernels(self, source):
        return parse_program(source).kernels

    def test_call_inlines_with_renamed_locals(self):
        kernels = self.make_kernels("""
(program
  (kernel helper (a)
    (let ((t (* a 2)))
      (aset! A a (float t))))
  (main (+ 1 1)))
""")
        node = expand("(begin (let ((t 9)) (call helper t)))",
                      kernels=kernels)
        # The callee's local 't' must have been renamed away from the
        # caller's 't'.
        inlined = node.body[0]
        names = _collect_let_names(inlined)
        assert len(names) == len(set(names))

    def test_float_parameter_coerced(self):
        kernels = self.make_kernels("""
(program
  (kernel helper ((x :float)) (aset! A 0 x))
  (main (+ 1 1)))
""")
        node = expand("(call helper 3)", kernels=kernels)
        binding_value = node.bindings[0][1]
        assert binding_value == Num(3.0)
        assert isinstance(binding_value.value, float)

    def test_recursive_call_rejected(self):
        ast = parse_program("""
(program
  (kernel loop (i) (call loop i))
  (main (call loop 0)))
""")
        with pytest.raises(CompileError, match="deep"):
            expand_thread(ast.main, ast.kernels,
                          resolve_consts(ast.consts))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(CompileError):
            expand("(call ghost 1)")


def _collect_let_names(node):
    names = []
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, Let):
            names.extend(name for name, __ in current.bindings)
            stack.append(current.body)
        elif isinstance(current, Seq):
            stack.extend(current.body)
    return names
