"""The engine toggle on MachineConfig and node construction."""

import pytest

from repro.errors import ConfigError
from repro.machine import baseline
from repro.machine.config import ENGINES
from repro.sim import (EventNode, Node, make_node,
                       node_class_for_engine)


class TestEngineConfig:
    def test_default_engine_is_event(self):
        assert ENGINES[0] == "event"
        assert baseline().engine == "event"

    def test_with_engine(self):
        config = baseline().with_engine("scan")
        assert config.engine == "scan"
        assert baseline().engine == "event"   # original untouched

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError, match="unknown simulator engine"):
            baseline().with_engine("turbo")

    def test_engine_does_not_change_run_signature(self):
        # Both kernels are bit-identical, so cached run results and
        # compiled programs are shared across engines.
        scan = baseline().with_engine("scan")
        event = baseline().with_engine("event")
        assert scan.run_signature() == event.run_signature()
        assert scan.schedule_signature() == event.schedule_signature()

    def test_describe_names_engine(self):
        assert "engine" in baseline().describe()
        assert "scan" in baseline().with_engine("scan").describe()


class TestNodeConstruction:
    def test_node_class_for_engine(self):
        assert node_class_for_engine("scan") is Node
        assert node_class_for_engine("event") is EventNode
        with pytest.raises(ConfigError):
            node_class_for_engine("turbo")

    def test_make_node_honours_config(self):
        assert isinstance(make_node(baseline()), EventNode)
        scan = make_node(baseline().with_engine("scan"))
        assert type(scan) is Node
