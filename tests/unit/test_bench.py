"""The bench report shape, aggregate metric, and regression gate."""

import json

from repro.bench import (QUICK_BENCHMARKS, aggregate_cycles_per_sec,
                         compare_reports, delta_table, main, suite_specs)
from repro.machine import baseline


def _report(cells, **top):
    report = {"schema": 2, "results": cells}
    report.update(top)
    return report


def _cell(benchmark, mode, cycles, wall_s):
    return {"benchmark": benchmark, "mode": mode, "cycles": cycles,
            "wall_s": wall_s,
            "cycles_per_sec": round(cycles / wall_s, 1)}


class TestAggregate:
    def test_sums_cycles_over_wall(self):
        records = [_cell("a", "seq", 1000, 0.5),
                   _cell("b", "seq", 3000, 0.5)]
        assert aggregate_cycles_per_sec(records) == 4000.0

    def test_empty_is_zero(self):
        assert aggregate_cycles_per_sec([]) == 0.0

    def test_all_failed_is_zero(self):
        # Failure records carry no measurements; an all-failed sweep
        # must aggregate to 0.0, not divide by zero or KeyError.
        failed = [{"benchmark": "a", "mode": "seq",
                   "error_type": "WatchdogError", "message": "hung"}]
        assert aggregate_cycles_per_sec(failed) == 0.0

    def test_failed_records_are_skipped(self):
        records = [_cell("a", "seq", 1000, 0.5),
                   {"benchmark": "b", "mode": "seq",
                    "error_type": "WorkerCrashError", "message": "died"}]
        assert aggregate_cycles_per_sec(records) == 2000.0

    def test_zero_wall_cells_excluded_from_both_sums(self):
        # Journal-replayed cells recorded before wall capture existed
        # come back with wall_s 0.0; counting their cycles against no
        # wall would inflate the aggregate, so they drop out entirely.
        records = [_cell("a", "seq", 1000, 2.0),
                   {"benchmark": "b", "mode": "seq", "cycles": 10 ** 9,
                    "wall_s": 0.0, "cycles_per_sec": 0.0}]
        assert aggregate_cycles_per_sec(records) == 500.0

    def test_all_zero_wall_is_zero(self):
        records = [{"benchmark": "a", "mode": "seq", "cycles": 100,
                    "wall_s": 0.0, "cycles_per_sec": 0.0}]
        assert aggregate_cycles_per_sec(records) == 0.0


class TestCompareReports:
    def setup_method(self):
        self.reference = _report([_cell("matrix", "seq", 100, 0.01),
                                  _cell("matrix", "coupled", 80, 0.01)])

    def test_identical_passes(self):
        assert compare_reports(self.reference, self.reference) == []

    def test_cycle_drift_fails(self):
        current = _report([_cell("matrix", "seq", 101, 0.01),
                           _cell("matrix", "coupled", 80, 0.01)])
        problems = compare_reports(current, self.reference)
        assert len(problems) == 1
        assert "matrix/seq" in problems[0]
        assert "100 to 101" in problems[0]

    def test_throughput_regression_fails(self):
        current = _report([_cell("matrix", "seq", 100, 0.05),
                           _cell("matrix", "coupled", 80, 0.05)])
        problems = compare_reports(current, self.reference)
        assert any("throughput regression" in p for p in problems)

    def test_threshold_is_respected(self):
        # 10% slower: fails at 5% threshold, passes at default 20%.
        current = _report([_cell("matrix", "seq", 100, 0.011),
                           _cell("matrix", "coupled", 80, 0.011)])
        assert compare_reports(current, self.reference) == []
        assert compare_reports(current, self.reference,
                               threshold=0.05) != []

    def test_faster_run_passes(self):
        current = _report([_cell("matrix", "seq", 100, 0.001),
                           _cell("matrix", "coupled", 80, 0.001)])
        assert compare_reports(current, self.reference) == []

    def test_extra_cells_are_ignored(self):
        current = _report([_cell("matrix", "seq", 100, 0.01),
                           _cell("matrix", "coupled", 80, 0.01),
                           _cell("lud", "seq", 9999, 1.0)])
        assert compare_reports(current, self.reference) == []

    def test_no_shared_cells_fails(self):
        current = _report([_cell("lud", "seq", 9999, 1.0)])
        problems = compare_reports(current, self.reference)
        assert problems == ["no shared (benchmark, mode) cells to "
                            "compare"]

    def test_cell_failed_in_current_is_explicit_problem(self):
        # A cell the reference measured but the fresh run collected as
        # a failure is a regression — reported, never a KeyError.
        current = _report(
            [_cell("matrix", "seq", 100, 0.01)],
            failed=[{"benchmark": "matrix", "mode": "coupled",
                     "error_type": "WorkerCrashError",
                     "message": "worker died"}])
        problems = compare_reports(current, self.reference)
        assert len(problems) == 1
        assert "matrix/coupled" in problems[0]
        assert "failed in current report" in problems[0]
        assert "WorkerCrashError" in problems[0]

    def test_cell_failed_in_reference_is_skipped(self):
        reference = _report(
            [_cell("matrix", "seq", 100, 0.01)],
            failed=[{"benchmark": "matrix", "mode": "coupled",
                     "error_type": "CellTimeoutError",
                     "message": "timed out"}])
        current = _report([_cell("matrix", "seq", 100, 0.01),
                           _cell("matrix", "coupled", 80, 0.01)])
        assert compare_reports(current, reference) == []

    def test_malformed_failed_record_in_results_is_skipped(self):
        # Defensive: a failure record accidentally placed in
        # "results" must not crash the gate.
        current = _report([_cell("matrix", "seq", 100, 0.01),
                           {"benchmark": "matrix", "mode": "coupled",
                            "error_type": "X", "message": "y"}])
        problems = compare_reports(current, self.reference)
        assert all("KeyError" not in p for p in problems)

    def test_seeded_cells_compare_per_seed(self):
        # Schema-5 batch reports carry one record per (benchmark,
        # mode, seed); the gate must key on all three, not collapse
        # seeds into one cell.
        ref_cells = [dict(_cell("matrix", "seq", 100, 0.01), seed=1),
                     dict(_cell("matrix", "seq", 120, 0.01), seed=2)]
        reference = _report(ref_cells)
        assert compare_reports(_report([dict(c) for c in ref_cells]),
                               reference) == []
        drifted = [dict(ref_cells[0]),
                   dict(ref_cells[1], cycles=121)]
        problems = compare_reports(_report(drifted), reference)
        assert len(problems) == 1
        assert "120 to 121" in problems[0]

    def test_seedless_reference_matches_seedless_current(self):
        # A seeded current report shares no cells with a seedless
        # (schema-4) reference: the seed axis is part of identity.
        seeded = _report([dict(_cell("matrix", "seq", 100, 0.01),
                               seed=1)])
        problems = compare_reports(seeded, self.reference)
        assert problems == ["no shared (benchmark, mode) cells to "
                            "compare"]

    def test_failed_cells_absent_from_delta_table(self):
        current = _report([_cell("matrix", "seq", 100, 0.01),
                           {"benchmark": "matrix", "mode": "coupled",
                            "error_type": "X", "message": "y"}])
        lines = delta_table(current, self.reference)
        assert len(lines) == 2                 # header + matrix/seq
        assert not any("coupled" in line for line in lines)


class TestDeltaTable:
    def test_sorted_worst_regression_first(self):
        reference = _report([_cell("matrix", "seq", 1000, 0.01),
                             _cell("fft", "seq", 1000, 0.01)])
        current = _report([_cell("matrix", "seq", 1000, 0.02),   # -50%
                           _cell("fft", "seq", 1000, 0.005)])    # +100%
        lines = delta_table(current, reference)
        assert len(lines) == 3                     # header + two cells
        assert lines[1].startswith("matrix")
        assert "-50.0%" in lines[1]
        assert lines[2].startswith("fft")
        assert "+100.0%" in lines[2]

    def test_only_shared_cells_listed(self):
        reference = _report([_cell("matrix", "seq", 1000, 0.01),
                             _cell("lud", "seq", 1000, 0.01)])
        current = _report([_cell("matrix", "seq", 1000, 0.01)])
        lines = delta_table(current, reference)
        assert len(lines) == 2
        assert not any("lud" in line for line in lines)

    def test_no_shared_cells_is_empty(self):
        reference = _report([_cell("lud", "seq", 1000, 0.01)])
        current = _report([_cell("matrix", "seq", 1000, 0.01)])
        assert delta_table(current, reference) == []


class TestSuiteSpecs:
    def test_quick_subset(self):
        specs = suite_specs(quick=True)
        assert {s.benchmark for s in specs} == set(QUICK_BENCHMARKS)

    def test_config_threaded_through(self):
        config = baseline().with_engine("scan")
        specs = suite_specs(quick=True, config=config)
        assert all(s.config is config for s in specs)

    def test_default_specs_are_seedless(self):
        # The classic suite leaves spec.seed None (harness default),
        # keeping run keys and report cell identity unchanged.
        assert all(s.seed is None for s in suite_specs(quick=True))

    def test_seeds_expand_every_cell(self):
        base = suite_specs(quick=True)
        specs = suite_specs(quick=True, seeds=[1, 2, 3])
        assert len(specs) == 3 * len(base)
        cells = {(s.benchmark, s.mode) for s in base}
        for cell in cells:
            seeds = [s.seed for s in specs
                     if (s.benchmark, s.mode) == cell]
            assert seeds == [1, 2, 3]


class TestBenchCommand:
    def _run(self, tmp_path, *extra):
        import io
        out = io.StringIO()
        path = tmp_path / "bench.json"
        code = main(["--quick", "-o", str(path),
                     "--no-compile-cache"] + list(extra), out=out)
        report = json.load(open(path)) if path.exists() else None
        return code, out.getvalue(), report

    def test_report_schema_and_gate(self, tmp_path):
        code, text, report = self._run(tmp_path)
        assert code == 0
        assert report["schema"] == 5
        assert report["engine"] == "event"
        assert report["fusion"] is True
        assert report["sanitize"] == "off"
        assert report["on_error"] == "raise"
        assert report["cell_timeout"] is None
        assert report["backend"] == "pool"
        assert report["lanes"] == 1
        assert report["failed"] == []
        assert report["aggregate_cycles_per_sec"] > 0
        for cell in report["results"]:
            assert cell["cycles"] > 0
            assert cell["cache_hit"] is False    # cache disabled
            # Schema 5: backend provenance per cell, outside "stats"
            # (digests stay engine-agnostic); default-seed cells must
            # not grow a seed key — cell identity for --compare
            # against older references depends on it.
            assert cell["backend"] == "scalar"
            assert cell["lanes"] == 1
            assert cell["peeled_lanes"] == 0
            assert "seed" not in cell
            assert "backend" not in cell["stats"]
            # Per-cell dispatch count rides outside "stats" (which
            # stays digest-identical across kernels); the CI fusion
            # leg gates on it being nonzero where fusion must fire.
            assert cell["fused_dispatches"] >= 0
            assert "fused_dispatches" not in cell["stats"]
            assert isinstance(cell["defuse_reasons"], dict)
            assert cell["quarantined_blocks"] == 0
            assert "defuse_reasons" not in cell["stats"]
        assert any(cell["fused_dispatches"] > 0
                   for cell in report["results"])
        # A second run compared against the first must pass the gate.
        # Wall clock inside the test process is noisy, so relax the
        # throughput threshold; the threshold logic itself is covered
        # deterministically in TestCompareReports.
        reference = tmp_path / "bench.json"
        out_path = tmp_path / "bench2.json"
        import io
        out = io.StringIO()
        code = main(["--quick", "-o", str(out_path),
                     "--no-compile-cache",
                     "--regression-threshold", "0.95",
                     "--compare", str(reference)], out=out)
        assert code == 0
        assert "passed" in out.getvalue()

    def test_gate_fails_on_cycle_drift(self, tmp_path):
        code, __, report = self._run(tmp_path)
        assert code == 0
        report["results"][0]["cycles"] += 1
        doctored = tmp_path / "doctored.json"
        doctored.write_text(json.dumps(report))
        code, text, __ = self._run(tmp_path, "--compare", str(doctored))
        assert code == 1
        assert "cycles drifted" in text

    def test_no_fusion_flag_recorded(self, tmp_path):
        code, __, report = self._run(tmp_path, "--no-fusion")
        assert code == 0
        assert report["engine"] == "event"
        assert report["fusion"] is False
        assert all(cell["fused_dispatches"] == 0
                   for cell in report["results"])

    def test_resume_journal_written_and_replayed(self, tmp_path):
        journal = tmp_path / "sweep.journal.jsonl"
        code, __, report = self._run(tmp_path, "--resume", str(journal))
        assert code == 0
        assert journal.exists()
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        assert lines[0]["kind"] == "header"
        cells = [l for l in lines if l.get("kind") == "cell"]
        assert len(cells) == len(report["results"])
        assert all(cell["status"] == "ok" for cell in cells)
        # A second run resuming from the journal replays every cell —
        # same cycles, near-zero wall (nothing is re-simulated).
        import io
        out = io.StringIO()
        path2 = tmp_path / "bench2.json"
        code = main(["--quick", "-o", str(path2), "--no-compile-cache",
                     "--resume", str(journal)], out=out)
        assert code == 0
        report2 = json.load(open(path2))
        assert [(r["benchmark"], r["mode"], r["cycles"])
                for r in report2["results"]] == \
            [(r["benchmark"], r["mode"], r["cycles"])
             for r in report["results"]]
        # Replayed cells keep their journaled dispatch counts and
        # sanitizer/fusion counters.
        assert [r["fused_dispatches"] for r in report2["results"]] == \
            [r["fused_dispatches"] for r in report["results"]]
        assert [r["defuse_reasons"] for r in report2["results"]] == \
            [r["defuse_reasons"] for r in report["results"]]
        assert [r["quarantined_blocks"] for r in report2["results"]] == \
            [r["quarantined_blocks"] for r in report["results"]]
        # Journal unchanged: replayed cells are not re-recorded.
        assert len(journal.read_text().splitlines()) == len(lines)

    def test_batch_backend_report(self, tmp_path):
        code, text, report = self._run(tmp_path, "--backend", "batch",
                                       "--lanes", "2")
        assert code == 0
        assert report["schema"] == 5
        assert report["backend"] == "batch"
        assert report["lanes"] == 2
        cells = report["results"]
        # Every cell expands into one record per seed, identity
        # carried in the record.
        assert len(cells) == 2 * len({(c["benchmark"], c["mode"])
                                      for c in cells})
        for cell in cells:
            assert cell["seed"] in (1, 2)
            assert cell["backend"] in ("batch", "batch-peeled",
                                       "scalar")
            assert cell["peeled_lanes"] < max(cell["lanes"], 1)
        # The lockstep engine must actually carry lanes (dormancy
        # guard: a backend that peeled everything would report every
        # cell as batch-peeled).
        assert any(cell["backend"] == "batch" for cell in cells)
        # Render marks the seed axis and peeled lanes.
        assert "backend=batch" in text
        assert "@1" in text

    def test_batch_gate_against_own_reference(self, tmp_path):
        code, __, report = self._run(tmp_path, "--backend", "batch",
                                     "--lanes", "2")
        assert code == 0
        import io
        out = io.StringIO()
        path2 = tmp_path / "bench2.json"
        code = main(["--quick", "-o", str(path2), "--no-compile-cache",
                     "--backend", "batch", "--lanes", "2",
                     "--regression-threshold", "0.95",
                     "--compare", str(tmp_path / "bench.json")],
                    out=out)
        assert code == 0
        assert "passed" in out.getvalue()

    def test_batch_sanitize_conflict_rejected(self, tmp_path):
        import pytest
        with pytest.raises(SystemExit):
            main(["--quick", "--backend", "batch", "--sanitize",
                  "-o", str(tmp_path / "x.json")])

    def test_batch_resume_replays_lane_cells(self, tmp_path):
        journal = tmp_path / "sweep.journal.jsonl"
        code, __, report = self._run(tmp_path, "--backend", "batch",
                                     "--lanes", "2",
                                     "--resume", str(journal))
        assert code == 0
        lines = journal.read_text().splitlines()
        import io
        out = io.StringIO()
        path2 = tmp_path / "bench2.json"
        code = main(["--quick", "-o", str(path2), "--no-compile-cache",
                     "--backend", "batch", "--lanes", "2",
                     "--resume", str(journal)], out=out)
        assert code == 0
        report2 = json.load(open(path2))
        key = lambda r: (r["benchmark"], r["mode"], r["seed"])
        assert [(key(r), r["cycles"], r["lanes"], r["peeled_lanes"])
                for r in report2["results"]] == \
            [(key(r), r["cycles"], r["lanes"], r["peeled_lanes"])
             for r in report["results"]]
        # Nothing re-simulated, nothing re-recorded.
        assert journal.read_text().splitlines() == lines

    def test_compare_warns_on_engine_mismatch(self, tmp_path):
        code, __, report = self._run(tmp_path, "--engine", "scan")
        assert code == 0
        assert report["engine"] == "scan"
        reference = tmp_path / "bench.json"
        code, text, __ = self._run(tmp_path, "--compare", str(reference),
                                   "--regression-threshold", "0.95")
        assert code == 0                          # warning, not failure
        assert "warning" in text
        assert "scan-engine reference" in text
        # The per-cell delta table rides along with every comparison.
        assert "old c/s" in text
