"""Unit tests for the fault-injection subsystem (repro.sim.faults)."""

import pytest

from repro import baseline
from repro.errors import FaultConfigError
from repro.sim.faults import FaultEvent, FaultInjector, FaultPlan
from repro.sim.stats import Stats


class TestFaultEvent:
    def test_window_membership(self):
        event = FaultEvent("unit_offline", start=10, duration=5,
                           unit="c0.iu0")
        assert not event.active(9)
        assert event.active(10) and event.active(14)
        assert not event.active(15)

    def test_address_window(self):
        event = FaultEvent("mem_delay", start=0, duration=1, extra=3,
                           lo=8, hi=16)
        assert not event.covers(7)
        assert event.covers(8) and event.covers(15)
        assert not event.covers(16)

    def test_open_ended_address_window(self):
        event = FaultEvent("bank_blackout", start=0, duration=1)
        assert event.covers(0) and event.covers(10**6)

    @pytest.mark.parametrize("kwargs", [
        dict(kind="nonsense", start=0, duration=1),
        dict(kind="unit_offline", start=0, duration=1),          # no unit
        dict(kind="unit_offline", start=-1, duration=1, unit="u"),
        dict(kind="unit_offline", start=0, duration=0, unit="u"),
        dict(kind="mem_delay", start=0, duration=1),             # no extra
        dict(kind="presence_stall", start=0, duration=1, extra=0),
        dict(kind="mem_delay", start=0, duration=1, extra=1,
             lo=8, hi=8),                                        # empty
    ])
    def test_bad_events_rejected(self, kwargs):
        with pytest.raises(FaultConfigError):
            FaultEvent(**kwargs)


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan([
            FaultEvent("unit_offline", start=5, duration=100,
                       unit="c0.iu0"),
            FaultEvent("mem_delay", start=0, duration=50, extra=7,
                       lo=0, hi=64),
        ], reroute=False, label="test")
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()
        assert again.reroute is False
        assert len(again) == 2

    def test_bad_json_rejected(self):
        with pytest.raises(FaultConfigError, match="not valid JSON"):
            FaultPlan.from_json("{")
        with pytest.raises(FaultConfigError):
            FaultPlan.from_json('{"events": 3}')
        with pytest.raises(FaultConfigError, match="unknown fault"):
            FaultPlan.from_json('{"events": [], "bogus": 1}')

    def test_validate_against_unknown_unit(self):
        plan = FaultPlan([FaultEvent("unit_offline", start=0, duration=1,
                                     unit="c9.iu0")])
        with pytest.raises(FaultConfigError, match="c9.iu0"):
            plan.validate_against(baseline())

    def test_validate_against_bad_address_window(self):
        plan = FaultPlan([FaultEvent("mem_delay", start=0, duration=1,
                                     extra=1, lo=0, hi=10**9)])
        with pytest.raises(FaultConfigError, match="outside memory"):
            plan.validate_against(baseline())

    def test_config_attachment_validates(self):
        plan = FaultPlan([FaultEvent("unit_offline", start=0, duration=1,
                                     unit="c9.iu0")])
        with pytest.raises(FaultConfigError):
            baseline().with_faults(plan)

    def test_with_faults_survives_derivation(self):
        plan = FaultPlan([FaultEvent("unit_offline", start=0, duration=1,
                                     unit="c0.iu0")])
        config = baseline().with_faults(plan)
        assert config.with_seed(9).fault_plan is plan
        assert config.with_arbitration("round-robin").fault_plan is plan
        assert config.with_faults(None).fault_plan is None

    def test_random_plan_is_deterministic(self):
        config = baseline()
        a = FaultPlan.random(3, config, rate=2.0, horizon=5000)
        b = FaultPlan.random(3, config, rate=2.0, horizon=5000)
        assert a.to_dict() == b.to_dict()
        assert len(a) == 10
        assert all(e.kind == "unit_offline" for e in a.events)
        a.validate_against(config)


class TestFaultInjector:
    def _injector(self, events, reroute=True):
        return FaultInjector(FaultPlan(events, reroute=reroute), Stats())

    def test_unit_windows_merge(self):
        injector = self._injector([
            FaultEvent("unit_offline", start=10, duration=10, unit="u"),
            FaultEvent("unit_offline", start=15, duration=10, unit="u"),
            FaultEvent("unit_offline", start=40, duration=5, unit="u"),
        ])
        assert not injector.unit_offline("u", 9)
        assert injector.unit_offline("u", 12)
        assert injector.unit_offline("u", 24)    # merged overlap
        assert not injector.unit_offline("u", 25)
        assert injector.unit_offline("u", 44)
        assert not injector.unit_offline("other", 12)

    def test_writeback_block_is_separate(self):
        injector = self._injector([
            FaultEvent("writeback_block", start=0, duration=5, unit="u")])
        assert injector.writeback_blocked("u", 0)
        assert not injector.unit_offline("u", 0)

    def test_memory_stall_sums_delays_and_respects_blackout(self):
        injector = self._injector([
            FaultEvent("mem_delay", start=0, duration=100, extra=4,
                       lo=0, hi=32),
            FaultEvent("mem_delay", start=0, duration=100, extra=2),
            FaultEvent("bank_blackout", start=50, duration=20,
                       lo=0, hi=16),
        ])
        assert injector.memory_stall(8, 10) == 6       # both delays
        assert injector.memory_stall(40, 10) == 2      # second only
        assert injector.memory_stall(8, 55) == 15      # blackout until 70
        assert injector.memory_stall(8, 200) == 0

    def test_presence_delay(self):
        injector = self._injector([
            FaultEvent("presence_stall", start=0, duration=10, extra=8,
                       lo=4, hi=5)])
        assert injector.presence_delay(4, 3) == 8
        assert injector.presence_delay(5, 3) == 0
        assert injector.presence_delay(4, 11) == 0
