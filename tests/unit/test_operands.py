"""Register/immediate/label operand behaviour."""

import pytest

from repro.isa.operands import (Imm, Label, Reg, is_source, parse_operand,
                                parse_reg)


class TestReg:
    def test_str(self):
        assert str(Reg(2, 17)) == "c2.r17"

    def test_equality_and_hash(self):
        assert Reg(1, 2) == Reg(1, 2)
        assert Reg(1, 2) != Reg(2, 2)
        assert len({Reg(0, 0), Reg(0, 0), Reg(0, 1)}) == 2

    def test_ordering(self):
        assert Reg(0, 5) < Reg(1, 0)
        assert Reg(1, 1) < Reg(1, 2)

    def test_parse_roundtrip(self):
        reg = Reg(3, 42)
        assert parse_reg(str(reg)) == reg

    @pytest.mark.parametrize("text", ["r5", "c1r5", "x0.r1", "c.r1"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_reg(text)


class TestImm:
    def test_int_roundtrip(self):
        assert parse_operand("#42") == Imm(42)
        assert parse_operand("#-7") == Imm(-7)

    def test_float_roundtrip(self):
        assert parse_operand("#2.5") == Imm(2.5)
        assert parse_operand("#-0.125") == Imm(-0.125)

    def test_str_is_parseable(self):
        for value in (3, -1, 0.5, 2.0):
            assert parse_operand(str(Imm(value))) == Imm(value)

    def test_float_int_imms_distinct(self):
        assert Imm(1) != Imm(1.0) or isinstance(Imm(1).value, int)


class TestSources:
    def test_regs_and_imms_are_sources(self):
        assert is_source(Reg(0, 0))
        assert is_source(Imm(1))

    def test_labels_are_not_sources(self):
        assert not is_source(Label("L0"))

    def test_parse_operand_register(self):
        assert parse_operand(" c0.r3 ") == Reg(0, 3)
