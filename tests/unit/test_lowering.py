"""Lowering to IR: type inference, CFG construction, opcode choice."""

import pytest

from repro.compiler.astnodes import FLOAT, GlobalDecl, INT, Num
from repro.compiler.frontend import parse_stmt
from repro.compiler.lowering import lower_thread
from repro.compiler.sexpr import read_one
from repro.errors import CompileError

SYMBOLS = {
    "F": GlobalDecl("F", Num(8), FLOAT, True),
    "I": GlobalDecl("I", Num(8), INT, True),
}


def lower(text, params=(), signatures=None):
    body = parse_stmt(read_one(text))
    return lower_thread("t", body, SYMBOLS, signatures or {}, params)


def all_ops(thread_ir):
    return [instr.op for block in thread_ir.blocks
            for instr in block.all_instrs()]


class TestTypes:
    def test_integer_arithmetic_selects_iu_ops(self):
        ops = all_ops(lower("(let ((x 1)) (set! x (+ x 2)))"))
        assert "iadd" in ops and "fadd" not in ops

    def test_float_arithmetic_selects_fpu_ops(self):
        ops = all_ops(lower("(let ((x 1.0)) (set! x (* x 2.0)))"))
        assert "fmul" in ops

    def test_mixed_operands_widen_via_itof(self):
        ops = all_ops(lower(
            "(let ((i 3) (x 0.5)) (set! x (* x (float i))))"))
        assert "itof" in ops and "fmul" in ops

    def test_mixed_binop_widen_automatically(self):
        ops = all_ops(lower("(let ((i 3) (x (+ i 0.5))) (aset! F 0 x))"))
        assert "itof" in ops or "fadd" in ops

    def test_float_to_int_requires_explicit_cast(self):
        with pytest.raises(CompileError, match="narrowing"):
            lower("(let ((i 0)) (set! i (aref F 0)))")

    def test_explicit_int_cast(self):
        ops = all_ops(lower("(let ((i (int (aref F 0)))) (aset! I 0 i))"))
        assert "ftoi" in ops

    def test_comparison_result_is_int(self):
        thread_ir = lower("(let ((c (< 1.0 2.0))) (aset! I 0 c))")
        ops = all_ops(thread_ir)
        assert "flt" in ops

    def test_float_index_rejected(self):
        with pytest.raises(CompileError, match="integer"):
            lower("(aset! F (aref F 0) 1.0)")

    def test_store_coerces_value_type(self):
        ops = all_ops(lower("(aset! F 0 3)"))
        assert "st" in ops

    def test_int_store_of_float_rejected(self):
        with pytest.raises(CompileError):
            lower("(aset! I 0 1.5)")


class TestControlFlow:
    def test_while_produces_loop_blocks(self):
        thread_ir = lower(
            "(let ((i 0)) (while (< i 4) (set! i (+ i 1))))")
        names = [b.name for b in thread_ir.blocks]
        assert any(n.startswith("h") for n in names)
        assert any(n.startswith("x") for n in names)
        back_edges = [b.terminator.target for b in thread_ir.blocks
                      if b.terminator is not None
                      and b.terminator.op == "br"]
        assert any(t.startswith("h") for t in back_edges)

    def test_if_produces_brf(self):
        thread_ir = lower("(if (< 1 2) (aset! I 0 1) (aset! I 0 2))")
        terminators = [b.terminator.op for b in thread_ir.blocks
                       if b.terminator is not None]
        assert "brf" in terminators

    def test_thread_always_ends_in_halt(self):
        thread_ir = lower("(aset! I 0 1)")
        assert thread_ir.blocks[-1].terminator.op == "halt"

    def test_if_expression_creates_join_home(self):
        thread_ir = lower("(aset! F 0 (if (< 1 2) 1.0 2.0))")
        homes = [instr.dest for block in thread_ir.blocks
                 for instr in block.all_instrs()
                 if instr.dest is not None and instr.dest.is_home]
        assert homes, "ternary join value must be a home register"

    def test_if_expression_arm_type_mismatch(self):
        with pytest.raises(CompileError):
            lower("(aset! F 0 (if (< 1 2) 1 2.5))")


class TestMemoryAndSync:
    def test_load_flavors(self):
        assert "ld_fe" in all_ops(lower("(sync (aref-fe I 0))"))
        assert "ld_ff" in all_ops(lower("(sync (aref-ff I 0))"))

    def test_store_flavors(self):
        assert "st_ef" in all_ops(lower("(aset-ef! I 0 1)"))

    def test_sync_emits_sink(self):
        assert "sink" in all_ops(lower("(sync (aref I 0))"))

    def test_sync_of_constant_is_noop(self):
        assert "sink" not in all_ops(lower("(sync 5)"))

    def test_unknown_array_rejected(self):
        with pytest.raises(CompileError, match="unknown array"):
            lower("(aset! ghost 0 1)")


class TestForkLowering:
    def test_fork_coerces_arguments(self):
        thread_ir = lower("(fork (w 1 2))",
                          signatures={"w": [INT, FLOAT]})
        forks = [i for b in thread_ir.blocks for i in b.all_instrs()
                 if i.op == "fork"]
        assert len(forks) == 1
        assert forks[0].fork_args[1].value == 2.0

    def test_fork_arity_checked(self):
        with pytest.raises(CompileError):
            lower("(fork (w 1))", signatures={"w": [INT, INT]})

    def test_unknown_kernel_rejected(self):
        with pytest.raises(CompileError):
            lower("(fork (ghost 1))")


class TestParams:
    def test_params_become_homes(self):
        thread_ir = lower("(aset! F 0 x)", params=(("i", INT),
                                                   ("x", FLOAT)))
        assert [name for name, __ in thread_ir.params] == ["i", "x"]
        assert thread_ir.params[1][1].type is FLOAT

    def test_unbound_variable_rejected(self):
        with pytest.raises(CompileError, match="unbound"):
            lower("(aset! I 0 nowhere)")
