"""Operation caches (the relaxed no-I-cache-miss assumption)."""

import pytest

from repro import baseline, compile_program, run_program
from repro.errors import ConfigError
from repro.sim.opcache import OpCacheSpec, OperationCache
from repro.sim.stats import Stats

SOURCE = """
(program
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (+ i 1)))))
"""


class FakeThread:
    def __init__(self, name, ip):
        class P:
            pass
        self.program = P()
        self.program.name = name
        self.ip = ip


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OpCacheSpec(capacity=0)
        with pytest.raises(ConfigError):
            OpCacheSpec(fill_penalty=0)


class TestCacheBehaviour:
    def test_miss_then_fill_then_hit(self):
        cache = OperationCache(OpCacheSpec(capacity=4, fill_penalty=3),
                               Stats())
        thread = FakeThread("main", 0)
        assert not cache.ready(thread, 0)      # miss, fill starts
        assert not cache.ready(thread, 1)      # filling
        assert not cache.ready(thread, 2)
        assert cache.ready(thread, 3)          # fill complete
        assert cache.ready(thread, 4)          # now resident

    def test_lru_eviction(self):
        cache = OperationCache(OpCacheSpec(capacity=2, fill_penalty=1),
                               Stats())
        for word in range(3):
            thread = FakeThread("main", word)
            cache.ready(thread, 0)
            assert cache.ready(thread, 1)
        assert cache.resident_words() == 2
        # Word 0 was evicted; touching it misses again.
        stats_before = cache.stats.opcache_misses
        assert not cache.ready(FakeThread("main", 0), 10)
        assert cache.stats.opcache_misses == stats_before + 1

    def test_threads_share_lines_by_program(self):
        cache = OperationCache(OpCacheSpec(capacity=4, fill_penalty=1),
                               Stats())
        a = FakeThread("work@0", 3)
        b = FakeThread("work@0", 3)
        cache.ready(a, 0)
        assert cache.ready(a, 1)
        assert cache.ready(b, 2)        # same program+word: warm


class TestFillBoard:
    """The node-wide fill board dedupes in-flight fills across units.

    Regression: a fault-rerouted thread bouncing between surviving
    units used to start an independent fill — and count an independent
    miss, and pay an independent penalty — on every unit it visited for
    the same (program, word)."""

    def _pair(self, penalty=4):
        stats = Stats()
        board = {}
        spec = OpCacheSpec(capacity=8, fill_penalty=penalty)
        return (OperationCache(spec, stats, fill_board=board),
                OperationCache(spec, stats, fill_board=board),
                stats, board)

    def test_second_unit_joins_inflight_fill(self):
        a, b, stats, board = self._pair(penalty=4)
        thread = FakeThread("main", 0)
        assert not a.ready(thread, 0)           # miss: fill starts
        assert stats.opcache_misses == 1
        assert not b.ready(thread, 1)           # rerouted mid-fill: joins
        assert stats.opcache_misses == 1        # one fetch, one miss
        assert not b.ready(thread, 3)
        assert a.ready(thread, 4)               # shared ready cycle
        assert b.ready(thread, 4)

    def test_board_cleared_after_fill_completes(self):
        a, b, stats, board = self._pair(penalty=2)
        thread = FakeThread("main", 5)
        a.ready(thread, 0)
        b.ready(thread, 0)
        assert board                            # fill in flight
        assert a.ready(thread, 2) and b.ready(thread, 2)
        assert not board

    def test_completed_fill_not_joined(self):
        # A third unit arriving after the fill landed starts its own:
        # the word is in the other units' caches, not in flight.
        a, b, stats, board = self._pair(penalty=2)
        thread = FakeThread("main", 0)
        a.ready(thread, 0)
        assert a.ready(thread, 2)
        assert not b.ready(thread, 3)           # fresh fill
        assert stats.opcache_misses == 2

    def test_distinct_words_do_not_collide(self):
        a, b, stats, board = self._pair(penalty=4)
        a.ready(FakeThread("main", 0), 0)
        b.ready(FakeThread("main", 1), 0)
        assert stats.opcache_misses == 2
        assert len(board) == 2

    def test_unshared_caches_fill_independently(self):
        stats = Stats()
        spec = OpCacheSpec(capacity=8, fill_penalty=4)
        a = OperationCache(spec, stats)
        b = OperationCache(spec, stats)
        thread = FakeThread("main", 0)
        a.ready(thread, 0)
        b.ready(thread, 1)
        assert stats.opcache_misses == 2


class TestEndToEnd:
    def test_results_unaffected(self):
        config = baseline().with_op_cache(OpCacheSpec(capacity=8,
                                                      fill_penalty=5))
        compiled = compile_program(SOURCE, config, mode="sts")
        result = run_program(compiled.program, config)
        assert result.read_symbol("out") == [1, 2, 3, 4]
        assert result.stats.opcache_misses > 0

    def test_cold_misses_cost_cycles(self):
        perfect = baseline()
        cold = baseline().with_op_cache(OpCacheSpec(capacity=64,
                                                    fill_penalty=8))
        a = run_program(compile_program(SOURCE, perfect,
                                        mode="sts").program, perfect)
        b = run_program(compile_program(SOURCE, cold,
                                        mode="sts").program, cold)
        assert b.cycles > a.cycles

    def test_reroute_with_opcache_correct_and_deterministic(self):
        # Fault reroute x operation cache: the rerouted thread's fills
        # dedupe through the node-wide fill board instead of
        # double-counting on every unit visited.
        from repro.sim.faults import FaultEvent, FaultPlan
        plan = FaultPlan([FaultEvent("unit_offline", start=2,
                                     duration=400, unit="c0.iu0")])
        config = baseline().with_op_cache(
            OpCacheSpec(capacity=64, fill_penalty=6)).with_faults(plan)
        compiled = compile_program(SOURCE, config, mode="sts")
        first = run_program(compiled.program, config)
        again = run_program(compiled.program, config)
        assert first.read_symbol("out") == [1, 2, 3, 4]
        assert first.cycles == again.cycles
        assert first.stats.summary() == again.stats.summary()
        assert first.stats.opcache_misses > 0

    def test_derivation_preserves_op_cache(self):
        spec = OpCacheSpec(capacity=16)
        config = baseline().with_op_cache(spec).with_memory(
            baseline().memory).with_seed(9)
        assert config.op_cache is spec
