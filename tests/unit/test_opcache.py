"""Operation caches (the relaxed no-I-cache-miss assumption)."""

import pytest

from repro import baseline, compile_program, run_program
from repro.errors import ConfigError
from repro.sim.opcache import OpCacheSpec, OperationCache
from repro.sim.stats import Stats

SOURCE = """
(program
  (global out 4 :int)
  (main
    (for (i 0 4)
      (aset! out i (+ i 1)))))
"""


class FakeThread:
    def __init__(self, name, ip):
        class P:
            pass
        self.program = P()
        self.program.name = name
        self.ip = ip


class TestSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            OpCacheSpec(capacity=0)
        with pytest.raises(ConfigError):
            OpCacheSpec(fill_penalty=0)


class TestCacheBehaviour:
    def test_miss_then_fill_then_hit(self):
        cache = OperationCache(OpCacheSpec(capacity=4, fill_penalty=3),
                               Stats())
        thread = FakeThread("main", 0)
        assert not cache.ready(thread, 0)      # miss, fill starts
        assert not cache.ready(thread, 1)      # filling
        assert not cache.ready(thread, 2)
        assert cache.ready(thread, 3)          # fill complete
        assert cache.ready(thread, 4)          # now resident

    def test_lru_eviction(self):
        cache = OperationCache(OpCacheSpec(capacity=2, fill_penalty=1),
                               Stats())
        for word in range(3):
            thread = FakeThread("main", word)
            cache.ready(thread, 0)
            assert cache.ready(thread, 1)
        assert cache.resident_words() == 2
        # Word 0 was evicted; touching it misses again.
        stats_before = cache.stats.opcache_misses
        assert not cache.ready(FakeThread("main", 0), 10)
        assert cache.stats.opcache_misses == stats_before + 1

    def test_threads_share_lines_by_program(self):
        cache = OperationCache(OpCacheSpec(capacity=4, fill_penalty=1),
                               Stats())
        a = FakeThread("work@0", 3)
        b = FakeThread("work@0", 3)
        cache.ready(a, 0)
        assert cache.ready(a, 1)
        assert cache.ready(b, 2)        # same program+word: warm


class TestEndToEnd:
    def test_results_unaffected(self):
        config = baseline().with_op_cache(OpCacheSpec(capacity=8,
                                                      fill_penalty=5))
        compiled = compile_program(SOURCE, config, mode="sts")
        result = run_program(compiled.program, config)
        assert result.read_symbol("out") == [1, 2, 3, 4]
        assert result.stats.opcache_misses > 0

    def test_cold_misses_cost_cycles(self):
        perfect = baseline()
        cold = baseline().with_op_cache(OpCacheSpec(capacity=64,
                                                    fill_penalty=8))
        a = run_program(compile_program(SOURCE, perfect,
                                        mode="sts").program, perfect)
        b = run_program(compile_program(SOURCE, cold,
                                        mode="sts").program, cold)
        assert b.cycles > a.cycles

    def test_derivation_preserves_op_cache(self):
        spec = OpCacheSpec(capacity=16)
        config = baseline().with_op_cache(spec).with_memory(
            baseline().memory).with_seed(9)
        assert config.op_cache is spec
