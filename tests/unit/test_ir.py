"""IR data structures: vregs, instructions, blocks, CFG."""

import pytest

from repro.compiler.ir import BasicBlock, Const, IRInstr, ThreadIR, VReg
from repro.errors import CompileError


class TestVRegAndConst:
    def test_vreg_identity_is_id(self):
        a = VReg(1, "i", "x", True)
        b = VReg(1, "i")
        assert a == b and hash(a) == hash(b)

    def test_const_typing(self):
        assert Const(3).type == "i"
        assert Const(3.0).type == "f"


class TestIRInstr:
    def test_purity(self):
        add = IRInstr("iadd", VReg(1, "i"), [Const(1), Const(2)])
        assert add.is_pure
        load = IRInstr("ld", VReg(2, "f"), [Const(0)], sym="A")
        assert not load.is_pure
        halt = IRInstr("halt")
        assert not halt.is_pure

    def test_sync_memory_detection(self):
        assert IRInstr("ld_fe", VReg(1, "i"), [Const(0)],
                       sym="A").is_sync_memory
        assert IRInstr("st_ef", None, [Const(1), Const(0)],
                       sym="A").is_sync_memory
        assert not IRInstr("ld", VReg(1, "i"), [Const(0)],
                           sym="A").is_sync_memory
        assert not IRInstr("st", None, [Const(1), Const(0)],
                           sym="A").is_sync_memory

    def test_source_vregs_include_fork_args(self):
        v = VReg(5, "i")
        fork = IRInstr("fork", target="child", fork_args=[v, Const(2)])
        assert fork.source_vregs() == [v]

    def test_str_is_informative(self):
        text = str(IRInstr("fmul", VReg(1, "f"), [VReg(2, "f"),
                                                  Const(0.5)]))
        assert "fmul" in text and "0.5" in text


class TestBlocksAndCfg:
    def make_thread(self):
        thread = ThreadIR("t")
        header = thread.new_block("h")
        header.terminator = IRInstr("brf", srcs=[Const(1)], target=None)
        body = thread.new_block("w")
        body.terminator = IRInstr("br", target=header.name)
        exit_block = thread.new_block("x")
        exit_block.terminator = IRInstr("halt")
        header.terminator.target = exit_block.name
        return thread, header, body, exit_block

    def test_successors(self):
        thread, header, body, exit_block = self.make_thread()
        succs = thread.cfg_successors()
        assert set(succs[header.name]) == {exit_block.name, body.name}
        assert succs[body.name] == [header.name]
        assert succs[exit_block.name] == []

    def test_fallthrough_successor(self):
        thread = ThreadIR("t")
        a = thread.new_block("a")
        b = thread.new_block("b")
        b.terminator = IRInstr("halt")
        assert thread.cfg_successors()[a.name] == [b.name]

    def test_validation_requires_halt(self):
        thread = ThreadIR("t")
        block = thread.new_block()
        block.terminator = IRInstr("br", target=block.name)
        with pytest.raises(CompileError, match="halt"):
            thread.validate()

    def test_validation_rejects_unknown_targets(self):
        thread = ThreadIR("t")
        block = thread.new_block()
        block.terminator = IRInstr("halt")
        block.instrs.append(IRInstr("brf", srcs=[Const(1)],
                                    target="ghost"))
        # brf is not a terminator here, but validate still checks it.
        thread.blocks[-1].terminator = IRInstr("halt")
        with pytest.raises(CompileError):
            thread.validate()

    def test_vreg_counter_unique(self):
        thread = ThreadIR("t")
        ids = {thread.new_vreg("i").id for __ in range(100)}
        assert len(ids) == 100
