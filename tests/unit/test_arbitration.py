"""Thread arbitration policies."""

import pytest

from repro.errors import ConfigError
from repro.sim.arbitration import (PriorityArbiter, RoundRobinArbiter,
                                   make_arbiter)


class FakeThread:
    def __init__(self, tid, priority=None):
        self.tid = tid
        self.priority = tid if priority is None else priority


class TestPriority:
    def test_orders_by_priority_then_tid(self):
        threads = [FakeThread(2), FakeThread(0), FakeThread(1, priority=0)]
        ordered = PriorityArbiter().order(threads, cycle=5)
        assert [t.tid for t in ordered] == [0, 1, 2]

    def test_stable_across_cycles(self):
        threads = [FakeThread(1), FakeThread(0)]
        arbiter = PriorityArbiter()
        assert [t.tid for t in arbiter.order(threads, 0)] == \
               [t.tid for t in arbiter.order(threads, 99)]


class TestRoundRobin:
    def test_rotation(self):
        # The rotation is per-arbiter state, one step per scan; the
        # cycle argument is ignored (it used to key the phase, which
        # starved threads when the population churned).
        threads = [FakeThread(0), FakeThread(1), FakeThread(2)]
        arbiter = RoundRobinArbiter()
        assert [t.tid for t in arbiter.order(threads, 0)] == [0, 1, 2]
        assert [t.tid for t in arbiter.order(threads, 1)] == [1, 2, 0]
        assert [t.tid for t in arbiter.order(threads, 3)] == [2, 0, 1]
        assert [t.tid for t in arbiter.order(threads, 9)] == [0, 1, 2]

    def test_rotation_resumes_after_last_served_tid(self):
        arbiter = RoundRobinArbiter()
        arbiter.order([FakeThread(0), FakeThread(1)], 0)     # serves 0
        # Thread 1 finished; threads 4 and 7 spawned.  The scan resumes
        # from the next-higher live tid, not from a cycle-derived phase.
        threads = [FakeThread(0), FakeThread(4), FakeThread(7)]
        assert [t.tid for t in arbiter.order(threads, 1)] == [4, 7, 0]
        assert [t.tid for t in arbiter.order(threads, 2)] == [7, 0, 4]

    def test_empty(self):
        assert RoundRobinArbiter().order([], 3) == []

    def test_fairness_under_thread_churn(self):
        # Regression: with the phase keyed to `cycle % len(threads)`, a
        # transient thread joining every third cycle re-derived the
        # phase and pinned the scan head, starving thread 0 (it led 10
        # of 120 scans).  With identity-based rotation the three
        # persistent threads lead equally often, within +-1.
        persistent = [FakeThread(0), FakeThread(1), FakeThread(2)]
        arbiter = RoundRobinArbiter()
        grants = {0: 0, 1: 0, 2: 0}
        fresh_tid = 100
        for cycle in range(120):
            threads = list(persistent)
            if cycle % 3 == 0:
                threads.append(FakeThread(fresh_tid))
                fresh_tid += 1
            head = arbiter.order(threads, cycle)[0]
            if head.tid in grants:
                grants[head.tid] += 1
        assert max(grants.values()) - min(grants.values()) <= 1

    def test_advance_matches_repeated_scans(self):
        # advance(n) must leave the arbiter exactly where n quiet
        # order() calls would have (the skip-ahead fast path relies on
        # this for bit-identical results).
        threads = [FakeThread(0), FakeThread(3), FakeThread(7)]
        stepped, jumped = RoundRobinArbiter(), RoundRobinArbiter()
        stepped.order(threads, 0)
        jumped.order(threads, 0)
        for cycle in range(11):
            stepped.order(threads, cycle)
        jumped.advance(11, threads)
        assert [t.tid for t in stepped.order(threads, 99)] == \
               [t.tid for t in jumped.order(threads, 99)]

    def test_advance_after_population_churn(self):
        # Regression for the fast-forward resume point: the population
        # may have churned *between* the last scan and the jump (the
        # previously-served thread retired, new tids spawned).  The
        # first scan position self-heals — advance() searches for the
        # next tid >= _next in the *current* list, exactly like
        # order() — so the jump must land where repeated order() calls
        # over the new population would.
        for skipped in (1, 2, 3, 5, 8):
            stepped, jumped = RoundRobinArbiter(), RoundRobinArbiter()
            old = [FakeThread(0), FakeThread(1), FakeThread(2)]
            stepped.order(old, 0)                    # serves tid 0
            jumped.order(old, 0)
            # Threads 1 and 2 retire; 4 and 9 spawn.  The stale resume
            # point (_next == 1) names a tid that no longer exists.
            new = [FakeThread(0), FakeThread(4), FakeThread(9)]
            for cycle in range(skipped):
                stepped.order(new, cycle + 1)
            jumped.advance(skipped, new)
            assert stepped._next == jumped._next, \
                "resume point diverged after %d skipped cycles" % skipped
            assert [t.tid for t in stepped.order(new, 99)] == \
                   [t.tid for t in jumped.order(new, 99)]

    def test_advance_resume_point_past_highest_tid(self):
        # A resume point beyond every live tid wraps to the lowest tid,
        # in advance() just as in order().
        stepped, jumped = RoundRobinArbiter(), RoundRobinArbiter()
        threads = [FakeThread(3), FakeThread(6)]
        stepped._next = jumped._next = 7             # past tid 6: wraps
        stepped.order(threads, 0)
        jumped.advance(1, threads)
        assert stepped._next == jumped._next

    def test_advance_noop_cases(self):
        arbiter = RoundRobinArbiter()
        arbiter.order([FakeThread(0), FakeThread(1)], 0)
        before = arbiter._next
        arbiter.advance(0, [FakeThread(0)])
        arbiter.advance(5, [])
        assert arbiter._next == before
        PriorityArbiter().advance(5, [FakeThread(0)])   # stateless no-op


class TestFactory:
    def test_known_policies(self):
        assert make_arbiter("priority").name == "priority"
        assert make_arbiter("round-robin").name == "round-robin"

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_arbiter("fifo")
