"""Thread arbitration policies."""

import pytest

from repro.errors import ConfigError
from repro.sim.arbitration import (PriorityArbiter, RoundRobinArbiter,
                                   make_arbiter)


class FakeThread:
    def __init__(self, tid, priority=None):
        self.tid = tid
        self.priority = tid if priority is None else priority


class TestPriority:
    def test_orders_by_priority_then_tid(self):
        threads = [FakeThread(2), FakeThread(0), FakeThread(1, priority=0)]
        ordered = PriorityArbiter().order(threads, cycle=5)
        assert [t.tid for t in ordered] == [0, 1, 2]

    def test_stable_across_cycles(self):
        threads = [FakeThread(1), FakeThread(0)]
        arbiter = PriorityArbiter()
        assert [t.tid for t in arbiter.order(threads, 0)] == \
               [t.tid for t in arbiter.order(threads, 99)]


class TestRoundRobin:
    def test_rotation(self):
        threads = [FakeThread(0), FakeThread(1), FakeThread(2)]
        arbiter = RoundRobinArbiter()
        assert [t.tid for t in arbiter.order(threads, 0)] == [0, 1, 2]
        assert [t.tid for t in arbiter.order(threads, 1)] == [1, 2, 0]
        assert [t.tid for t in arbiter.order(threads, 3)] == [0, 1, 2]

    def test_empty(self):
        assert RoundRobinArbiter().order([], 3) == []


class TestFactory:
    def test_known_policies(self):
        assert make_arbiter("priority").name == "priority"
        assert make_arbiter("round-robin").name == "round-robin"

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_arbiter("fifo")
