"""Optimizer passes: value numbering, global constants, DCE."""

from repro.compiler.astnodes import FLOAT, GlobalDecl, INT, Num
from repro.compiler.frontend import parse_stmt
from repro.compiler.lowering import lower_thread
from repro.compiler.optimize import optimize_thread
from repro.compiler.optimize.dce import eliminate_dead_code
from repro.compiler.optimize.globalprop import propagate_global_constants
from repro.compiler.optimize.lvn import local_value_numbering
from repro.compiler.sexpr import read_one
from repro.compiler.ir import Const

SYMBOLS = {
    "F": GlobalDecl("F", Num(16), FLOAT, True),
    "I": GlobalDecl("I", Num(16), INT, True),
}


def lowered(text, params=()):
    body = parse_stmt(read_one(text))
    return lower_thread("t", body, SYMBOLS, {}, params)


def ops_of(thread_ir):
    return [i.op for b in thread_ir.blocks for i in b.all_instrs()]


def count_op(thread_ir, name):
    return ops_of(thread_ir).count(name)


class TestConstantFolding:
    def test_constant_expression_folds_away(self):
        thread_ir = lowered("(let ((x (+ 2 3))) (aset! I 0 (* x 4)))")
        optimize_thread(thread_ir)
        stores = [i for b in thread_ir.blocks for i in b.all_instrs()
                  if i.op == "st"]
        assert stores[0].srcs[0] == Const(20)
        assert count_op(thread_ir, "iadd") == 0
        assert count_op(thread_ir, "imul") == 0

    def test_division_by_zero_not_folded(self):
        thread_ir = lowered("(let ((x (aref I 0))) "
                            "(aset! I 1 (/ (* x 0) (+ 0 0))))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "idiv") == 1


class TestAlgebraicIdentities:
    def test_add_zero_eliminated(self):
        thread_ir = lowered("(let ((x (aref I 0))) (aset! I 1 (+ x 0)))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "iadd") == 0

    def test_multiply_one_eliminated(self):
        thread_ir = lowered("(let ((x (aref I 0))) (aset! I 1 (* x 1)))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "imul") == 0

    def test_multiply_zero_becomes_constant(self):
        thread_ir = lowered("(let ((x (aref I 0))) (aset! I 1 (* x 0)))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "imul") == 0

    def test_float_identities_left_alone(self):
        thread_ir = lowered("(let ((x (aref F 0))) "
                            "(aset! F 1 (+ x 0.0)))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "fadd") == 1


class TestCSE:
    def test_common_subexpression_shared(self):
        thread_ir = lowered("""
(let ((i (aref I 0)))
  (aset! F (+ (* i 8) 1) 1.0)
  (aset! F (+ (* i 8) 2) 2.0))
""")
        before = count_op(thread_ir, "imul")
        optimize_thread(thread_ir)
        assert before == 2
        assert count_op(thread_ir, "imul") == 1

    def test_redefined_operand_blocks_cse(self):
        thread_ir = lowered("""
(let ((i 1))
  (aset! I 0 (* i 8))
  (set! i 2)
  (aset! I 1 (* i 8)))
""")
        optimize_thread(thread_ir)
        stores = [i for b in thread_ir.blocks for i in b.all_instrs()
                  if i.op == "st"]
        assert stores[0].srcs[0] == Const(8)
        assert stores[1].srcs[0] == Const(16)


class TestRedundantLoadElimination:
    def test_repeated_load_becomes_register_copy(self):
        thread_ir = lowered("""
(let ((a (aref F 3)) (b (aref F 3)))
  (aset! F 0 (+ a b)))
""")
        assert count_op(thread_ir, "ld") == 2
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "ld") == 1

    def test_intervening_store_blocks_elimination(self):
        thread_ir = lowered("""
(let ((a (aref F 3)))
  (aset! F 3 9.0)
  (let ((b (aref F 3)))
    (aset! F 0 (+ a b))))
""")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "ld") == 2

    def test_store_to_other_array_does_not_block(self):
        thread_ir = lowered("""
(let ((a (aref F 3)))
  (aset! I 3 9)
  (let ((b (aref F 3)))
    (aset! F 0 (+ a b))))
""")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "ld") == 1

    def test_sync_load_never_eliminated(self):
        thread_ir = lowered("""
(begin
  (sync (aref-ff I 3))
  (sync (aref-ff I 3)))
""")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "ld_ff") == 2


class TestGlobalConstants:
    def test_single_def_constant_propagates_across_blocks(self):
        thread_ir = lowered("""
(let ((limit 10) (i 0))
  (while (< i limit)
    (set! i (+ i 1)))
  (aset! I 0 i))
""")
        optimize_thread(thread_ir)
        # 'limit' should be folded into the loop-header compare.
        compares = [i for b in thread_ir.blocks for i in b.all_instrs()
                    if i.op == "ilt"]
        assert compares and compares[0].srcs[1] == Const(10)

    def test_multiply_defined_home_not_propagated(self):
        thread_ir = lowered("""
(let ((x 1))
  (if (aref I 0) (set! x 2))
  (aset! I 1 x))
""")
        propagate_global_constants(thread_ir)
        stores = [i for b in thread_ir.blocks for i in b.all_instrs()
                  if i.op == "st" and i.sym == "I"]
        assert not isinstance(stores[-1].srcs[0], Const)

    def test_params_never_propagated(self):
        thread_ir = lowered("(aset! I 0 p)", params=(("p", INT),))
        changed = propagate_global_constants(thread_ir)
        assert changed == 0


class TestDCE:
    def test_unused_pure_computation_removed(self):
        thread_ir = lowered("""
(let ((dead (* 3 4)) (live (aref I 0)))
  (aset! I 1 live))
""")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "imul") == 0

    def test_stores_never_removed(self):
        thread_ir = lowered("(aset! I 0 7)")
        eliminate_dead_code(thread_ir)
        assert count_op(thread_ir, "st") == 1

    def test_loads_never_removed(self):
        # A load's result may be unused but the access stays (it is not
        # pure: sync variants change presence bits).
        thread_ir = lowered("(sync (aref-fe I 0))")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "ld_fe") == 1

    def test_live_out_values_kept(self):
        thread_ir = lowered("""
(let ((x (aref I 0)))
  (while (< x 10)
    (set! x (+ x 1)))
  (aset! I 1 x))
""")
        optimize_thread(thread_ir)
        assert count_op(thread_ir, "iadd") >= 1
