"""Node engine behaviour on hand-written assembly programs."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.isa import asmtext
from repro.machine import baseline, single_cluster
from repro.machine.memory import MemorySpec
from repro.sim import Node, run_program


def run_asm(text, config=None, **kwargs):
    program = asmtext.parse(text)
    return run_program(program, config or baseline(), **kwargs)


class TestStraightLine:
    def test_alu_chain(self):
        result = run_asm("""
.symbol out 1 full
.thread main
{ c0.iu0: iadd c0.r0, #2, #3 }
{ c0.iu0: imul c0.r1, c0.r0, #4 }
{ c0.mem0: st c0.r1, #0, #0 }
{ c4.bru0: halt }
""")
        assert result.read_symbol("out") == [20]

    def test_cycle_counting_dependent_chain(self):
        """Three dependent single-latency ops + halt: one issue per
        cycle, plus pipeline drain."""
        result = run_asm("""
.thread main
{ c0.iu0: iadd c0.r0, #1, #1 }
{ c0.iu0: iadd c0.r0, c0.r0, #1 }
{ c0.iu0: iadd c0.r0, c0.r0, #1 }
{ c4.bru0: halt }
""")
        assert result.cycles <= 6

    def test_parallel_ops_issue_same_cycle(self):
        wide = run_asm("""
.thread main
{
  c0.iu0: iadd c0.r0, #1, #1
  c1.iu0: iadd c1.r0, #2, #2
  c2.iu0: iadd c2.r0, #3, #3
  c3.iu0: iadd c3.r0, #4, #4
}
{ c4.bru0: halt }
""")
        narrow = run_asm("""
.thread main
{ c0.iu0: iadd c0.r0, #1, #1 }
{ c0.iu0: iadd c0.r1, #2, #2 }
{ c0.iu0: iadd c0.r2, #3, #3 }
{ c0.iu0: iadd c0.r3, #4, #4 }
{ c4.bru0: halt }
""")
        assert wide.cycles < narrow.cycles

    def test_dual_destination_write(self):
        result = run_asm("""
.symbol out 2 full
.thread main
{ c0.iu0: iadd c0.r0 & c1.r0, #5, #6 }
{
  c0.mem0: st c0.r0, #0, #0
  c1.mem0: st c1.r0, #1, #0
}
{ c4.bru0: halt }
""")
        assert result.read_symbol("out") == [11, 11]


class TestControlFlow:
    def test_taken_branch_skips_code(self):
        result = run_asm("""
.symbol out 1 full
.thread main
{ c4.bru0: br skip }
{ c0.mem0: st #1, #0, #0 }
skip:
{ c0.mem0: st #2, #0, #0 }
{ c4.bru0: halt }
""")
        assert result.read_symbol("out") == [2]

    def test_conditional_loop(self):
        result = run_asm("""
.symbol out 1 full
.thread main
{ c0.iu0: imov c0.r0, #0 }
loop:
{ c0.iu0: iadd c0.r0, c0.r0, #1 }
{ c0.iu0: ilt c0.r1 & c4.r0, c0.r0, #10 }
{ c4.bru0: brt c4.r0, loop }
{ c0.mem0: st c0.r0, #0, #0 }
{ c4.bru0: halt }
""")
        assert result.read_symbol("out") == [10]

    def test_falling_off_the_end_raises(self):
        with pytest.raises(SimulationError, match="fell off"):
            run_asm("""
.thread main
{ c0.iu0: iadd c0.r0, #1, #1 }
""")


class TestPresenceBits:
    def test_consumer_stalls_on_slow_producer(self):
        """A load with a long miss penalty delays its consumer but not
        independent work."""
        config = baseline().with_memory(MemorySpec(
            "always-miss", miss_rate=1.0, miss_penalty_min=30,
            miss_penalty_max=30))
        result = run_asm("""
.symbol data 1 full
.symbol out 2 full
.thread main
{ c0.mem0: ld c0.r0, #0, #0 }
{ c1.iu0: iadd c1.r0, #1, #1 }
{ c0.iu0: iadd c0.r1, c0.r0, #1 }
{
  c0.mem0: st c0.r1, #1, #1
  c1.mem0: st c1.r0, #0, #1
}
{ c4.bru0: halt }
""", config=config, overrides={"data": [7]})
        assert result.read_symbol("out") == [2, 8]
        assert result.cycles > 30


class TestMultithreading:
    def test_fork_runs_child_with_arguments(self):
        result = run_asm("""
.symbol out 1 full
.thread main
{ c0.iu0: iadd c0.r0, #20, #22 }
{ c4.bru0: fork child [c0.r0=c0.r0] }
{ c4.bru0: halt }
.thread child params=c0.r0
{ c0.mem0: st c0.r0, #0, #0 }
{ c4.bru0: halt }
""")
        assert result.read_symbol("out") == [42]
        assert result.stats.threads_spawned == 2

    def test_priority_arbitration_favors_older_thread(self):
        """Two threads competing for one IU: the lower tid wins more
        grants under priority arbitration."""
        text = """
.symbol out 2 full
.thread main
{ c4.bru0: fork child [c0.r9=#1] }
{ c0.iu0: imov c0.r0, #0 }
loop:
{ c0.iu0: iadd c0.r0, c0.r0, #1 }
{ c0.iu0: ilt c0.r1 & c4.r0, c0.r0, #30 }
{ c4.bru0: brt c4.r0, loop }
{ c0.mem0: st c0.r0, #0, #0 }
{ c4.bru0: halt }
.thread child params=c0.r9
{ c0.iu0: imov c0.r0, #0 }
cloop:
{ c0.iu0: iadd c0.r0, c0.r0, #1 }
{ c0.iu0: ilt c0.r1 & c5.r0, c0.r0, #30 }
{ c5.bru0: brt c5.r0, cloop }
{ c0.mem0: st c0.r0, #1, #0 }
{ c5.bru0: halt }
"""
        result = run_asm(text)
        assert result.read_symbol("out") == [30, 30]
        main_thread, child = result.threads[0], result.threads[1]
        assert main_thread.finish_cycle < child.finish_cycle
        assert result.stats.arbitration_losses > 0

    def test_round_robin_shares_evenly(self):
        config = baseline().with_arbitration("round-robin")
        result = run_asm("""
.thread main
{ c4.bru0: fork child [c0.r9=#1] }
{ c4.bru0: halt }
.thread child params=c0.r9
{ c0.iu0: iadd c0.r0, c0.r9, #1 }
{ c4.bru0: halt }
""", config=config)
        assert result.stats.threads_finished == 2


class TestDeadlockDetection:
    def test_parked_load_with_no_writer(self):
        with pytest.raises(DeadlockError, match="addr 0"):
            run_asm("""
.symbol flag 1 empty
.thread main
{ c0.mem0: ld_ff c0.r0, #0, #0 }
{ c0.iu0: sink c0.r0 }
{ c4.bru0: halt }
""")

    def test_max_cycles_guard(self):
        with pytest.raises(SimulationError, match="exceeded"):
            run_asm("""
.thread main
loop:
{ c4.bru0: br loop }
{ c4.bru0: halt }
""", max_cycles=200)


class TestValidation:
    def test_remote_source_rejected(self):
        with pytest.raises(SimulationError, match="remote register"):
            run_asm("""
.thread main
{ c0.iu0: iadd c0.r0, c1.r0, #1 }
{ c4.bru0: halt }
""")

    def test_unknown_unit_rejected(self):
        with pytest.raises(SimulationError, match="absent"):
            run_asm("""
.thread main
{ c9.iu0: iadd c9.r0, #1, #1 }
{ c4.bru0: halt }
""")

    def test_unknown_override_rejected(self):
        with pytest.raises(SimulationError, match="unknown symbol"):
            run_asm("""
.thread main
{ c4.bru0: halt }
""", overrides={"ghost": [1]})


class TestWAWInterlock:
    def test_stale_writeback_cannot_clobber(self):
        """Under a single write port, an older delayed writeback must
        not land after a newer write to the same register."""
        config = baseline().with_interconnect("single-port")
        result = run_asm("""
.symbol out 1 full
.thread main
{
  c0.iu0: iadd c1.r0, #1, #1
  c0.fpu0: itof c1.r1, #9
}
{ c1.iu0: iadd c1.r0, #5, #5 }
{ c1.mem0: st c1.r0, #0, #0 }
{ c4.bru0: halt }
""", config=config)
        assert result.read_symbol("out") == [10]
