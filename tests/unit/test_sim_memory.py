"""The split-transaction, presence-bit memory system."""

import random

import pytest

from repro.errors import SimulationError
from repro.isa.instruction import Operation
from repro.isa.operands import Imm, Reg
from repro.machine.memory import MemorySpec, min_memory
from repro.sim.memory import MemRequest, MemorySystem
from repro.sim.stats import Stats


class FakeThread:
    tid = 0


def load_op(name="ld"):
    return Operation(name, dests=(Reg(0, 0),), srcs=(Imm(0), Imm(0)))


def store_op(name="st"):
    return Operation(name, srcs=(Imm(0), Imm(0), Imm(0)))


def make_memory(spec=None, seed=0):
    return MemorySystem(spec or min_memory(), random.Random(seed),
                        Stats(), size=256)


def submit(memory, op, addr, value=None, cycle=0):
    request = MemRequest(FakeThread(), op, None, addr, store_value=value)
    memory.submit(request, cycle)
    return request


def run_until(memory, cycle_limit=500, start=0):
    completed = []
    for cycle in range(start, cycle_limit):
        completed.extend(memory.tick(cycle))
        if memory.idle():
            break
    return completed


class TestBasicAccess:
    def test_load_returns_poked_value(self):
        memory = make_memory()
        memory.poke(5, 99)
        request = submit(memory, load_op(), 5)
        run_until(memory)
        assert request.value == 99

    def test_store_then_load(self):
        memory = make_memory()
        submit(memory, store_op(), 7, value=13)
        run_until(memory)
        assert memory.peek(7) == 13
        assert memory.is_full(7)

    def test_default_value_is_zero(self):
        memory = make_memory()
        request = submit(memory, load_op(), 17)
        run_until(memory)
        assert request.value == 0

    def test_address_range_checked(self):
        memory = make_memory()
        with pytest.raises(SimulationError):
            memory.poke(4096, 1)
        with pytest.raises(SimulationError):
            submit(memory, load_op(), -1)


class TestTable1Synchronization:
    def test_ld_ff_parks_until_full(self):
        memory = make_memory()
        memory.poke(3, 0, full=False)
        request = submit(memory, load_op("ld_ff"), 3)
        memory.tick(0)
        assert not memory.idle()
        assert request.value is None
        submit(memory, store_op(), 3, value=8, cycle=1)
        run_until(memory, start=1)
        assert request.value == 8

    def test_ld_fe_empties_location(self):
        memory = make_memory()
        memory.poke(4, 11)
        submit(memory, load_op("ld_fe"), 4)
        run_until(memory)
        assert not memory.is_full(4)

    def test_st_ef_waits_for_empty(self):
        memory = make_memory()
        memory.poke(2, 5)                       # full
        submit(memory, store_op("st_ef"), 2, value=6)
        memory.tick(0)
        assert memory.peek(2) == 5              # parked, not applied
        submit(memory, load_op("ld_fe"), 2, cycle=1)
        run_until(memory, start=1)
        assert memory.peek(2) == 6
        assert memory.is_full(2)

    def test_st_ff_updates_in_place(self):
        memory = make_memory()
        memory.poke(9, 1)
        submit(memory, store_op("st_ff"), 9, value=2)
        run_until(memory)
        assert memory.peek(9) == 2 and memory.is_full(9)

    def test_two_ld_fe_waiters_serialize(self):
        """Two consuming loads on one full cell: exactly one wins; the
        other parks until a store refills the cell."""
        memory = make_memory()
        memory.poke(1, 7)
        first = submit(memory, load_op("ld_fe"), 1, cycle=0)
        second = submit(memory, load_op("ld_fe"), 1, cycle=0)
        for cycle in range(0, 5):
            memory.tick(cycle)
        winners = [r for r in (first, second) if r.value is not None]
        assert len(winners) == 1
        submit(memory, store_op(), 1, value=20, cycle=6)
        run_until(memory, start=6)
        assert {first.value, second.value} == {7, 20}

    def test_parked_summary_mentions_address(self):
        memory = make_memory()
        memory.poke(3, 0, full=False)
        submit(memory, load_op("ld_ff"), 3)
        memory.tick(0)
        assert any("addr 3" in line for line in memory.parked_summary())


class TestPerAddressOrdering:
    def test_same_address_requests_serialize_in_order(self):
        spec = MemorySpec("slow", hit_latency=5)
        memory = make_memory(spec)
        store = submit(memory, store_op(), 8, value=77, cycle=0)
        load = submit(memory, load_op(), 8, cycle=0)
        run_until(memory, 100)
        assert load.value == 77      # load queued behind the store

    def test_different_addresses_concurrent(self):
        spec = MemorySpec("slow", hit_latency=5)
        memory = make_memory(spec)
        a = submit(memory, load_op(), 1, cycle=0)
        b = submit(memory, load_op(), 2, cycle=0)
        memory.tick(0)
        for cycle in range(1, 5):
            memory.tick(cycle)
        assert a.value is not None and b.value is not None


class TestStatisticalLatency:
    def test_miss_penalty_delays_completion(self):
        spec = MemorySpec("always-miss", miss_rate=1.0,
                          miss_penalty_min=10, miss_penalty_max=10)
        memory = make_memory(spec)
        request = submit(memory, load_op(), 0, cycle=0)
        for cycle in range(0, 10):
            memory.tick(cycle)
            assert request.value is None
        memory.tick(10)
        assert request.value is not None

    def test_stats_count_misses(self):
        spec = MemorySpec("always-miss", miss_rate=1.0,
                          miss_penalty_min=5, miss_penalty_max=5)
        stats = Stats()
        memory = MemorySystem(spec, random.Random(0), stats, size=64)
        submit(memory, load_op(), 0)
        run_until(memory)
        assert stats.memory_accesses == 1
        assert stats.memory_misses == 1
