"""Machine descriptions: units, clusters, configurations."""

import pytest

from repro.errors import ConfigError
from repro.isa.operations import UnitClass
from repro.machine import (ClusterSpec, MachineConfig, arithmetic_cluster,
                           baseline, branch_cluster, bru, fpu, iu, mem,
                           single_cluster, unit_mix)


class TestUnits:
    def test_latency_must_be_positive(self):
        with pytest.raises(ConfigError):
            iu(latency=0)

    def test_kinds(self):
        assert iu().kind is UnitClass.IU
        assert fpu().kind is UnitClass.FPU
        assert mem().kind is UnitClass.MEM
        assert bru().kind is UnitClass.BRU


class TestClusters:
    def test_arithmetic_cluster_contents(self):
        cluster = arithmetic_cluster()
        assert cluster.count(UnitClass.IU) == 1
        assert cluster.count(UnitClass.FPU) == 1
        assert cluster.count(UnitClass.MEM) == 1
        assert cluster.has_alu
        assert not cluster.is_branch_cluster

    def test_branch_cluster_is_branch_only(self):
        cluster = branch_cluster()
        assert cluster.is_branch_cluster
        assert not cluster.has_alu

    def test_unit_ids_number_within_kind(self):
        cluster = ClusterSpec(units=(iu(), iu(), mem()))
        assert cluster.unit_ids(3) == ["c3.iu0", "c3.iu1", "c3.mem0"]

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigError):
            ClusterSpec(units=())


class TestBaseline:
    def test_paper_shape(self):
        config = baseline()
        assert config.n_clusters == 6       # 4 arithmetic + 2 branch
        assert config.count(UnitClass.IU) == 4
        assert config.count(UnitClass.FPU) == 4
        assert config.count(UnitClass.MEM) == 4
        assert config.count(UnitClass.BRU) == 2
        assert config.arithmetic_clusters() == [0, 1, 2, 3]
        assert config.branch_clusters() == [4, 5]

    def test_unit_lookup(self):
        config = baseline()
        slot = config.unit_by_id["c2.fpu0"]
        assert slot.cluster == 2 and slot.kind is UnitClass.FPU

    def test_latency_of(self):
        assert baseline().latency_of(UnitClass.FPU) == 1

    def test_describe_mentions_clusters(self):
        text = baseline().describe()
        assert "cluster 0" in text and "cluster 5" in text


class TestDerivation:
    def test_with_interconnect_preserves_clusters(self):
        config = baseline().with_interconnect("tri-port")
        assert config.n_clusters == 6
        assert config.interconnect.scheme.value == "tri-port"

    def test_with_memory(self):
        from repro.machine import mem2
        config = baseline().with_memory(mem2())
        assert config.memory.miss_rate == 0.10

    def test_with_seed(self):
        assert baseline().with_seed(7).seed == 7

    def test_schedule_signature_ignores_interconnect(self):
        a = baseline()
        assert a.schedule_signature() == \
            a.with_interconnect("shared-bus").schedule_signature()

    def test_schedule_signature_sees_structure(self):
        assert baseline().schedule_signature() != \
            single_cluster().schedule_signature()


class TestUnitMix:
    def test_counts(self):
        config = unit_mix(2, 3)
        assert config.count(UnitClass.IU) == 2
        assert config.count(UnitClass.FPU) == 3
        assert config.count(UnitClass.MEM) == 4
        assert config.count(UnitClass.BRU) == 1

    def test_memory_only_clusters_allowed(self):
        config = unit_mix(1, 1)
        assert not config.clusters[3].has_alu
        assert config.alu_clusters() == [0]

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            unit_mix(0, 1)
        with pytest.raises(ConfigError):
            unit_mix(5, 1)


class TestValidation:
    def test_needs_branch_unit(self):
        with pytest.raises(ConfigError):
            MachineConfig((arithmetic_cluster(),))

    def test_needs_alu(self):
        with pytest.raises(ConfigError):
            MachineConfig((branch_cluster(),))

    def test_unknown_arbitration_rejected(self):
        with pytest.raises(ConfigError):
            baseline(arbitration="lottery")
