"""Operations, instruction words, thread programs, data segments."""

import pytest

from repro.errors import AsmError
from repro.isa import (InstructionWord, Label, Operation, Program, Reg,
                       ThreadProgram, unit_id)
from repro.isa.instruction import DataSegment, parse_unit_id
from repro.isa.operands import Imm
from repro.isa.operations import UnitClass


def iadd(dest, a, b):
    return Operation("iadd", dests=(dest,), srcs=(a, b))


class TestOperation:
    def test_two_destinations_allowed(self):
        op = Operation("iadd", dests=(Reg(0, 1), Reg(2, 5)),
                       srcs=(Reg(0, 0), Imm(1)))
        assert len(op.dests) == 2

    def test_three_destinations_rejected(self):
        with pytest.raises(AsmError):
            Operation("iadd", dests=(Reg(0, 1), Reg(1, 1), Reg(2, 1)),
                      srcs=(Reg(0, 0), Imm(1)))

    def test_missing_destination_rejected(self):
        with pytest.raises(AsmError):
            Operation("iadd", srcs=(Reg(0, 0), Imm(1)))

    def test_store_takes_no_destination(self):
        with pytest.raises(AsmError):
            Operation("st", dests=(Reg(0, 0),),
                      srcs=(Reg(0, 1), Reg(0, 2), Imm(0)))

    def test_wrong_arity_rejected(self):
        with pytest.raises(AsmError):
            Operation("iadd", dests=(Reg(0, 0),), srcs=(Imm(1),))

    def test_branch_needs_label(self):
        with pytest.raises(AsmError):
            Operation("brt", srcs=(Reg(0, 0),))

    def test_source_regs_include_fork_bindings(self):
        op = Operation("fork", target=Label("child"),
                       bindings=((Reg(0, 0), Reg(1, 3)),
                                 (Reg(0, 1), Imm(2))))
        assert op.source_regs() == [Reg(1, 3)]

    def test_immediate_destination_rejected(self):
        with pytest.raises(AsmError):
            Operation("iadd", dests=(Imm(1),), srcs=(Imm(1), Imm(2)))


class TestUnitIds:
    def test_roundtrip(self):
        uid = unit_id(2, UnitClass.FPU, 1)
        assert uid == "c2.fpu1"
        assert parse_unit_id(uid) == (2, UnitClass.FPU, 1)

    def test_malformed(self):
        for text in ("c0.xyz0", "fpu0", "c0.fpu"):
            with pytest.raises(AsmError):
                parse_unit_id(text)


class TestInstructionWord:
    def test_unit_kind_must_match_opcode(self):
        with pytest.raises(AsmError):
            InstructionWord({"c0.fpu0": iadd(Reg(0, 0), Imm(1), Imm(2))})

    def test_one_control_op_per_word(self):
        halt = Operation("halt")
        br = Operation("br", target=Label("L"))
        with pytest.raises(AsmError):
            InstructionWord({"c4.bru0": halt, "c5.bru0": br})

    def test_control_op_lookup(self):
        word = InstructionWord({
            "c0.iu0": iadd(Reg(0, 0), Imm(1), Imm(2)),
            "c4.bru0": Operation("halt"),
        })
        assert word.control_op().name == "halt"
        assert len(word) == 2


class TestThreadProgram:
    def test_labels_resolve(self):
        thread = ThreadProgram("t")
        thread.add_label("L0")
        thread.append(InstructionWord({"c4.bru0": Operation("halt")}))
        assert thread.resolve(Label("L0")) == 0

    def test_duplicate_label_rejected(self):
        thread = ThreadProgram("t")
        thread.add_label("L0")
        with pytest.raises(AsmError):
            thread.add_label("L0")

    def test_undefined_label_rejected(self):
        thread = ThreadProgram("t")
        thread.append(InstructionWord(
            {"c4.bru0": Operation("br", target=Label("missing"))}))
        with pytest.raises(AsmError):
            thread.validate()


class TestDataSegment:
    def test_sequential_allocation(self):
        data = DataSegment()
        a = data.declare("a", 10)
        b = data.declare("b", 5, initially_full=False)
        assert a.base == 0 and b.base == 10
        assert data.total_size() == 15
        assert not b.initially_full

    def test_duplicate_symbol_rejected(self):
        data = DataSegment()
        data.declare("a", 1)
        with pytest.raises(AsmError):
            data.declare("a", 2)

    def test_init_values_length_checked(self):
        data = DataSegment()
        with pytest.raises(AsmError):
            data.declare("a", 3, init_values=[1, 2])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(AsmError):
            DataSegment().declare("a", 0)


class TestProgram:
    def test_missing_main_rejected(self):
        program = Program(main="main")
        with pytest.raises(AsmError):
            program.validate()

    def test_fork_target_must_exist(self):
        program = Program()
        thread = ThreadProgram("main")
        thread.append(InstructionWord(
            {"c4.bru0": Operation("fork", target=Label("ghost"))}))
        program.add_thread(thread)
        with pytest.raises(AsmError):
            program.validate()

    def test_static_operation_count(self):
        program = Program()
        thread = ThreadProgram("main")
        thread.append(InstructionWord({
            "c0.iu0": iadd(Reg(0, 0), Imm(1), Imm(2)),
            "c4.bru0": Operation("halt")}))
        program.add_thread(thread)
        assert program.static_operation_count() == 2
