"""Code generation: register allocation/recycling, operation building."""

from repro import compile_program
from repro.isa.operations import UnitClass
from repro.machine import baseline

LOOPY = """
(program
  (global A 16)
  (global out 1)
  (main
    (let ((acc 0.0))
      (for (i 0 16)
        ;; several temporaries per iteration
        (set! acc (+ acc (* (aref A i) (+ (aref A i) 1.0)))))
      (aset! out 0 acc))))
"""


def compiled_main(source=LOOPY, mode="sts"):
    compiled = compile_program(source, baseline(), mode=mode)
    return compiled, compiled.program.thread("main")


class TestRegisterRecycling:
    def test_temporaries_reuse_slots(self):
        """A loop body allocating temporaries every iteration must not
        grow register usage with loop length."""
        compiled, __ = compiled_main()
        peak = max(compiled.peak_registers().values())
        assert peak < 20

    def test_home_registers_stable_across_blocks(self):
        """The accumulator is read and written in several blocks; all
        occurrences must use one physical register."""
        compiled, thread = compiled_main()
        # acc is the only float home crossing blocks: find the register
        # written by fadd (the accumulation) in the loop and check the
        # final store reads the same one.
        fadd_dests = set()
        store_srcs = set()
        for word in thread.instructions:
            for __, op in word:
                if op.name == "fadd":
                    fadd_dests.update(op.dests)
                if op.name == "st":
                    store_srcs.add(op.srcs[0])
        assert store_srcs & fadd_dests

    def test_no_register_collision_at_runtime(self):
        """Recycled slots must never corrupt values (covered broadly by
        the differential suite; this is the focused canary)."""
        from repro import run_program
        compiled, __ = compiled_main()
        inputs = {"A": [0.25 * i for i in range(16)]}
        result = run_program(compiled.program, baseline(),
                             overrides=inputs)
        expected = 0.0
        for i in range(16):
            expected += inputs["A"][i] * (inputs["A"][i] + 1.0)
        assert result.read_symbol("out") == [expected]


class TestEmittedCode:
    def test_memory_operations_carry_base_immediates(self):
        __, thread = compiled_main()
        loads = [op for word in thread.instructions
                 for __, op in word if op.name == "ld"]
        assert loads
        for op in loads:
            base = op.srcs[1]
            assert hasattr(base, "value")       # an immediate

    def test_every_word_nonempty_and_wellformed(self):
        __, thread = compiled_main()
        assert all(len(word) >= 1 for word in thread.instructions)

    def test_branch_ops_only_on_branch_units(self):
        from repro.isa.instruction import parse_unit_id
        __, thread = compiled_main()
        for word in thread.instructions:
            for uid, op in word:
                __, kind, __ = parse_unit_id(uid)
                assert (op.spec.unit is kind)

    def test_report_counts_match_program(self):
        compiled, thread = compiled_main()
        report = compiled.main_report
        assert report.words == len(thread.instructions)
        assert report.operations == sum(len(w)
                                        for w in thread.instructions)
        assert sum(report.block_words.values()) == report.words
