"""Statistical memory model parameters and latency draws."""

import random

import pytest

from repro.errors import ConfigError
from repro.machine.memory import MemorySpec, mem1, mem2, min_memory


class TestSpecs:
    def test_min_never_misses(self):
        spec = min_memory()
        rng = random.Random(0)
        assert all(spec.draw_latency(rng) == 1 for __ in range(100))

    def test_mem1_parameters(self):
        spec = mem1()
        assert spec.miss_rate == 0.05
        assert (spec.miss_penalty_min, spec.miss_penalty_max) == (20, 100)

    def test_mem2_doubles_miss_rate(self):
        assert mem2().miss_rate == 2 * mem1().miss_rate

    def test_draws_within_range(self):
        spec = mem1()
        rng = random.Random(1)
        draws = [spec.draw_latency(rng) for __ in range(3000)]
        misses = [d for d in draws if d > 1]
        assert misses, "a 5% miss rate must produce misses in 3000 draws"
        assert all(21 <= d <= 101 for d in misses)

    def test_miss_rate_statistics(self):
        spec = mem2()
        rng = random.Random(2)
        draws = [spec.draw_latency(rng) for __ in range(20000)]
        rate = sum(1 for d in draws if d > 1) / len(draws)
        assert 0.08 < rate < 0.12

    def test_deterministic_given_seed(self):
        spec = mem1()
        a = [spec.draw_latency(random.Random(42)) for __ in range(1)]
        b = [spec.draw_latency(random.Random(42)) for __ in range(1)]
        assert a == b


class TestValidation:
    def test_zero_hit_latency_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(hit_latency=0)

    def test_bad_miss_rate_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(miss_rate=1.5)

    def test_inverted_penalty_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(miss_rate=0.1, miss_penalty_min=10,
                       miss_penalty_max=5)

    def test_miss_without_penalty_rejected(self):
        with pytest.raises(ConfigError):
            MemorySpec(miss_rate=0.1)
