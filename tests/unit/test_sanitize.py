"""Unit tests for the online state sanitizer (repro.sim.sanitize).

The mutation tests here are the sanitizer's reason to exist: each one
seeds a deliberate corruption of live simulator state — a flipped
presence bit, a dropped heap event, a stale fill-board entry, a lost
wakeup — and asserts the invariant-audit tier names it at the first
audited cycle.
"""

import json
import os
import types

import pytest

from repro import compile_program
from repro.errors import (CellFailure, InvariantViolation, SanitizerError,
                          SimulationError)
from repro.machine import baseline
from repro.programs import get_benchmark
from repro.sim import make_node, run_program
from repro.sim.opcache import OpCacheSpec
from repro.sim.sanitize import (InvariantAuditor, SanitizerPolicy,
                                _audit_starvation, _build_report,
                                _producer_bits, audit_node, coerce_policy,
                                diff_components, replay_bundle,
                                state_delta, write_bundle)


def _paused(engine="event", bench="fft", mode="coupled", pause_at=120,
            mutate=None, seed=1):
    """A node paused mid-run at a clean cycle boundary."""
    config = baseline().with_engine(engine).with_seed(seed)
    if mutate is not None:
        config = mutate(config)
    benchmark = get_benchmark(bench)
    compiled = compile_program(benchmark.source(mode), config, mode=mode)
    node = make_node(config)
    paused = node.run(compiled.program,
                      overrides=benchmark.make_inputs(1),
                      pause_at=pause_at)
    assert paused is None, "program finished before the pause"
    return node


def _pause_with_producers(engine="event"):
    """A paused node with at least one in-flight register producer."""
    node = _paused(engine=engine, pause_at=40)
    for __ in range(200):
        producers = {key: mask for key, mask
                     in _producer_bits(node).items() if mask}
        if producers:
            return node, producers
        if node.resume(pause_at=node.cycle + 5) is not None:
            break
    pytest.fail("never observed an in-flight producer")


class TestPolicy:
    def test_coerce(self):
        assert coerce_policy(None) is None
        assert coerce_policy("off") is None
        assert coerce_policy("audit").level == "audit"
        deep = coerce_policy("deep")
        assert deep.audit_stride == 1
        policy = SanitizerPolicy(level="shadow", audit_stride=7)
        assert coerce_policy(policy) is policy
        with pytest.raises(ValueError):
            SanitizerPolicy(level="paranoid")
        with pytest.raises(TypeError):
            coerce_policy(42)

    def test_report_dir_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_DIR", "/tmp/elsewhere")
        assert SanitizerPolicy().report_dir == "/tmp/elsewhere"


class TestInvariantAudits:
    """Seeded corruptions, each caught by name at the next audit."""

    @pytest.mark.parametrize("engine", ["event", "scan"])
    def test_clean_run_audits_clean(self, engine):
        node = _paused(engine=engine)
        assert audit_node(node) == []

    @pytest.mark.parametrize("engine", ["event", "scan"])
    def test_flipped_presence_bit_orphan(self, engine):
        # A presence bit claiming an in-flight result that nobody is
        # computing: the canonical lost-writeback corruption.
        node = _paused(engine=engine)
        thread = node.active[0]
        frame = thread.frames[sorted(thread.frames)[0]]
        frame._invalid |= 1 << 30
        violations = audit_node(node)
        assert any("no in-flight producer" in v for v in violations)

    def test_flipped_presence_bit_ghost(self):
        # The opposite flip: a register marked present while its
        # producer is still in flight (a double write-back in waiting).
        node, producers = _pause_with_producers()
        (tid, cluster), mask = sorted(producers.items())[0]
        thread = {t.tid: t for t in node.active + node.finished}[tid]
        thread.frames[cluster]._invalid &= ~mask
        violations = audit_node(node)
        assert any("producer targets valid registers" in v
                   for v in violations)

    def test_dropped_completion_event(self):
        # Remove a due completion from the event kernel's pipe: its
        # destination presence bits instantly orphan.
        node, __ = _pause_with_producers()
        if not node._pipe:
            pytest.skip("producers were all memory refs at this pause")
        node._pipe.sort()
        node._pipe.pop(0)
        violations = audit_node(node)
        assert violations, "dropped pipe event went unnoticed"

    def test_overdue_heap_event(self):
        node, __ = _pause_with_producers()
        heap = node._pipe or node.memory._in_flight
        assert heap, "no timed events at pause"
        entry = heap[0]
        heap[0] = (node.cycle - 5,) + tuple(entry[1:])
        violations = audit_node(node)
        assert any("overdue event" in v for v in violations)

    def test_lost_thread_wakeup(self):
        # A parked thread with nothing left to wake it: the event
        # kernel would idle it forever.
        node = _paused(engine="event")
        thread = node.active[0]
        thread.parked = True
        del thread.pending_plans[:]
        node._wake_heap = [entry for entry in node._wake_heap
                           if entry[1] != thread.tid]
        violations = audit_node(node)
        assert any("lost wakeup" in v for v in violations)

    def test_memory_busy_set_skew(self):
        node = _paused()
        node.memory._busy.add(99_991)
        violations = audit_node(node)
        assert any("busy-set skew" in v for v in violations)

    def test_writeback_count_skew(self):
        node = _paused(engine="event")
        node._wb_count += 1
        violations = audit_node(node)
        assert any("writeback count skew" in v for v in violations)

    def test_stale_fill_board_entry(self):
        node = _paused(
            bench="lud", mode="seq", pause_at=300,
            mutate=lambda c: c.with_op_cache(OpCacheSpec(capacity=8,
                                                         fill_penalty=4)))
        unit = next(node.units[uid] for uid in node.unit_order
                    if node.units[uid].opcache is not None)
        unit.opcache._board[("main", 99_999)] = node.cycle + 3
        violations = audit_node(node)
        assert any("stale board entry" in v for v in violations)

    @pytest.mark.parametrize("engine", ["event", "scan"])
    def test_auditor_trips_through_resume(self, engine):
        # The kernels' in-loop hook, end to end: corrupt a paused run,
        # resume under a per-cycle auditor, and the violation surfaces
        # at the first audited cycle.
        node = _paused(engine=engine, pause_at=100)
        thread = node.active[0]
        frame = thread.frames[sorted(thread.frames)[0]]
        frame._invalid |= 1 << 30
        node.sanitizer = InvariantAuditor(
            SanitizerPolicy.from_level("deep"))
        with pytest.raises(InvariantViolation) as excinfo:
            node.resume()
        assert excinfo.value.cycle == 101
        assert any("no in-flight producer" in v
                   for v in excinfo.value.violations)


class TestStarvationAudit:
    """Round-robin fairness bound over a synthetic runnable set."""

    @staticmethod
    def _fake_node(issued):
        def thread(tid):
            plan = types.SimpleNamespace(single_wait=None, wait_groups=())
            return types.SimpleNamespace(
                tid=tid, name="t%d" % tid, parked=False, halted=False,
                control_inflight=False, pending_plans=[plan], pending={},
                frames={})
        return types.SimpleNamespace(
            arbiter=types.SimpleNamespace(name="round-robin"),
            active=[thread(0), thread(1)],
            stats=types.SimpleNamespace(issued_by_thread=dict(issued)))

    def _auditor(self, bound=100):
        return InvariantAuditor(
            SanitizerPolicy(level="audit", starvation_cycles=bound))

    def test_starved_ready_thread_trips(self):
        auditor = self._auditor(bound=100)
        violations = []
        _audit_starvation(self._fake_node({0: 10, 1: 0}), 1000,
                          auditor, violations)
        assert violations == []          # first sight: mark, no trip
        _audit_starvation(self._fake_node({0: 25, 1: 0}), 1101,
                          auditor, violations)
        assert len(violations) == 1
        assert "starvation" in violations[0] and "t1" in violations[0]

    def test_issuing_thread_resets_the_clock(self):
        auditor = self._auditor(bound=100)
        violations = []
        _audit_starvation(self._fake_node({0: 10, 1: 0}), 1000,
                          auditor, violations)
        _audit_starvation(self._fake_node({0: 25, 1: 2}), 1101,
                          auditor, violations)
        assert violations == []

    def test_an_idle_machine_is_not_starvation(self):
        # Nobody else issued either: that's a stall, not unfairness.
        auditor = self._auditor(bound=100)
        violations = []
        _audit_starvation(self._fake_node({0: 10, 1: 0}), 1000,
                          auditor, violations)
        _audit_starvation(self._fake_node({0: 10, 1: 0}), 1101,
                          auditor, violations)
        assert violations == []

    def test_priority_arbitration_not_audited(self):
        auditor = self._auditor(bound=1)
        node = self._fake_node({0: 10, 1: 0})
        node.arbiter = types.SimpleNamespace(name="priority")
        violations = []
        _audit_starvation(node, 10_000, auditor, violations)
        assert violations == []


class TestDigests:
    def test_identical_runs_have_no_diff(self):
        a = _paused(pause_at=150)
        b = _paused(pause_at=150)
        assert diff_components(a, b) == []
        assert state_delta(a, b) == []

    def test_different_seeds_diverge(self):
        a = _paused(pause_at=150, seed=1)
        b = _paused(pause_at=150, seed=2)
        assert diff_components(a, b) != []
        assert state_delta(a, b)

    def test_delta_is_bounded(self):
        a = _paused(pause_at=150, seed=1)
        b = _paused(pause_at=150, seed=2)
        assert len(state_delta(a, b, limit=3)) <= 3


class TestBundles:
    def test_invariant_bundle_round_trip(self, tmp_path):
        # Corrupt state -> bundle -> replay reproduces the violation
        # deterministically on a fresh process-equivalent restore.
        node = _paused(engine="event", pause_at=100)
        thread = node.active[0]
        frame = thread.frames[sorted(thread.frames)[0]]
        frame._invalid |= 1 << 30
        policy = SanitizerPolicy(level="audit",
                                 report_dir=str(tmp_path))
        report = _build_report(
            kind="invariant", node=node, window=(36, 100),
            suspects=(), quarantined=(), components=(), delta=(),
            violations=audit_node(node))
        path = write_bundle(report, node.snapshot(), policy,
                            max_cycles=5_000_000, watchdog_cycles=None)
        meta = json.loads(
            open(os.path.join(path, "meta.json")).read())
        assert meta["kind"] == "invariant"
        assert meta["report"]["violations"]
        lines = []
        verdict = replay_bundle(path, out=lines.append)
        assert verdict == {"reproduced": True, "kind": "invariant",
                           "error": verdict["error"]}
        assert any("reproduced" in line for line in lines)

    def test_bundle_paths_never_collide(self, tmp_path):
        node = _paused(pause_at=100)
        policy = SanitizerPolicy(level="audit", report_dir=str(tmp_path))
        report = _build_report(kind="invariant", node=node,
                               window=(0, 100), suspects=(),
                               quarantined=(), components=(), delta=(),
                               violations=["x"])
        first = write_bundle(report, node.snapshot(), policy, 100, None)
        second = write_bundle(report, node.snapshot(), policy, 100, None)
        assert first != second


class TestErrorPlumbing:
    def test_cell_failure_carries_reproducer(self):
        exc = SanitizerError("boom", bundle_path="/tmp/b1")
        failure = CellFailure.from_exception("fft", "tpe", exc)
        assert failure.reproducer == "/tmp/b1"
        assert failure.as_record()["reproducer"] == "/tmp/b1"

    def test_plain_failures_omit_reproducer(self):
        failure = CellFailure.from_exception("fft", "tpe",
                                             SimulationError("x"))
        assert failure.reproducer is None
        assert "reproducer" not in failure.as_record()

    def test_invariant_violation_pickles_with_payload(self):
        import pickle
        exc = InvariantViolation("bad", cycle=7, violations=["a", "b"],
                                 bundle_path="/tmp/b2")
        back = pickle.loads(pickle.dumps(exc))
        assert back.cycle == 7
        assert back.violations == ["a", "b"]
        assert back.bundle_path == "/tmp/b2"


class TestReportSurface:
    def test_report_render_mentions_everything(self):
        node = _paused(pause_at=100)
        report = _build_report(
            kind="divergence", node=node, window=(50, 100),
            suspects=[("main", 3)], quarantined=[("main", 3)],
            components=["memory"], delta=["memory[0]: 1 != 2"],
            violations=())
        text = report.render()
        assert "divergence" in text
        assert "main@3" in text
        assert "memory" in text
        data = report.as_dict()
        json.dumps(data)                 # must be JSON-serializable
        assert data["suspects"] == [["main", 3]]

    def test_run_program_sanitize_kwarg(self):
        bench = get_benchmark("matrix")
        config = baseline()
        compiled = compile_program(bench.source("coupled"), config,
                                   mode="coupled")
        result = run_program(compiled.program, config,
                             overrides=bench.make_inputs(1),
                             sanitize="audit")
        assert result.sanitizer is not None
        assert result.sanitizer.level == "audit"
        assert result.sanitizer.audits > 0
        assert result.sanitizer.trips == 0
