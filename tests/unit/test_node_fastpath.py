"""The simulator's skip-ahead fast path (repro.sim.node).

When every active thread is stalled until a timed event — memory reply,
pipeline completion, deferred presence bit, or operation-cache fill —
the intervening cycles are provably empty and the node jumps the clock.
Every test here checks the fast path against a cycle-by-cycle run:
results, statistics, and boundary errors must be bit-identical.
"""

import pytest

from repro import WatchdogError, baseline, compile_program, run_program
from repro.machine import MEMORY_MODELS
from repro.machine.memory import MemorySpec
from repro.sim.node import Node, make_node
from repro.sim.opcache import OpCacheSpec

SOURCE = """
(program
  (const N 6)
  (global A N)
  (global B N)
  (global done N :int :empty)
  (kernel work (i)
    (let ((x (aref A i)))
      (aset! B i (+ (* x x) 1.0)))
    (aset-ef! done i 1))
  (main
    (forall (i 0 N) (work i))
    (for (i 0 N)
      (sync (aref-ff done i)))))
"""

INPUT = {"A": [0.5, -1.5, 2.0, 3.25, -0.75, 4.5]}


def slow_config():
    """High, deterministic memory latency: long provably-empty stalls,
    so the fast path actually has cycles to skip."""
    spec = MemorySpec("slow", hit_latency=1, miss_rate=1.0,
                      miss_penalty_min=40, miss_penalty_max=40)
    return baseline().with_memory(spec)


def pair(config, **kwargs):
    compiled = compile_program(SOURCE, config, mode="coupled")
    fast = run_program(compiled.program, config, overrides=INPUT,
                       fast_forward=True, **kwargs)
    slow = run_program(compiled.program, config, overrides=INPUT,
                       fast_forward=False, **kwargs)
    return compiled, fast, slow


class TestBitIdentity:
    def test_results_and_stats_identical(self):
        __, fast, slow = pair(slow_config())
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()
        assert fast.read_symbol("B") == slow.read_symbol("B")

    def test_fast_path_actually_skips(self):
        config = slow_config()
        compiled = compile_program(SOURCE, config, mode="coupled")
        node = Node(config, fast_forward=True)
        node.run(compiled.program, overrides=INPUT)
        assert node.ffwd_jumps > 0
        assert node.ffwd_cycles > 0

    def test_disabled_fast_path_never_skips(self):
        config = slow_config()
        compiled = compile_program(SOURCE, config, mode="coupled")
        node = Node(config, fast_forward=False)
        node.run(compiled.program, overrides=INPUT)
        assert node.ffwd_jumps == 0 and node.ffwd_cycles == 0

    def test_identical_with_round_robin_arbitration(self):
        __, fast, slow = pair(slow_config()
                              .with_arbitration("round-robin"))
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()

    def test_identical_with_opcache_fills(self):
        config = slow_config().with_op_cache(
            OpCacheSpec(capacity=4, fill_penalty=9))
        __, fast, slow = pair(config)
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()

    def test_identical_with_opcache_fills_event_engine(self):
        # Regression: the event kernel's skip-ahead jump assembled its
        # wake candidates from the pipeline heap, the memory system,
        # and the wake queue only.  An in-flight operation-cache fill
        # lives in none of them, yet it can pin a thread awake (a park
        # vetoed by an arbitration loss, or a shared fill the thread
        # did not start) — leaving the fill's completion as the only
        # upcoming event.  Without the fill candidate the jump
        # overshoots it; the fast-forwarded run must stay bit-identical
        # and must still actually skip.
        config = slow_config().with_engine("event").with_op_cache(
            OpCacheSpec(capacity=4, fill_penalty=9))
        compiled, fast, slow = pair(config)
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()
        assert fast.read_symbol("B") == slow.read_symbol("B")
        node = make_node(config, fast_forward=True)
        node.run(compiled.program, overrides=INPUT)
        assert node.ffwd_jumps > 0

    def test_identical_with_statistical_memory(self):
        # Random latencies: quiet cycles draw nothing from the RNG, so
        # the stream stays aligned across skips.
        config = baseline().with_memory(MEMORY_MODELS["mem2"]()) \
                           .with_seed(7)
        __, fast, slow = pair(config)
        assert fast.cycles == slow.cycles
        assert fast.stats.summary() == slow.stats.summary()


class TestBoundaries:
    """The skip target is clamped so max-cycles, watchdog, and pause
    checks fire at exactly the cycle a cycle-by-cycle run reports."""

    def test_max_cycles_cut_at_same_cycle(self):
        config = slow_config()
        compiled = compile_program(SOURCE, config, mode="coupled")
        errors = []
        for fast_forward in (True, False):
            with pytest.raises(WatchdogError) as info:
                run_program(compiled.program, config, overrides=INPUT,
                            fast_forward=fast_forward, max_cycles=100)
            errors.append(info.value)
        assert errors[0].cycle == errors[1].cycle == 100

    def test_watchdog_cut_at_same_cycle(self):
        spec = MemorySpec("glacial", hit_latency=1, miss_rate=1.0,
                          miss_penalty_min=500, miss_penalty_max=500)
        config = baseline().with_memory(spec)
        compiled = compile_program(SOURCE, config, mode="coupled")
        errors = []
        for fast_forward in (True, False):
            with pytest.raises(WatchdogError) as info:
                run_program(compiled.program, config, overrides=INPUT,
                            fast_forward=fast_forward,
                            watchdog_cycles=60)
            errors.append(info.value)
        assert errors[0].cycle == errors[1].cycle
        assert errors[0].last_progress_cycle == \
            errors[1].last_progress_cycle
        assert "livelock" in str(errors[0])

    def test_pause_resume_matches_uninterrupted(self):
        config = slow_config()
        compiled = compile_program(SOURCE, config, mode="coupled")
        reference = run_program(compiled.program, config,
                                overrides=INPUT, fast_forward=False)
        node = Node(config, fast_forward=True)
        paused = node.run(compiled.program, overrides=INPUT,
                          pause_at=reference.cycles // 2)
        assert paused is None
        assert node.cycle == reference.cycles // 2   # not overshot
        result = Node.restore(node.snapshot()).resume()
        assert result.cycles == reference.cycles
        assert result.stats.summary() == reference.stats.summary()

    def test_pause_resume_round_robin_snapshot(self):
        # The arbiter's rotation pointer is part of the snapshot; a
        # restored run must continue the rotation where it left off.
        config = slow_config().with_arbitration("round-robin")
        compiled = compile_program(SOURCE, config, mode="coupled")
        reference = run_program(compiled.program, config,
                                overrides=INPUT, fast_forward=False)
        node = Node(config, fast_forward=True)
        node.run(compiled.program, overrides=INPUT,
                 pause_at=reference.cycles // 3)
        result = Node.restore(node.snapshot()).resume()
        assert result.cycles == reference.cycles
        assert result.stats.summary() == reference.stats.summary()
