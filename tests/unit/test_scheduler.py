"""The list scheduler: slot assignment, fixups, mode restrictions."""

import pytest

from repro.compiler import liveness
from repro.compiler.astnodes import FLOAT, GlobalDecl, INT, Num
from repro.compiler.frontend import parse_stmt
from repro.compiler.lowering import lower_thread
from repro.compiler.optimize import optimize_thread
from repro.compiler.schedule.modes import (ThreadScheduleSpec, main_spec,
                                           thread_spec)
from repro.compiler.schedule.scheduler import ThreadScheduler
from repro.errors import CompileError
from repro.isa.operations import UnitClass
from repro.machine import baseline, unit_mix

SYMBOLS = {
    "F": GlobalDecl("F", Num(64), FLOAT, True),
    "I": GlobalDecl("I", Num(64), INT, True),
}


def schedule(text, config=None, spec=None, optimize=True):
    config = config or baseline()
    spec = spec or ThreadScheduleSpec(tuple(config.arithmetic_clusters()))
    thread_ir = lower_thread("t", parse_stmt(parse(text)), SYMBOLS, {})
    if optimize:
        optimize_thread(thread_ir)
    live_in, __ = liveness.analyze(thread_ir)
    return ThreadScheduler(thread_ir, config, spec, live_in).schedule()


def parse(text):
    from repro.compiler.sexpr import read_one
    return read_one(text)


def all_entries(scheduled):
    for block in scheduled.blocks:
        yield from block.entries()


class TestBasicPlacement:
    def test_each_slot_used_once_per_row(self):
        scheduled = schedule("""
(begin
  (aset! F 0 (+ (aref F 1) (aref F 2)))
  (aset! F 3 (* (aref F 4) (aref F 5))))
""")
        for block in scheduled.blocks:
            for row, entries in block.rows.items():
                slots = [(e.cluster, e.kind, e.unit_index)
                         for e in entries]
                assert len(slots) == len(set(slots))

    def test_dependent_ops_in_strictly_later_rows(self):
        scheduled = schedule(
            "(let ((x (+ 1 (aref I 0)))) (aset! I 1 (* x 2)))")
        for block in scheduled.blocks:
            producers = {}
            for entry in block.entries():
                for vreg, __ in entry.dests:
                    producers.setdefault(vreg.id, entry.row)
            for entry in block.entries():
                for operand in entry.srcs:
                    if hasattr(operand, "vreg") \
                            and operand.vreg.id in producers:
                        if entry.op in ("imov", "fmov") \
                                and entry.dests \
                                and entry.dests[0][0].id \
                                == operand.vreg.id:
                            continue
                        assert entry.row > producers[operand.vreg.id]

    def test_one_control_op_per_row(self):
        scheduled = schedule("""
(let ((i 0))
  (while (< i 3)
    (set! i (+ i 1))))
""")
        for block in scheduled.blocks:
            for row, entries in block.rows.items():
                controls = [e for e in entries
                            if e.kind is UnitClass.BRU]
                assert len(controls) <= 1

    def test_terminator_in_last_row(self):
        scheduled = schedule("(aset! I 0 (+ (aref I 1) 1))")
        last = scheduled.blocks[-1]
        halt_rows = [e.row for e in last.entries() if e.op == "halt"]
        assert halt_rows and halt_rows[0] == last.max_row()


class TestLocality:
    def test_sources_local_to_executing_cluster(self):
        scheduled = schedule("""
(let ((a (aref F 0)) (b (aref F 1)))
  (aset! F 2 (+ a b))
  (aset! F 3 (- a b)))
""")
        for entry in all_entries(scheduled):
            if entry.op == "fork":
                continue
            for operand in entry.srcs:
                if hasattr(operand, "vreg"):
                    assert operand.cluster == entry.cluster, entry.op

    def test_remote_consumers_served_by_dual_dest_or_move(self):
        """Wide code on 4 clusters must communicate only via second
        destinations or explicit moves; verified by locality above plus
        at most 2 dests per op here."""
        scheduled = schedule("""
(let ((a (aref F 0)))
  (aset! F 1 (+ a 1.0))
  (aset! F 2 (+ a 2.0))
  (aset! F 3 (+ a 3.0))
  (aset! F 4 (+ a 4.0)))
""")
        for entry in all_entries(scheduled):
            assert len(entry.dests) <= 2

    def test_branch_condition_reaches_branch_cluster(self):
        config = baseline()
        scheduled = schedule("""
(let ((i 0))
  (while (< i 3)
    (set! i (+ i 1))))
""", config=config)
        for entry in all_entries(scheduled):
            if entry.op in ("brt", "brf"):
                assert entry.cluster in config.branch_clusters()
                cond = entry.srcs[0]
                assert cond.cluster == entry.cluster


class TestModes:
    def test_seq_mode_uses_one_arithmetic_cluster(self):
        config = baseline()
        spec = main_spec("seq", config)
        scheduled = schedule("""
(begin
  (aset! F 0 (+ (aref F 1) (aref F 2)))
  (aset! F 3 (* (aref F 4) (aref F 5))))
""", config=config, spec=spec)
        used = {e.cluster for e in all_entries(scheduled)
                if e.kind is not UnitClass.BRU}
        assert used <= {config.arithmetic_clusters()[0]}

    def test_unrestricted_mode_spreads_independent_work(self):
        config = baseline()
        spec = main_spec("sts", config)
        scheduled = schedule("""
(begin
  (aset! F 0 (+ (aref F 8) 1.0))
  (aset! F 1 (+ (aref F 9) 2.0))
  (aset! F 2 (+ (aref F 10) 3.0))
  (aset! F 3 (+ (aref F 11) 4.0)))
""", config=config, spec=spec)
        used = {e.cluster for e in all_entries(scheduled)
                if e.kind is not UnitClass.BRU}
        assert len(used) > 1

    def test_tpe_pin_must_be_arithmetic(self):
        config = baseline()
        with pytest.raises(CompileError):
            thread_spec("tpe", config, placement=4)   # a branch cluster

    def test_coupled_rotation(self):
        config = baseline()
        assert thread_spec("coupled", config, 1).allowed_clusters == \
            (1, 2, 3, 0)

    def test_no_fpu_in_allowance_rejected(self):
        config = unit_mix(1, 1)
        spec = ThreadScheduleSpec((1,))    # cluster 1 has IU? no: mem-only
        with pytest.raises(CompileError):
            schedule("(aset! F 0 (+ (aref F 1) 2.0))", config=config,
                     spec=spec)


class TestMemOnlyClusters:
    def test_mix_config_schedules_float_code(self):
        """With 1 IU / 1 FPU / 4 MEM units the scheduler must route
        values into memory-only clusters for their memory units."""
        config = unit_mix(1, 1)
        spec = ThreadScheduleSpec(tuple(config.arithmetic_clusters()))
        scheduled = schedule("""
(begin
  (aset! F 0 (+ (aref F 8) (aref F 9)))
  (aset! F 1 (+ (aref F 10) (aref F 11))))
""", config=config, spec=spec)
        assert scheduled.n_words() > 0
